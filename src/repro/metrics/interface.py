"""The Harmony metric interface (paper Section 2).

"The metric interface provides a unified way to gather data about the
performance of applications and their execution environment.  Data about
system conditions and application resource requirements flow into the metric
interface, and on to both the adaptation controller and individual
applications."

:class:`MetricInterface` is that hub: producers call :meth:`report`,
consumers either query histories or subscribe for push notification.  Metric
names are dotted, conventionally ``<scope>.<entity>.<quantity>`` — e.g.
``app.DBclient.66.response_time`` or ``node.host3.cpu_utilization``.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Iterator

from repro.metrics.histogram import Histogram
from repro.metrics.history import (DEFAULT_MAX_OBSERVATIONS, Observation,
                                   TimeSeries)

__all__ = ["MetricInterface"]

Subscriber = Callable[[str, Observation], None]


class MetricInterface:
    """Central metric registry, history store, and pub/sub hub.

    Every series created through the interface is bounded by
    ``default_max_observations`` (``None`` disables retention); see
    :class:`~repro.metrics.history.TimeSeries`.
    """

    def __init__(self, default_max_observations: int | None
                 = DEFAULT_MAX_OBSERVATIONS) -> None:
        self.default_max_observations = default_max_observations
        self._series: dict[str, TimeSeries] = {}
        self._histograms: dict[str, Histogram] = {}
        self._subscribers: list[tuple[str, Subscriber]] = []
        # Concurrent sessions report through one interface once the API
        # server stops serializing every RPC behind a global lock; the
        # read-modify-write in increment() (and series creation) must be
        # atomic or bursts of counter bumps lose samples.  Subscribers
        # are invoked outside the lock — they may re-enter report().
        self._lock = threading.RLock()

    def _new_series(self, name: str) -> TimeSeries:
        return TimeSeries(name,
                          max_observations=self.default_max_observations)

    # -- producing ----------------------------------------------------------

    def report(self, name: str, time: float, value: float) -> None:
        """Record one observation and push it to matching subscribers."""
        with self._lock:
            series = self._series.get(name)
            if series is None:
                series = self._series[name] = self._new_series(name)
            series.append(time, value)
            subscribers = list(self._subscribers)
        observation = Observation(time, float(value))
        for prefix, subscriber in subscribers:
            if name == prefix or name.startswith(prefix + "."):
                subscriber(name, observation)

    def increment(self, name: str, time: float,
                  amount: float = 1.0) -> float:
        """Report a cumulative counter sample: latest value + ``amount``.

        Counters are stored as ordinary series whose samples carry the
        running total (Prometheus counter semantics), so rates fall out of
        windowed differences.  Returns the new total.  Atomic: concurrent
        increments never lose a bump.
        """
        with self._lock:
            latest = self.latest(name)
            total = (0.0 if latest is None else latest) + amount
            self.report(name, time, total)
        return total

    def histogram(self, name: str,
                  bounds: Iterable[float] | None = None) -> Histogram:
        """The distribution registered under ``name`` (created on first use).

        Histograms live beside the time series under the same dotted
        namespace but hold bucketed distributions instead of sample
        histories — the always-on health samplers (lock wait/hold,
        scheduler batch latency, WAL fsync, event-loop lag) feed these.
        ``bounds`` only applies on creation; callers cache the returned
        object, so the per-observation path never re-enters this lock.
        """
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram(name, bounds)
            return hist

    def histograms(self, prefix: str | None = None,
                   ) -> list[tuple[str, Histogram]]:
        """Registered histograms, optionally filtered by dotted prefix."""
        with self._lock:
            names = sorted(name for name in self._histograms
                           if prefix is None or name == prefix
                           or name.startswith(prefix + "."))
            return [(name, self._histograms[name]) for name in names]

    # -- consuming ----------------------------------------------------------

    def series(self, name: str) -> TimeSeries:
        """The history for ``name`` (an empty series if never reported)."""
        with self._lock:
            if name not in self._series:
                self._series[name] = self._new_series(name)
            return self._series[name]

    def latest(self, name: str) -> float | None:
        obs = self.series(name).latest()
        return obs.value if obs else None

    def windowed_mean(self, name: str, now: float,
                      window_seconds: float) -> float | None:
        return self.series(name).windowed_mean(now, window_seconds)

    def names(self, prefix: str | None = None) -> list[str]:
        """Registered metric names, optionally filtered by dotted prefix."""
        with self._lock:
            if prefix is None:
                return sorted(self._series)
            return sorted(name for name in self._series
                          if name == prefix
                          or name.startswith(prefix + "."))

    def subscribe(self, prefix: str, subscriber: Subscriber,
                  ) -> Callable[[], None]:
        """Push every future observation under ``prefix`` to ``subscriber``.

        Returns an unsubscribe function.
        """
        entry = (prefix, subscriber)
        self._subscribers.append(entry)

        def unsubscribe() -> None:
            if entry in self._subscribers:
                self._subscribers.remove(entry)

        return unsubscribe

    def walk(self, prefix: str | None = None,
             ) -> Iterator[tuple[str, TimeSeries]]:
        for name in self.names(prefix):
            yield name, self._series[name]
