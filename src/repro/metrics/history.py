"""Time-series storage for metric observations."""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterator

__all__ = ["Observation", "TimeSeries", "DEFAULT_MAX_OBSERVATIONS"]

#: Generous default retention per series: enough for a week of 10 s
#: collector samples, small enough that long-running servers don't leak.
DEFAULT_MAX_OBSERVATIONS = 65_536


@dataclass(frozen=True)
class Observation:
    """One timestamped metric sample."""

    time: float
    value: float


class TimeSeries:
    """An append-only series of observations ordered by time.

    Appends must be non-decreasing in time (the simulation clock is
    monotonic).  Queries are binary-search based, so windowed statistics stay
    cheap even for long runs.

    ``max_observations`` bounds retention: once the series holds that many
    samples, the oldest are dropped on append (``None`` keeps everything,
    for short experiment runs that post-process full histories).
    ``observations_dropped`` counts evictions so consumers can tell a
    short history from a trimmed one.
    """

    def __init__(self, name: str = "",
                 max_observations: int | None = None):
        if max_observations is not None and max_observations < 1:
            raise ValueError("max_observations must be positive or None, "
                             f"got {max_observations}")
        self.name = name
        self.max_observations = max_observations
        self.observations_dropped = 0
        self._times: list[float] = []
        self._values: list[float] = []
        #: Running sum of retained values, so the whole-series mean —
        #: recomputed by every telemetry snapshot over every series — is
        #: O(1) instead of O(observations).
        self._sum = 0.0

    def __len__(self) -> int:
        return len(self._times)

    def append(self, time: float, value: float) -> None:
        if self._times and time < self._times[-1]:
            raise ValueError(
                f"time series {self.name!r}: non-monotonic append "
                f"({time} after {self._times[-1]})")
        self._times.append(time)
        self._values.append(float(value))
        self._sum += float(value)
        bound = self.max_observations
        if bound is not None and len(self._times) > bound:
            excess = len(self._times) - bound
            for evicted in self._values[:excess]:
                self._sum -= evicted
            del self._times[:excess]
            del self._values[:excess]
            self.observations_dropped += excess

    def latest(self) -> Observation | None:
        if not self._times:
            return None
        return Observation(self._times[-1], self._values[-1])

    def first(self) -> Observation | None:
        if not self._times:
            return None
        return Observation(self._times[0], self._values[0])

    def between(self, start: float, end: float) -> list[Observation]:
        """Observations with ``start <= time <= end``."""
        lo = bisect.bisect_left(self._times, start)
        hi = bisect.bisect_right(self._times, end)
        return [Observation(t, v)
                for t, v in zip(self._times[lo:hi], self._values[lo:hi])]

    def mean(self, start: float | None = None,
             end: float | None = None) -> float | None:
        """Arithmetic mean of values in the window (whole series default)."""
        if start is None and end is None:
            if not self._values:
                return None
            return self._sum / len(self._values)
        lo = 0 if start is None else bisect.bisect_left(self._times, start)
        hi = (len(self._times) if end is None
              else bisect.bisect_right(self._times, end))
        window = self._values[lo:hi]
        if not window:
            return None
        return sum(window) / len(window)

    def windowed_mean(self, now: float, window_seconds: float) -> float | None:
        """Mean over the trailing window ``[now - window, now]``."""
        return self.mean(now - window_seconds, now)

    def values(self) -> list[float]:
        return list(self._values)

    def __iter__(self) -> Iterator[Observation]:
        return (Observation(t, v)
                for t, v in zip(self._times, self._values))
