"""Log-bucketed histograms for runtime health distributions.

Counters answer "how many"; the scale benches answer "how fast on
average".  Neither shows the *shape* of a hot path — the p99 lock wait
behind a burst of admissions, the tail of WAL fsync latency, the
scheduler backlog spikes that a mean hides entirely.  :class:`Histogram`
records those distributions with Prometheus-compatible cumulative
buckets (``le`` upper bounds) at a cost low enough to stay always-on:
one bisect, one lock, three adds per observation.

Bucket bounds default to powers of two spanning 1 µs to ~16.8 s — the
classic log-bucketed layout, so one layout covers both a 10 µs lock
hold and a 2 s batch sweep with constant relative error.  Depth-like
quantities (queue lengths, backlog sizes) use :data:`COUNT_BOUNDS`.

Snapshots are plain JSON-safe dicts so they travel through the STATUS
wire message unchanged, and :func:`quantile_from_snapshot` lets a
monitoring client compute percentiles from the wire payload without
importing anything else.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Any, Iterable, Mapping

__all__ = ["Histogram", "SECONDS_BOUNDS", "COUNT_BOUNDS",
           "quantile_from_snapshot"]

#: Default latency layout: 1 µs · 2^k for k in 0..24 (1 µs .. ~16.8 s).
SECONDS_BOUNDS: tuple[float, ...] = tuple(1e-6 * 2 ** k for k in range(25))

#: Depth/size layout: powers of two from 1 to 65,536.
COUNT_BOUNDS: tuple[float, ...] = tuple(float(2 ** k) for k in range(17))


class Histogram:
    """A fixed-bucket histogram with Prometheus ``le`` semantics.

    ``bounds`` are *upper* bucket bounds (inclusive, sorted ascending);
    an implicit ``+Inf`` overflow bucket catches everything above the
    last bound.  Thread-safe: ``observe`` takes a plain lock — the
    critical section is four integer/float updates, far cheaper than
    the lock traffic it measures.

    >>> hist = Histogram("demo", bounds=(0.001, 0.01, 0.1))
    >>> for value in (0.0005, 0.002, 0.002, 0.05, 2.0):
    ...     hist.observe(value)
    >>> hist.count, round(hist.sum, 4)
    (5, 2.0545)
    >>> snap = hist.snapshot()
    >>> snap["counts"]          # cumulative, one per bound plus +Inf
    [1, 3, 4, 5]
    >>> round(quantile_from_snapshot(snap, 0.5), 5)
    0.00775
    """

    __slots__ = ("name", "bounds", "_counts", "sum", "count",
                 "min", "max", "_lock")

    def __init__(self, name: str,
                 bounds: Iterable[float] | None = None) -> None:
        chosen = tuple(float(b) for b in (bounds if bounds is not None
                                          else SECONDS_BOUNDS))
        if not chosen:
            raise ValueError("histogram needs at least one bucket bound")
        if any(not math.isfinite(b) for b in chosen):
            raise ValueError("bucket bounds must be finite")
        if list(chosen) != sorted(set(chosen)):
            raise ValueError("bucket bounds must be strictly increasing")
        self.name = name
        self.bounds = chosen
        self._counts = [0] * (len(chosen) + 1)   # last slot: +Inf overflow
        self.sum = 0.0
        self.count = 0
        self.min = math.inf
        self.max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation (``le``: first bound >= value)."""
        value = float(value)
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self.sum += value
            self.count += 1
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    def snapshot(self) -> dict[str, Any]:
        """A JSON-safe point-in-time view with *cumulative* counts.

        ``counts[i]`` is the number of observations <= ``bounds[i]``;
        the final entry (the ``+Inf`` bucket) always equals ``count``.
        """
        with self._lock:
            per_bucket = list(self._counts)
            total = self.count
            total_sum = self.sum
            low = self.min
            high = self.max
        cumulative: list[int] = []
        running = 0
        for bucket in per_bucket:
            running += bucket
            cumulative.append(running)
        return {"bounds": list(self.bounds),
                "counts": cumulative,
                "count": total,
                "sum": total_sum,
                "min": low if total else None,
                "max": high if total else None}

    def quantile(self, q: float) -> float | None:
        """Estimated ``q``-quantile (0..1); ``None`` when empty."""
        return quantile_from_snapshot(self.snapshot(), q)

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Histogram({self.name!r}, count={self.count}, "
                f"sum={self.sum:.6g})")


def quantile_from_snapshot(snapshot: Mapping[str, Any],
                           q: float) -> float | None:
    """Estimate a quantile from a :meth:`Histogram.snapshot` dict.

    Linear interpolation inside the containing bucket (the standard
    Prometheus ``histogram_quantile`` estimate); observations in the
    overflow bucket report the recorded maximum.  Works on snapshots
    that traveled through JSON (e.g. the STATUS wire message).
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be within [0, 1], got {q}")
    total = int(snapshot.get("count") or 0)
    if total == 0:
        return None
    bounds = snapshot["bounds"]
    counts = snapshot["counts"]
    rank = q * total
    for index, cumulative in enumerate(counts):
        if cumulative >= rank:
            if index >= len(bounds):          # overflow bucket
                high = snapshot.get("max")
                return float(high) if high is not None else bounds[-1]
            lower = bounds[index - 1] if index else 0.0
            upper = bounds[index]
            previous = counts[index - 1] if index else 0
            in_bucket = cumulative - previous
            if in_bucket <= 0:
                return upper
            fraction = (rank - previous) / in_bucket
            return lower + (upper - lower) * min(1.0, max(0.0, fraction))
    high = snapshot.get("max")
    return float(high) if high is not None else bounds[-1]
