"""The Harmony metric interface: histories, registry, pub/sub, collectors."""

from repro.metrics.collectors import (
    ClusterCollector,
    link_metric_name,
    node_metric_name,
)
from repro.metrics.histogram import (COUNT_BOUNDS, SECONDS_BOUNDS, Histogram,
                                     quantile_from_snapshot)
from repro.metrics.history import Observation, TimeSeries
from repro.metrics.interface import MetricInterface

__all__ = [
    "MetricInterface", "TimeSeries", "Observation",
    "Histogram", "SECONDS_BOUNDS", "COUNT_BOUNDS",
    "quantile_from_snapshot",
    "ClusterCollector", "node_metric_name", "link_metric_name",
]
