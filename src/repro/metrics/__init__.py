"""The Harmony metric interface: histories, registry, pub/sub, collectors."""

from repro.metrics.collectors import (
    ClusterCollector,
    link_metric_name,
    node_metric_name,
)
from repro.metrics.history import Observation, TimeSeries
from repro.metrics.interface import MetricInterface

__all__ = [
    "MetricInterface", "TimeSeries", "Observation",
    "ClusterCollector", "node_metric_name", "link_metric_name",
]
