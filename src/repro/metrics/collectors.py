"""Periodic samplers that feed environment data into the metric interface.

The adaptation controller does not read the simulated cluster directly; it
sees node and link conditions through these collectors, exactly as the real
Harmony observed its environment through the metric interface.  Metric names
produced:

* ``node.<host>.cpu_utilization`` — fraction busy (cumulative),
* ``node.<host>.cpu_load`` — instantaneous active job count,
* ``node.<host>.memory_available_mb``,
* ``link.<a>--<b>.active_transfers``,
* ``link.<a>--<b>.available_mbps`` (reservation headroom).
"""

from __future__ import annotations

from typing import Iterator

from repro.cluster.kernel import Interrupted, Process
from repro.cluster.topology import Cluster
from repro.metrics.interface import MetricInterface

__all__ = ["ClusterCollector", "link_metric_name", "node_metric_name"]


def node_metric_name(hostname: str, quantity: str) -> str:
    return f"node.{hostname}.{quantity}"


def link_metric_name(host_a: str, host_b: str, quantity: str) -> str:
    a, b = sorted((host_a, host_b))
    return f"link.{a}--{b}.{quantity}"


class ClusterCollector:
    """Samples every node and link on a fixed period."""

    def __init__(self, cluster: Cluster, metrics: MetricInterface,
                 period_seconds: float = 10.0):
        if period_seconds <= 0:
            raise ValueError("collector period must be positive")
        self.cluster = cluster
        self.metrics = metrics
        self.period_seconds = period_seconds
        self.samples_taken = 0
        self._process: Process | None = None

    def start(self) -> Process:
        """Begin sampling; returns the collector process."""
        self._process = self.cluster.kernel.spawn(
            self._run(), name="cluster-collector")
        return self._process

    def stop(self) -> None:
        if self._process is not None and self._process.is_alive:
            self._process.interrupt("stop")

    def sample_once(self) -> None:
        """Take one sample immediately (also used by the run loop)."""
        now = self.cluster.now
        for node in self.cluster.nodes():
            host = node.hostname
            self.metrics.report(node_metric_name(host, "cpu_utilization"),
                                now, node.cpu.utilization())
            self.metrics.report(node_metric_name(host, "cpu_load"),
                                now, float(node.cpu.active_jobs))
            self.metrics.report(
                node_metric_name(host, "memory_available_mb"),
                now, node.memory.available_mb)
        for link in self.cluster.links():
            self.metrics.report(
                link_metric_name(link.host_a, link.host_b,
                                 "active_transfers"),
                now, float(link.pipe.active_jobs))
            self.metrics.report(
                link_metric_name(link.host_a, link.host_b,
                                 "available_mbps"),
                now, link.available_mbps)
        self.samples_taken += 1

    def _run(self) -> Iterator:
        kernel = self.cluster.kernel
        try:
            while True:
                self.sample_once()
                yield kernel.timeout(self.period_seconds)
        except Interrupted:
            return
