"""Resource matching and allocation accounting (paper Section 4.1)."""

from repro.allocation.allocation import Allocation, allocate
from repro.allocation.instantiate import (
    ConcreteDemands,
    LinkDemand,
    NodeDemand,
    instantiate_option,
)
from repro.allocation.matcher import Assignment, Matcher, MatchStrategy

__all__ = [
    "NodeDemand", "LinkDemand", "ConcreteDemands", "instantiate_option",
    "Matcher", "MatchStrategy", "Assignment",
    "Allocation", "allocate",
]
