"""Matching resource demands to cluster nodes (paper Section 4.1).

"We start by finding nodes that meet the minimum resource requirements
required by the application.  When considering nodes, we also verify that
the network links between nodes of the application meet the requirements
specified in the RSL.  Our current approach uses a simple first-fit
allocation strategy."

:class:`Matcher` implements first-fit as the paper describes, plus the
best-fit and worst-fit policies the paper lists as future work (used by the
fragmentation ablation benchmark).  Matching is a backtracking search: node
demands are assigned in order, candidates are filtered by hostname pattern,
OS, and available memory, ordered by the active strategy, and link
feasibility is re-checked as each assignment is extended.
"""

from __future__ import annotations

import enum
import fnmatch
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.allocation.instantiate import ConcreteDemands, NodeDemand
from repro.cluster.node import SimNode
from repro.cluster.topology import Cluster
from repro.errors import AllocationError, SimulationError

__all__ = ["MatchStrategy", "Assignment", "Matcher"]


class MatchStrategy(enum.Enum):
    """Node-ordering policy for candidate selection."""

    FIRST_FIT = "first-fit"
    BEST_FIT = "best-fit"
    WORST_FIT = "worst-fit"


@dataclass(frozen=True)
class Assignment:
    """A successful match: local resource name -> cluster hostname."""

    placements: Mapping[str, str]

    def hostname_of(self, local_name: str) -> str:
        if local_name not in self.placements:
            raise AllocationError(
                f"assignment has no placement for {local_name!r}")
        return self.placements[local_name]

    def hostnames(self) -> set[str]:
        return set(self.placements.values())

    def __len__(self) -> int:
        return len(self.placements)


class Matcher:
    """Matches :class:`ConcreteDemands` against a cluster."""

    def __init__(self, cluster: Cluster,
                 strategy: MatchStrategy = MatchStrategy.FIRST_FIT,
                 allow_colocation: bool = False):
        self.cluster = cluster
        self.strategy = strategy
        #: When False (default, the paper's behaviour) every node demand of
        #: a configuration lands on a distinct machine ("four distinct
        #: nodes, all meeting the same requirements").
        self.allow_colocation = allow_colocation
        self._ignore_holders: frozenset[str] = frozenset()
        self._order_key: Callable[[str], float] | None = None
        self._free_mb: dict[str, float] = {}
        self._ordered_nodes: list[SimNode] = []
        #: (patterns, topology_version) -> nodes any pattern matches, in
        #: cluster insertion order.  Pattern-restricted demands (pods,
        #: racks) then pay O(|matching nodes|) per match instead of
        #: O(cluster).
        self._pattern_memo: dict[frozenset[str],
                                 tuple[int, list[SimNode]]] = {}

    def match(self, demands: ConcreteDemands,
              extra_memory: Mapping[str, float] | None = None,
              ignore_holders: frozenset[str] | set[str] | None = None,
              order_key: Callable[[str], float] | None = None,
              ) -> Assignment:
        """Find a placement for every node demand, verifying links.

        ``extra_memory`` maps local names to additional MB beyond each
        demand's minimum (the controller's elastic-memory exploration).

        ``ignore_holders`` names allocation holders whose reservations
        should be treated as free — the controller passes the application's
        own holder when re-optimizing it, so a running app can re-use the
        memory it currently occupies.

        ``order_key`` biases candidate ordering (lower first) ahead of the
        strategy's own ordering; the optimizer passes current CPU load so
        placements prefer idle nodes.

        Raises:
            AllocationError: when no feasible placement exists; the message
                names the first unsatisfiable demand.
        """
        placements: dict[str, str] = {}
        self._ignore_holders = frozenset(ignore_holders or ())
        self._order_key = order_key
        self._prepare_candidate_order(self._reachable_nodes(demands))
        if self._search(list(demands.nodes), demands, placements,
                        extra_memory or {}):
            return Assignment(placements=dict(placements))
        raise AllocationError(
            f"no feasible placement for configuration "
            f"{demands.option_name!r} "
            f"({len(demands.nodes)} node demands on "
            f"{len(self.cluster.hostnames())} cluster nodes)")

    # -- search -----------------------------------------------------------

    def _search(self, remaining: list[NodeDemand], demands: ConcreteDemands,
                placements: dict[str, str],
                extra_memory: Mapping[str, float]) -> bool:
        if not remaining:
            return self._links_feasible(demands, placements, partial=False)
        demand = remaining[0]
        for node in self._candidates(demand, placements, extra_memory):
            placements[demand.local_name] = node.hostname
            if self._links_feasible(demands, placements, partial=True) and \
                    self._search(remaining[1:], demands, placements,
                                 extra_memory):
                return True
            del placements[demand.local_name]
        return False

    def _reachable_nodes(self, demands: ConcreteDemands) -> list[SimNode]:
        """Nodes some demand's hostname pattern can match, memoized.

        Restricting the candidate base to the union of the demands'
        patterns is exact — ``_candidates`` re-filters per demand, and a
        node matching no pattern can never be placed — and turns the
        per-match cost from O(cluster) into O(|matching nodes|) for
        pattern-scoped bundles.  A ``*`` anywhere short-circuits to the
        whole cluster.  The memo is keyed by the pattern set and guarded
        by the topology version (add_node/add_link invalidate it).
        """
        patterns = frozenset(d.hostname_pattern for d in demands.nodes)
        if "*" in patterns or not patterns:
            return list(self.cluster.nodes())
        version = self.cluster.topology_version
        hit = self._pattern_memo.get(patterns)
        if hit is not None and hit[0] == version:
            return hit[1]
        nodes = [node for node in self.cluster.nodes()
                 if any(_hostname_matches(p, node.hostname)
                        for p in patterns)]
        self._pattern_memo[patterns] = (version, nodes)
        return nodes

    def _prepare_candidate_order(self, base: list[SimNode]) -> None:
        """Precompute per-match state constant across the backtracking.

        Reservations cannot change mid-search, so each node's free memory
        (with ignored holders' reservations counted back) is computed once,
        and the node ordering — strategy key, then the caller's order key,
        both stable — is sorted once.  Per-demand filtering then preserves
        this order: a stable sort of a subsequence equals the restriction
        of the stably sorted full list, and the strategy keys differ from
        the per-demand form only by a constant (``needed_mb``) shift.
        """
        free_mb: dict[str, float] = {}
        for node in base:
            free = node.memory.available_mb
            for holder in self._ignore_holders:
                free += node.memory.held_by(holder)
            free_mb[node.hostname] = free
        self._free_mb = free_mb
        ordered = list(base)
        if self.strategy is MatchStrategy.BEST_FIT:
            ordered.sort(key=lambda n: free_mb[n.hostname])
        elif self.strategy is MatchStrategy.WORST_FIT:
            ordered.sort(key=lambda n: -free_mb[n.hostname])
        # FIRST_FIT keeps cluster insertion order as the base.
        if self._order_key is not None:
            order = self._order_key
            ordered.sort(key=lambda n: order(n.hostname))  # stable
        self._ordered_nodes = ordered

    def _candidates(self, demand: NodeDemand,
                    placements: dict[str, str],
                    extra_memory: Mapping[str, float]) -> list[SimNode]:
        needed_mb = demand.memory_min_mb + extra_memory.get(
            demand.local_name, 0.0)
        taken = set(placements.values()) if not self.allow_colocation else set()
        free_mb = self._free_mb
        return [
            node for node in self._ordered_nodes
            if node.available
            and node.hostname not in taken
            and _hostname_matches(demand.hostname_pattern, node.hostname)
            and (demand.os is None or node.os == demand.os)
            and free_mb[node.hostname] + 1e-9 >= needed_mb
        ]

    def _links_feasible(self, demands: ConcreteDemands,
                        placements: dict[str, str], partial: bool) -> bool:
        """Check link connectivity/availability among placed endpoints."""
        for link in demands.links:
            host_a = placements.get(link.endpoint_a)
            host_b = placements.get(link.endpoint_b)
            if host_a is None or host_b is None:
                if partial:
                    continue
                return False
            if host_a == host_b:
                continue  # co-located endpoints need no network
            try:
                if link.total_mb > 0 and \
                        self.cluster.path_available_mbps(host_a, host_b) <= 0:
                    return False
            except SimulationError:
                return False  # disconnected
        if demands.communication_mb and not partial \
                and demands.communication_mb > 0:
            # General communication: all placed nodes must be mutually
            # reachable (the paper: "the system assumes that communication
            # is general and that all nodes must be fully connected").
            hosts = sorted(set(placements.values()))
            for i, a in enumerate(hosts):
                for b in hosts[i + 1:]:
                    try:
                        if self.cluster.path_available_mbps(a, b) <= 0:
                            return False
                    except SimulationError:
                        return False
        return True


def _hostname_matches(pattern: str, hostname: str) -> bool:
    if pattern == "*":
        return True
    return fnmatch.fnmatchcase(hostname, pattern)
