"""Allocation records: applying and releasing matched resources.

Once the matcher produces an :class:`~repro.allocation.matcher.Assignment`,
an :class:`Allocation` reserves the matched memory (and, when a predicted
duration is known, link bandwidth at the average required rate) against the
cluster, mirroring the paper's "as nodes and links are matched, we decrease
the available resources based on the application's RSL entries".

Allocations are context managers; releasing twice is a no-op.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Mapping

from repro.allocation.instantiate import ConcreteDemands
from repro.allocation.matcher import Assignment
from repro.cluster.link import SimLink
from repro.cluster.topology import Cluster
from repro.errors import AllocationError

__all__ = ["Allocation", "allocate"]

_holder_ids = itertools.count(1)


@dataclass
class Allocation:
    """Applied reservations for one configuration of one application."""

    cluster: Cluster
    demands: ConcreteDemands
    assignment: Assignment
    holder: str
    memory_by_node: dict[str, float] = field(default_factory=dict)
    reserved_links: list[SimLink] = field(default_factory=list)
    _released: bool = False

    @property
    def released(self) -> bool:
        return self._released

    def memory_grants(self) -> dict[str, float]:
        """Grant mapping (``<local_name>.memory`` -> MB) for re-instantiation."""
        grants: dict[str, float] = {}
        for demand in self.demands.nodes:
            hostname = self.assignment.hostname_of(demand.local_name)
            key = f"{demand.local_name}.memory"
            grants[key] = self.memory_by_node.get(
                f"{demand.local_name}@{hostname}", demand.memory_min_mb)
        return grants

    def release(self) -> None:
        """Return all reserved memory and bandwidth to the cluster."""
        if self._released:
            return
        self._released = True
        for key in self.memory_by_node:
            _, hostname = key.split("@", 1)
            self.cluster.node(hostname).memory.release(self.holder)
        for link in self.reserved_links:
            link.release(self.holder)

    def __enter__(self) -> "Allocation":
        return self

    def __exit__(self, *_exc) -> None:
        self.release()


def allocate(cluster: Cluster, demands: ConcreteDemands,
             assignment: Assignment,
             memory_grants: Mapping[str, float] | None = None,
             predicted_duration_seconds: float | None = None,
             holder: str | None = None) -> Allocation:
    """Reserve the resources of ``assignment`` against the cluster.

    ``memory_grants`` may exceed each demand's minimum (elastic memory).
    When ``predicted_duration_seconds`` is given, each link demand reserves
    bandwidth at rate ``total_mb / duration`` along the placement's path.

    All-or-nothing: on any reservation failure everything already reserved
    is rolled back and :class:`AllocationError` propagates.
    """
    holder = holder or f"alloc-{next(_holder_ids)}"
    allocation = Allocation(cluster=cluster, demands=demands,
                            assignment=assignment, holder=holder)
    try:
        for demand in demands.nodes:
            hostname = assignment.hostname_of(demand.local_name)
            amount = demand.memory_granted(memory_grants)
            cluster.node(hostname).memory.reserve(holder, amount)
            allocation.memory_by_node[f"{demand.local_name}@{hostname}"] = amount
        if predicted_duration_seconds and predicted_duration_seconds > 0:
            for link_demand in demands.links:
                host_a = assignment.hostname_of(link_demand.endpoint_a)
                host_b = assignment.hostname_of(link_demand.endpoint_b)
                if host_a == host_b or link_demand.total_mb <= 0:
                    continue
                rate = link_demand.total_mb / predicted_duration_seconds
                for link in cluster.path_links(host_a, host_b):
                    link.reserve(holder, rate)
                    allocation.reserved_links.append(link)
    except AllocationError:
        allocation.release()
        raise
    return allocation
