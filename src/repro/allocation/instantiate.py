"""Instantiate a tuning option into concrete resource demands.

A :class:`~repro.rsl.model.TuningOption` is parametric: node counts may come
from ``variable`` tags, CPU seconds may be expressions over those variables,
and link bandwidth may depend on the memory Harmony actually grants
(Figure 3's data-shipping option).  This module resolves one *configuration*
— an option plus a variable assignment plus any memory grants — into flat
:class:`NodeDemand` and :class:`LinkDemand` lists the matcher can work with.

Resolution is two-phase by nature: node demands can be computed from the
variable assignment alone, while link demands may reference granted
resources (``client.memory``).  :func:`instantiate_option` therefore takes
an optional ``grants`` mapping; absent a grant, elastic quantities resolve
to their minimum.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import RslSemanticError
from repro.rsl.expressions import MapEnvironment
from repro.rsl.model import Quantity, TuningOption

__all__ = ["NodeDemand", "LinkDemand", "ConcreteDemands",
           "instantiate_option", "InstantiationCache"]


@dataclass(frozen=True)
class NodeDemand:
    """One machine the configuration needs (replicas already expanded)."""

    local_name: str
    hostname_pattern: str = "*"
    os: str | None = None
    seconds: float | None = None
    memory_min_mb: float = 0.0
    memory_max_mb: float = math.inf
    memory_elastic: bool = False

    def memory_granted(self, grants: Mapping[str, float] | None) -> float:
        """The memory this demand receives under ``grants`` (MB)."""
        if grants is not None:
            granted = grants.get(f"{self.local_name}.memory")
            if granted is not None:
                if granted < self.memory_min_mb - 1e-9:
                    raise RslSemanticError(
                        f"grant of {granted} MB for {self.local_name!r} is "
                        f"below the minimum {self.memory_min_mb} MB")
                return min(granted, self.memory_max_mb)
        return self.memory_min_mb


@dataclass(frozen=True)
class LinkDemand:
    """Total traffic between two named nodes of the configuration."""

    endpoint_a: str
    endpoint_b: str
    total_mb: float


@dataclass(frozen=True)
class ConcreteDemands:
    """A fully resolved configuration, ready for matching and prediction."""

    option_name: str
    variable_assignment: Mapping[str, float] = field(default_factory=dict)
    nodes: tuple[NodeDemand, ...] = ()
    links: tuple[LinkDemand, ...] = ()
    communication_mb: float | None = None

    def total_cpu_seconds(self) -> float:
        """Sum of reference-machine CPU seconds across all nodes."""
        return sum(node.seconds or 0.0 for node in self.nodes)

    def total_traffic_mb(self) -> float:
        """Sum of explicit link traffic plus general communication."""
        total = sum(link.total_mb for link in self.links)
        if self.communication_mb is not None:
            total += self.communication_mb
        return total

    def demand_named(self, local_name: str) -> NodeDemand:
        for node in self.nodes:
            if node.local_name == local_name:
                return node
        raise RslSemanticError(
            f"configuration {self.option_name!r} has no node demand "
            f"{local_name!r}")


def instantiate_option(option: TuningOption,
                       variable_assignment: Mapping[str, float] | None = None,
                       grants: Mapping[str, float] | None = None,
                       ) -> ConcreteDemands:
    """Resolve ``option`` under a variable assignment and memory grants.

    ``grants`` maps ``<local_name>.memory`` to granted MB; it also feeds any
    expressions that reference allocated resources.  Elastic quantities
    default to their minimum when no grant is present.
    """
    assignment = dict(variable_assignment or {})
    for spec in option.variables:
        if spec.name not in assignment:
            assignment[spec.name] = spec.default_value()
        elif assignment[spec.name] not in spec.values:
            raise RslSemanticError(
                f"variable {spec.name!r}: value {assignment[spec.name]} "
                f"is outside its domain {spec.values}")

    env_values: dict[str, float] = dict(assignment)
    if grants:
        env_values.update(grants)

    nodes: list[NodeDemand] = []
    for requirement in option.nodes:
        replica_env = MapEnvironment(env_values)
        for replica_name in requirement.replica_names(replica_env):
            memory_min, memory_max, elastic = _memory_bounds(
                requirement.memory, env_values)
            seconds = None
            if requirement.seconds is not None:
                seconds = requirement.seconds.value(replica_env)
                if seconds < 0:
                    raise RslSemanticError(
                        f"node {replica_name!r}: negative seconds {seconds}")
            nodes.append(NodeDemand(
                local_name=replica_name,
                hostname_pattern=requirement.hostname,
                os=requirement.os,
                seconds=seconds,
                memory_min_mb=memory_min,
                memory_max_mb=memory_max,
                memory_elastic=elastic))

    # Make every node's (possibly granted) memory visible to link and
    # communication expressions under its local name.
    link_env_values = dict(env_values)
    for demand in nodes:
        key = f"{demand.local_name}.memory"
        link_env_values.setdefault(key, demand.memory_granted(grants))
    link_env = MapEnvironment(link_env_values)

    links: list[LinkDemand] = []
    for link in option.links:
        total_mb = link.megabytes.value(link_env)
        if total_mb < 0:
            raise RslSemanticError(
                f"link {link.endpoint_a}-{link.endpoint_b}: negative "
                f"traffic {total_mb}")
        links.append(LinkDemand(endpoint_a=link.endpoint_a,
                                endpoint_b=link.endpoint_b,
                                total_mb=total_mb))

    communication_mb: float | None = None
    if option.communication is not None:
        communication_mb = option.communication.megabytes.value(link_env)
        if communication_mb < 0:
            raise RslSemanticError(
                f"communication: negative traffic {communication_mb}")

    return ConcreteDemands(
        option_name=option.name,
        variable_assignment=assignment,
        nodes=tuple(nodes),
        links=tuple(links),
        communication_mb=communication_mb)


class InstantiationCache:
    """Memoizes :func:`instantiate_option` per (option, assignment, grants).

    Instantiation is pure — the same option under the same assignment and
    grants always yields the same demands (or raises the same semantic
    error) — so the optimizer can resolve each configuration once and
    reuse it across trials, re-evaluation sweeps, and the pairwise pass.
    Failed resolutions are cached too and re-raised on every hit.

    Keys use option *identity*; the cache holds a strong reference to each
    option so ids stay valid for its lifetime.
    """

    def __init__(self) -> None:
        self._results: dict[tuple, ConcreteDemands | RslSemanticError] = {}
        self._options: dict[int, TuningOption] = {}
        self.hits = 0
        self.misses = 0

    def instantiate(self, option: TuningOption,
                    variable_assignment: Mapping[str, float] | None = None,
                    grants: Mapping[str, float] | None = None,
                    ) -> ConcreteDemands:
        key = (id(option),
               tuple(sorted((variable_assignment or {}).items())),
               tuple(sorted((grants or {}).items())))
        cached = self._results.get(key)
        if cached is None:
            self.misses += 1
            self._options[id(option)] = option
            try:
                cached = instantiate_option(option, variable_assignment,
                                            grants=grants)
            except RslSemanticError as error:
                cached = error
            self._results[key] = cached
        else:
            self.hits += 1
        if isinstance(cached, RslSemanticError):
            raise cached
        return cached


def _memory_bounds(quantity: Quantity | None,
                   env_values: Mapping[str, float],
                   ) -> tuple[float, float, bool]:
    if quantity is None:
        return 0.0, math.inf, False
    if quantity.constraint is not None:
        constraint = quantity.constraint
        return constraint.minimum, constraint.maximum, constraint.elastic
    value = quantity.value(MapEnvironment(env_values))
    return value, value, False
