"""Piecewise-linear performance models (the ``performance`` tag).

"The 'performance' tag expects a list of data-points, that specify the
expected running time of the application when using a specific number of
nodes.  Rather than requiring the user to specify all of the points
explicitly, Harmony will interpolate using a piecewise linear curve based on
the supplied values."
"""

from __future__ import annotations

import bisect

from repro.errors import PredictionError
from repro.rsl.model import PerformancePoint, PerformanceSpec

__all__ = ["PiecewiseLinearModel"]


class PiecewiseLinearModel:
    """Interpolates (x, seconds) data points with a piecewise-linear curve.

    Outside the sampled range the nearest segment is extended linearly, but
    never below zero — extrapolated runtimes are clamped at 0.  A
    single-point model is constant.
    """

    def __init__(self, points: list[PerformancePoint] | tuple[PerformancePoint, ...]):
        if not points:
            raise PredictionError("piecewise model needs at least one point")
        ordered = sorted(points, key=lambda p: p.x)
        xs = [p.x for p in ordered]
        if len(set(xs)) != len(xs):
            raise PredictionError("piecewise model has duplicate x values")
        self._xs = xs
        self._ys = [p.seconds for p in ordered]

    @classmethod
    def from_spec(cls, spec: PerformanceSpec) -> "PiecewiseLinearModel":
        if not spec.points:
            raise PredictionError(
                "performance spec has no data points to interpolate")
        return cls(list(spec.points))

    @property
    def domain(self) -> tuple[float, float]:
        return self._xs[0], self._xs[-1]

    def predict(self, x: float) -> float:
        """Runtime (seconds) at ``x``, interpolated or extrapolated."""
        xs, ys = self._xs, self._ys
        if len(xs) == 1:
            return max(0.0, ys[0])
        if x <= xs[0]:
            return max(0.0, self._extend(xs[0], ys[0], xs[1], ys[1], x))
        if x >= xs[-1]:
            return max(0.0, self._extend(xs[-2], ys[-2], xs[-1], ys[-1], x))
        index = bisect.bisect_right(xs, x)
        return max(0.0, self._extend(xs[index - 1], ys[index - 1],
                                     xs[index], ys[index], x))

    @staticmethod
    def _extend(x0: float, y0: float, x1: float, y1: float, x: float) -> float:
        slope = (y1 - y0) / (x1 - x0)
        return y0 + slope * (x - x0)

    def best_x(self, candidates: list[float]) -> float:
        """The candidate x with the smallest predicted runtime."""
        if not candidates:
            raise PredictionError("best_x needs at least one candidate")
        return min(candidates, key=self.predict)
