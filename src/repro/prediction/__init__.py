"""Performance prediction (paper Section 4.2).

The default model combines CPU and network requirements under a simple
contention model; applications override it with explicit piecewise-linear
curves (the ``performance`` tag), arbitrary callables, or the critical-path
extension.
"""

from repro.prediction.contention import PlacedConfiguration, SystemView
from repro.prediction.critical_path import CriticalPathModel, Task
from repro.prediction.models import (
    CallableModel,
    DefaultModel,
    ExplicitSpecModel,
    ExpressionSpecModel,
    PerformanceModel,
    model_for_spec,
)
from repro.prediction.piecewise import PiecewiseLinearModel

__all__ = [
    "SystemView", "PlacedConfiguration",
    "PerformanceModel", "DefaultModel", "ExplicitSpecModel",
    "ExpressionSpecModel", "CallableModel",
    "model_for_spec",
    "PiecewiseLinearModel",
    "CriticalPathModel", "Task",
]
