"""The system view: who shares what, for contention-aware prediction.

Harmony's default model scales resource requirements "to reflect resource
contention".  To do that it needs a picture of every *proposed* placement at
once: a :class:`SystemView` accumulates the configurations the optimizer is
currently considering and answers, per node, how many applications would
compute there and, per link, how many flows would cross it.

The view deliberately models contention the way a processor-sharing server
behaves in steady state: a node serving ``k`` concurrent applications gives
each a ``1/k`` share, so CPU times stretch by ``k``; likewise link
bandwidth.  That is exactly the mechanism that produces the paper's
Figure 7 shape (two query-shipping clients -> double response time).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.allocation.instantiate import ConcreteDemands
from repro.allocation.matcher import Assignment
from repro.cluster.topology import Cluster

__all__ = ["PlacedConfiguration", "SystemView"]


@dataclass(frozen=True)
class PlacedConfiguration:
    """One application's proposed configuration and placement."""

    app_key: str
    demands: ConcreteDemands
    assignment: Assignment


class SystemView:
    """Aggregated proposed load over a cluster.

    Besides the configurations Harmony itself placed, the view carries
    *external* load estimates — competing work "out of Harmony's control
    (such as network traffic due to other applications)" that the
    controller measures through the metric interface.  External load is
    expressed as equivalent concurrent consumers per node/link; each
    stretches co-located work like an equal-length processor-sharing
    competitor (the conservative assumption when only a load count, not
    a demand, is observable).
    """

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self._configurations: dict[str, PlacedConfiguration] = {}
        self._external_cpu: dict[str, float] = {}
        self._external_flows: dict[frozenset[str], float] = {}

    # -- membership ----------------------------------------------------------

    def place(self, app_key: str, demands: ConcreteDemands,
              assignment: Assignment) -> None:
        """Add or replace one application's proposed configuration."""
        self._configurations[app_key] = PlacedConfiguration(
            app_key=app_key, demands=demands, assignment=assignment)

    def remove(self, app_key: str) -> None:
        self._configurations.pop(app_key, None)

    def configurations(self) -> list[PlacedConfiguration]:
        return list(self._configurations.values())

    def configuration_of(self, app_key: str) -> PlacedConfiguration | None:
        return self._configurations.get(app_key)

    def copy(self) -> "SystemView":
        """A shallow copy the optimizer can mutate while exploring."""
        view = SystemView(self.cluster)
        view._configurations = dict(self._configurations)
        view._external_cpu = dict(self._external_cpu)
        view._external_flows = dict(self._external_flows)
        return view

    # -- external (measured) load ----------------------------------------------

    def set_external_cpu_load(self, hostname: str, consumers: float) -> None:
        """Record measured competing CPU consumers on a node."""
        if consumers <= 0:
            self._external_cpu.pop(hostname, None)
        else:
            self._external_cpu[hostname] = consumers

    def external_cpu_load(self, hostname: str) -> float:
        return self._external_cpu.get(hostname, 0.0)

    def set_external_link_load(self, host_a: str, host_b: str,
                               flows: float) -> None:
        """Record measured competing flows on a direct link."""
        key = frozenset((host_a, host_b))
        if flows <= 0:
            self._external_flows.pop(key, None)
        else:
            self._external_flows[key] = flows

    def external_link_load(self, host_a: str, host_b: str) -> float:
        return self._external_flows.get(frozenset((host_a, host_b)), 0.0)

    def clear_external_load(self) -> None:
        self._external_cpu.clear()
        self._external_flows.clear()

    # -- contention queries ----------------------------------------------------

    def cpu_consumers(self, hostname: str) -> int:
        """Number of placed node demands with CPU work on ``hostname``."""
        count = 0
        for config in self._configurations.values():
            for demand in config.demands.nodes:
                if demand.seconds and demand.seconds > 0 and \
                        config.assignment.placements.get(demand.local_name) \
                        == hostname:
                    count += 1
        return count

    def cpu_seconds_on(self, hostname: str) -> float:
        """Total reference CPU seconds proposed for ``hostname``."""
        total = 0.0
        for config in self._configurations.values():
            for demand in config.demands.nodes:
                if demand.seconds and \
                        config.assignment.placements.get(demand.local_name) \
                        == hostname:
                    total += demand.seconds
        return total

    def flows_between(self, host_a: str, host_b: str) -> int:
        """Number of placed link demands whose path uses link (a, b)."""
        if host_a == host_b:
            return 0
        count = 0
        target = self.cluster.link_between(host_a, host_b)
        for config in self._configurations.values():
            for link_demand in config.demands.links:
                if link_demand.total_mb <= 0:
                    continue
                endpoint_a = config.assignment.placements.get(
                    link_demand.endpoint_a)
                endpoint_b = config.assignment.placements.get(
                    link_demand.endpoint_b)
                if endpoint_a is None or endpoint_b is None \
                        or endpoint_a == endpoint_b:
                    continue
                if target is not None and any(
                        link is target for link in
                        self.cluster.path_links(endpoint_a, endpoint_b)):
                    count += 1
        return count

    def contention_factor(self, hostname: str) -> float:
        """CPU stretch factor on a node: max(1, consumers + external)."""
        return float(max(1.0, self.cpu_consumers(hostname)
                         + self.external_cpu_load(hostname)))

    def link_contention_factor(self, host_a: str, host_b: str) -> float:
        """Bandwidth stretch factor on a link: max(1, flows + external)."""
        return float(max(1.0, self.flows_between(host_a, host_b)
                         + self.external_link_load(host_a, host_b)))

    # -- processor-sharing sojourn estimates -----------------------------------

    def cpu_effective_seconds(self, hostname: str, own_seconds: float,
                              own_app_key: str | None = None) -> float:
        """Reference seconds a job of ``own_seconds`` effectively needs.

        Under processor sharing with (approximately) simultaneous arrivals,
        a job of service demand ``s`` among jobs ``s_j`` completes after
        ``sum_j min(s_j, s)``: every competitor delays it by at most its own
        length.  This closed form is exact for simultaneous PS arrivals and
        captures the asymmetry the Figure 3 database bundle relies on —
        a 1-second page-server request barely delays a 9-second query, while
        a second 9-second query doubles it.

        When ``own_app_key`` names a configuration already placed in this
        view, its own demands on the node are excluded (the ``own_seconds``
        term accounts for them).
        """
        if own_seconds <= 0:
            return 0.0
        effective = own_seconds
        for config in self._configurations.values():
            if config.app_key == own_app_key:
                continue
            for demand in config.demands.nodes:
                if demand.seconds and \
                        config.assignment.placements.get(demand.local_name) \
                        == hostname:
                    effective += min(demand.seconds, own_seconds)
        # Each external consumer is assumed to be at least as long as the
        # job itself (no demand information is observable, only presence).
        effective += self.external_cpu_load(hostname) * own_seconds
        return effective

    def transfer_effective_mb(self, host_a: str, host_b: str,
                              own_mb: float,
                              own_app_key: str | None = None) -> float:
        """Effective megabytes for a transfer sharing link (a, b) fairly.

        Same ``sum min`` sojourn form as :meth:`cpu_effective_seconds`,
        applied to flows whose placement path crosses the given link.
        """
        if own_mb <= 0:
            return 0.0
        target = self.cluster.link_between(host_a, host_b)
        if target is None:
            return own_mb
        effective = own_mb
        for config in self._configurations.values():
            if config.app_key == own_app_key:
                continue
            for link_demand in config.demands.links:
                if link_demand.total_mb <= 0:
                    continue
                endpoint_a = config.assignment.placements.get(
                    link_demand.endpoint_a)
                endpoint_b = config.assignment.placements.get(
                    link_demand.endpoint_b)
                if endpoint_a is None or endpoint_b is None \
                        or endpoint_a == endpoint_b:
                    continue
                if any(link is target for link in
                       self.cluster.path_links(endpoint_a, endpoint_b)):
                    effective += min(link_demand.total_mb, own_mb)
        effective += self.external_link_load(host_a, host_b) * own_mb
        return effective
