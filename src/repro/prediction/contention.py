"""The system view: who shares what, for contention-aware prediction.

Harmony's default model scales resource requirements "to reflect resource
contention".  To do that it needs a picture of every *proposed* placement at
once: a :class:`SystemView` accumulates the configurations the optimizer is
currently considering and answers, per node, how many applications would
compute there and, per link, how many flows would cross it.

The view deliberately models contention the way a processor-sharing server
behaves in steady state: a node serving ``k`` concurrent applications gives
each a ``1/k`` share, so CPU times stretch by ``k``; likewise link
bandwidth.  That is exactly the mechanism that produces the paper's
Figure 7 shape (two query-shipping clients -> double response time).

Besides the contention queries the view is the optimizer's *transactional*
substrate: :meth:`SystemView.place` and :meth:`SystemView.remove` return a
:class:`PlacementToken` describing exactly what changed, so candidate
trials can mutate the live view and roll back (see
:mod:`repro.controller.trial`) instead of deep-copying the whole view per
candidate.  Internally every placement is indexed by the nodes it computes
on and the physical links its traffic crosses (its
:class:`PlacementFootprint`); contention queries read those indexes in
O(sharers) instead of scanning every placed configuration, and
:meth:`apps_affected_by` exposes the *dirty set* — the applications whose
predictions can change when a given footprint appears or disappears.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.allocation.instantiate import ConcreteDemands
from repro.allocation.matcher import Assignment
from repro.cluster.topology import Cluster
from repro.errors import SimulationError

__all__ = ["PlacedConfiguration", "PlacementFootprint", "PlacementToken",
           "SystemView"]

#: A physical link is identified by its (unordered) endpoint pair; the
#: cluster forbids duplicate links between the same two hosts.
LinkKey = frozenset


@dataclass(frozen=True)
class PlacedConfiguration:
    """One application's proposed configuration and placement."""

    app_key: str
    demands: ConcreteDemands
    assignment: Assignment


@dataclass(frozen=True)
class PlacementFootprint:
    """What one placed configuration contributes to — and reads from.

    ``cpu`` maps hostname to the reference seconds of each CPU-consuming
    demand placed there (its CPU *write* set, which is also its CPU *read*
    set: contention at a node only matters to applications computing on
    it).  ``flows`` maps each physical link crossed by an explicit link
    demand to the per-flow megabytes (the link *write* set).  ``read_links``
    additionally includes the links general ``communication`` traffic is
    charged on (all-pairs paths) — traffic that *reads* link contention but
    does not add flows other applications see.
    """

    cpu: Mapping[str, tuple[float, ...]] = field(default_factory=dict)
    flows: Mapping[LinkKey, tuple[float, ...]] = field(default_factory=dict)
    read_links: frozenset = frozenset()

    def cpu_count_at(self, hostname: str) -> int:
        return len(self.cpu.get(hostname, ()))


_EMPTY_FOOTPRINT = PlacementFootprint()


@dataclass(frozen=True)
class PlacementToken:
    """Undo/delta record for one :meth:`SystemView.place` / ``remove``.

    ``removed``/``removed_footprint`` describe the configuration that was
    displaced (``None`` when the application was not placed before);
    ``added``/``added_footprint`` the one installed (``None`` for a pure
    removal).  :class:`~repro.controller.trial.ViewTrial` replays tokens in
    reverse to roll back; the delta predictor unions the affected sets of
    both footprints to obtain the dirty set of the mutation.
    """

    app_key: str
    removed: PlacedConfiguration | None
    removed_footprint: PlacementFootprint | None
    added: PlacedConfiguration | None
    added_footprint: PlacementFootprint | None
    #: The view's version before this mutation; rollback restores it, so
    #: a fully rolled-back trial leaves the version untouched and caches
    #: keyed on it (the TrialEngine's live predictions) stay valid.
    version_before: int = 0


class SystemView:
    """Aggregated proposed load over a cluster.

    Besides the configurations Harmony itself placed, the view carries
    *external* load estimates — competing work "out of Harmony's control
    (such as network traffic due to other applications)" that the
    controller measures through the metric interface.  External load is
    expressed as equivalent concurrent consumers per node/link; each
    stretches co-located work like an equal-length processor-sharing
    competitor (the conservative assumption when only a load count, not
    a demand, is observable).

    ``version`` increments on every observable mutation (placements,
    external load, topology-triggered reindex); prediction caches key on
    it to detect staleness.
    """

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self._configurations: dict[str, PlacedConfiguration] = {}
        self._external_cpu: dict[str, float] = {}
        self._external_flows: dict[LinkKey, float] = {}
        # -- incremental contention indexes --------------------------------
        self._footprints: dict[str, PlacementFootprint] = {}
        #: hostname -> app_key -> seconds of each CPU demand placed there
        self._host_entries: dict[str, dict[str, tuple[float, ...]]] = {}
        self._host_counts: dict[str, int] = {}
        #: physical link -> app_key -> megabytes of each flow crossing it
        self._link_entries: dict[LinkKey, dict[str, tuple[float, ...]]] = {}
        self._link_counts: dict[LinkKey, int] = {}
        #: physical link -> apps whose prediction reads its contention
        self._link_readers: dict[LinkKey, set[str]] = {}
        self.version: int = 0
        self._topology_version = getattr(cluster, "topology_version", 0)

    # -- membership ----------------------------------------------------------

    def place(self, app_key: str, demands: ConcreteDemands,
              assignment: Assignment) -> PlacementToken:
        """Add or replace one application's proposed configuration.

        Returns a :class:`PlacementToken` a trial can use to roll the
        mutation back.  Replacing an existing placement keeps the
        application's position in :meth:`configurations` (matching plain
        ``dict`` update semantics), so prediction dictionaries built from
        the view keep a stable iteration order across trials.
        """
        self._sync_topology()
        version_before = self.version
        removed = self._configurations.get(app_key)
        removed_footprint = self._footprints.get(app_key)
        if removed is not None:
            self._unindex(app_key, removed_footprint)
        config = PlacedConfiguration(
            app_key=app_key, demands=demands, assignment=assignment)
        footprint = self._footprint_for(demands, assignment)
        self._configurations[app_key] = config
        self._footprints[app_key] = footprint
        self._index(app_key, footprint)
        self.version += 1
        return PlacementToken(app_key=app_key, removed=removed,
                              removed_footprint=removed_footprint,
                              added=config, added_footprint=footprint,
                              version_before=version_before)

    def remove(self, app_key: str) -> PlacementToken:
        self._sync_topology()
        version_before = self.version
        removed = self._configurations.pop(app_key, None)
        removed_footprint = self._footprints.pop(app_key, None)
        if removed is not None:
            self._unindex(app_key, removed_footprint)
            self.version += 1
        return PlacementToken(app_key=app_key, removed=removed,
                              removed_footprint=removed_footprint,
                              added=None, added_footprint=None,
                              version_before=version_before)

    def restore(self, token: PlacementToken) -> None:
        """Undo one token (the trial rollback primitive)."""
        self._sync_topology()
        app_key = token.app_key
        current = self._footprints.get(app_key)
        if token.added is not None and app_key in self._configurations:
            self._unindex(app_key, current)
            if token.removed is None:
                del self._configurations[app_key]
                del self._footprints[app_key]
        if token.removed is not None:
            # Reinstall the displaced configuration, reusing its footprint
            # (placements and topology are unchanged under a trial).
            # Plain dict assignment: when the key is still present
            # (rollback of a replace) the app keeps its position in
            # :meth:`configurations`, so trial rollbacks never perturb
            # the objective's float-summation order — sweeps that *skip*
            # a bundle and sweeps that evaluate it leave the exact same
            # iteration order behind.
            self._configurations[app_key] = token.removed
            self._footprints[app_key] = token.removed_footprint \
                or _EMPTY_FOOTPRINT
            self._index(app_key, self._footprints[app_key])
        # A rolled-back mutation leaves no observable change, so the
        # version rewinds with it: version-keyed caches built before the
        # trial remain valid after it.
        self.version = token.version_before

    def configurations(self) -> list[PlacedConfiguration]:
        return list(self._configurations.values())

    def configuration_of(self, app_key: str) -> PlacedConfiguration | None:
        return self._configurations.get(app_key)

    def footprint_of(self, app_key: str) -> PlacementFootprint | None:
        """The indexed footprint of a placed application (or ``None``)."""
        self._sync_topology()
        return self._footprints.get(app_key)

    def copy(self) -> "SystemView":
        """A shallow copy the optimizer can mutate while exploring."""
        view = SystemView(self.cluster)
        view._configurations = dict(self._configurations)
        view._external_cpu = dict(self._external_cpu)
        view._external_flows = dict(self._external_flows)
        view._footprints = dict(self._footprints)
        view._host_entries = {host: dict(entries) for host, entries
                              in self._host_entries.items()}
        view._host_counts = dict(self._host_counts)
        view._link_entries = {key: dict(entries) for key, entries
                              in self._link_entries.items()}
        view._link_counts = dict(self._link_counts)
        view._link_readers = {key: set(apps) for key, apps
                              in self._link_readers.items()}
        view.version = self.version
        view._topology_version = self._topology_version
        return view

    # -- footprint maintenance -------------------------------------------------

    def _footprint_for(self, demands: ConcreteDemands,
                       assignment: Assignment) -> PlacementFootprint:
        placements = assignment.placements
        cpu: dict[str, list[float]] = {}
        for demand in demands.nodes:
            if not demand.seconds or demand.seconds <= 0:
                continue
            hostname = placements.get(demand.local_name)
            if hostname is None:
                continue
            cpu.setdefault(hostname, []).append(demand.seconds)
        flows: dict[LinkKey, list[float]] = {}
        for link_demand in demands.links:
            if link_demand.total_mb <= 0:
                continue
            host_a = placements.get(link_demand.endpoint_a)
            host_b = placements.get(link_demand.endpoint_b)
            if host_a is None or host_b is None or host_a == host_b:
                continue
            for link in self._safe_path(host_a, host_b):
                key = frozenset((link.host_a, link.host_b))
                flows.setdefault(key, []).append(link_demand.total_mb)
        read_links = set(flows)
        if demands.communication_mb and demands.communication_mb > 0:
            hosts = sorted(set(placements.values()))
            for i, host_a in enumerate(hosts):
                for host_b in hosts[i + 1:]:
                    for link in self._safe_path(host_a, host_b):
                        read_links.add(frozenset((link.host_a, link.host_b)))
        return PlacementFootprint(
            cpu={host: tuple(values) for host, values in cpu.items()},
            flows={key: tuple(values) for key, values in flows.items()},
            read_links=frozenset(read_links))

    def _safe_path(self, host_a: str, host_b: str):
        try:
            return self.cluster.path_links(host_a, host_b)
        except SimulationError:
            return ()  # disconnected endpoints contribute no flows

    def _index(self, app_key: str, footprint: PlacementFootprint) -> None:
        for hostname, seconds in footprint.cpu.items():
            self._host_entries.setdefault(hostname, {})[app_key] = seconds
            self._host_counts[hostname] = \
                self._host_counts.get(hostname, 0) + len(seconds)
        for key, megabytes in footprint.flows.items():
            self._link_entries.setdefault(key, {})[app_key] = megabytes
            self._link_counts[key] = \
                self._link_counts.get(key, 0) + len(megabytes)
        for key in footprint.read_links:
            self._link_readers.setdefault(key, set()).add(app_key)

    def _unindex(self, app_key: str,
                 footprint: PlacementFootprint | None) -> None:
        if footprint is None:
            return
        for hostname, seconds in footprint.cpu.items():
            entries = self._host_entries.get(hostname)
            if entries is not None:
                entries.pop(app_key, None)
                if not entries:
                    del self._host_entries[hostname]
            count = self._host_counts.get(hostname, 0) - len(seconds)
            if count > 0:
                self._host_counts[hostname] = count
            else:
                self._host_counts.pop(hostname, None)
        for key, megabytes in footprint.flows.items():
            entries = self._link_entries.get(key)
            if entries is not None:
                entries.pop(app_key, None)
                if not entries:
                    del self._link_entries[key]
            count = self._link_counts.get(key, 0) - len(megabytes)
            if count > 0:
                self._link_counts[key] = count
            else:
                self._link_counts.pop(key, None)
        for key in footprint.read_links:
            readers = self._link_readers.get(key)
            if readers is not None:
                readers.discard(app_key)
                if not readers:
                    del self._link_readers[key]

    def _sync_topology(self) -> None:
        """Reindex every footprint after the cluster graph changed.

        Node/link additions can reroute paths, invalidating the physical
        links recorded in footprints; placements themselves are unchanged.
        """
        current = getattr(self.cluster, "topology_version", 0)
        if current == self._topology_version:
            return
        self._topology_version = current
        self._footprints.clear()
        self._host_entries.clear()
        self._host_counts.clear()
        self._link_entries.clear()
        self._link_counts.clear()
        self._link_readers.clear()
        for app_key, config in self._configurations.items():
            footprint = self._footprint_for(config.demands,
                                            config.assignment)
            self._footprints[app_key] = footprint
            self._index(app_key, footprint)
        self.version += 1

    # -- dirty sets ------------------------------------------------------------

    def apps_affected_by(self, footprint: PlacementFootprint) -> set[str]:
        """Placed applications whose predictions read this footprint.

        The dirty-set contract of delta prediction: when a configuration
        with this footprint is added or removed, only the returned
        applications (plus the mutated one itself, and any application
        using an opaque performance model) can see their predicted
        response times change.  CPU contention is read exactly by the
        applications computing on the written nodes; link contention by
        the applications whose explicit *or* general-communication traffic
        crosses the written links.
        """
        self._sync_topology()
        affected: set[str] = set()
        for hostname in footprint.cpu:
            entries = self._host_entries.get(hostname)
            if entries:
                affected.update(entries)
        for key in footprint.flows:
            readers = self._link_readers.get(key)
            if readers:
                affected.update(readers)
        return affected

    # -- external (measured) load ----------------------------------------------

    def set_external_cpu_load(self, hostname: str, consumers: float) -> None:
        """Record measured competing CPU consumers on a node."""
        if consumers <= 0:
            self._external_cpu.pop(hostname, None)
        else:
            self._external_cpu[hostname] = consumers
        self.version += 1

    def external_cpu_load(self, hostname: str) -> float:
        return self._external_cpu.get(hostname, 0.0)

    def set_external_link_load(self, host_a: str, host_b: str,
                               flows: float) -> None:
        """Record measured competing flows on a direct link."""
        key = frozenset((host_a, host_b))
        if flows <= 0:
            self._external_flows.pop(key, None)
        else:
            self._external_flows[key] = flows
        self.version += 1

    def external_link_load(self, host_a: str, host_b: str) -> float:
        return self._external_flows.get(frozenset((host_a, host_b)), 0.0)

    def clear_external_load(self) -> None:
        self._external_cpu.clear()
        self._external_flows.clear()
        self.version += 1

    # -- contention queries ----------------------------------------------------

    def cpu_consumers(self, hostname: str) -> int:
        """Number of placed node demands with CPU work on ``hostname``."""
        self._sync_topology()
        return self._host_counts.get(hostname, 0)

    def cpu_seconds_on(self, hostname: str) -> float:
        """Total reference CPU seconds proposed for ``hostname``."""
        self._sync_topology()
        entries = self._host_entries.get(hostname)
        if not entries:
            return 0.0
        return sum(sum(seconds) for seconds in entries.values())

    def flows_between(self, host_a: str, host_b: str) -> int:
        """Number of placed link demands whose path uses link (a, b)."""
        if host_a == host_b:
            return 0
        self._sync_topology()
        if self.cluster.link_between(host_a, host_b) is None:
            return 0
        return self._link_counts.get(frozenset((host_a, host_b)), 0)

    def contention_factor(self, hostname: str) -> float:
        """CPU stretch factor on a node: max(1, consumers + external)."""
        return float(max(1.0, self.cpu_consumers(hostname)
                         + self.external_cpu_load(hostname)))

    def link_contention_factor(self, host_a: str, host_b: str) -> float:
        """Bandwidth stretch factor on a link: max(1, flows + external)."""
        return float(max(1.0, self.flows_between(host_a, host_b)
                         + self.external_link_load(host_a, host_b)))

    # -- processor-sharing sojourn estimates -----------------------------------

    def cpu_effective_seconds(self, hostname: str, own_seconds: float,
                              own_app_key: str | None = None) -> float:
        """Reference seconds a job of ``own_seconds`` effectively needs.

        Under processor sharing with (approximately) simultaneous arrivals,
        a job of service demand ``s`` among jobs ``s_j`` completes after
        ``sum_j min(s_j, s)``: every competitor delays it by at most its own
        length.  This closed form is exact for simultaneous PS arrivals and
        captures the asymmetry the Figure 3 database bundle relies on —
        a 1-second page-server request barely delays a 9-second query, while
        a second 9-second query doubles it.

        When ``own_app_key`` names a configuration already placed in this
        view, its own demands on the node are excluded (the ``own_seconds``
        term accounts for them).
        """
        if own_seconds <= 0:
            return 0.0
        self._sync_topology()
        effective = own_seconds
        entries = self._host_entries.get(hostname)
        if entries:
            for app_key, seconds in entries.items():
                if app_key == own_app_key:
                    continue
                for value in seconds:
                    effective += value if value < own_seconds else own_seconds
        # Each external consumer is assumed to be at least as long as the
        # job itself (no demand information is observable, only presence).
        effective += self.external_cpu_load(hostname) * own_seconds
        return effective

    def transfer_effective_mb(self, host_a: str, host_b: str,
                              own_mb: float,
                              own_app_key: str | None = None) -> float:
        """Effective megabytes for a transfer sharing link (a, b) fairly.

        Same ``sum min`` sojourn form as :meth:`cpu_effective_seconds`,
        applied to flows whose placement path crosses the given link.
        """
        if own_mb <= 0:
            return 0.0
        self._sync_topology()
        if self.cluster.link_between(host_a, host_b) is None:
            return own_mb
        effective = own_mb
        entries = self._link_entries.get(frozenset((host_a, host_b)))
        if entries:
            for app_key, megabytes in entries.items():
                if app_key == own_app_key:
                    continue
                for value in megabytes:
                    effective += value if value < own_mb else own_mb
        effective += self.external_link_load(host_a, host_b) * own_mb
        return effective
