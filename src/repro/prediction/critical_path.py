"""Critical-path performance model (the paper's suggested extension).

Section 4.2: "we might use the critical path notion to take inter-process
dependencies into account [Hollingsworth 1998]".  This model lets an
application describe its computation as a DAG of tasks, each pinned to one
of the option's local node names; the predicted response time is the longest
contention-stretched path through the DAG.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.allocation.instantiate import ConcreteDemands
from repro.allocation.matcher import Assignment
from repro.errors import PredictionError
from repro.prediction.contention import SystemView

__all__ = ["Task", "CriticalPathModel"]


@dataclass(frozen=True)
class Task:
    """One DAG task: reference-seconds of CPU on a named local node.

    ``transfer_mb`` is data shipped to each successor (charged on the link
    between the two tasks' placed hosts).
    """

    name: str
    node: str
    seconds: float
    transfer_mb: float = 0.0
    depends_on: tuple[str, ...] = field(default_factory=tuple)


class CriticalPathModel:
    """Longest weighted path through a task DAG under contention."""

    def __init__(self, tasks: list[Task]):
        if not tasks:
            raise PredictionError("critical-path model needs tasks")
        self.tasks = {task.name: task for task in tasks}
        if len(self.tasks) != len(tasks):
            raise PredictionError("duplicate task names")
        self.graph = nx.DiGraph()
        for task in tasks:
            self.graph.add_node(task.name)
        for task in tasks:
            for dep in task.depends_on:
                if dep not in self.tasks:
                    raise PredictionError(
                        f"task {task.name!r} depends on unknown {dep!r}")
                self.graph.add_edge(dep, task.name)
        if not nx.is_directed_acyclic_graph(self.graph):
            raise PredictionError("task graph has a cycle")
        self._order = list(nx.topological_sort(self.graph))

    def predict(self, demands: ConcreteDemands, assignment: Assignment,
                view: SystemView, app_key: str | None = None) -> float:
        finish: dict[str, float] = {}
        for name in self._order:
            task = self.tasks[name]
            start = 0.0
            for dep in task.depends_on:
                dep_task = self.tasks[dep]
                arrival = finish[dep] + self._edge_transfer_time(
                    dep_task, task, assignment, view)
                start = max(start, arrival)
            finish[name] = start + self._task_time(task, assignment, view)
        return max(finish.values())

    def _task_time(self, task: Task, assignment: Assignment,
                   view: SystemView) -> float:
        hostname = assignment.hostname_of(task.node)
        node = view.cluster.node(hostname)
        return task.seconds * view.contention_factor(hostname) / node.speed

    def _edge_transfer_time(self, producer: Task, consumer: Task,
                            assignment: Assignment, view: SystemView,
                            ) -> float:
        if producer.transfer_mb <= 0:
            return 0.0
        host_a = assignment.hostname_of(producer.node)
        host_b = assignment.hostname_of(consumer.node)
        if host_a == host_b:
            return 0.0
        worst = 0.0
        for link in view.cluster.path_links(host_a, host_b):
            stretch = view.link_contention_factor(link.host_a, link.host_b)
            seconds = producer.transfer_mb * stretch / link.bandwidth_mbps \
                + link.latency_seconds
            worst = max(worst, seconds)
        return worst

    def critical_path(self, demands: ConcreteDemands,
                      assignment: Assignment,
                      view: SystemView) -> list[str]:
        """The task names along the longest path, in execution order."""
        finish: dict[str, float] = {}
        predecessor: dict[str, str | None] = {}
        for name in self._order:
            task = self.tasks[name]
            start, best_dep = 0.0, None
            for dep in task.depends_on:
                dep_task = self.tasks[dep]
                arrival = finish[dep] + self._edge_transfer_time(
                    dep_task, task, assignment, view)
                if arrival > start:
                    start, best_dep = arrival, dep
            predecessor[name] = best_dep
            finish[name] = start + self._task_time(task, assignment, view)
        tail = max(finish, key=lambda n: finish[n])
        path: list[str] = []
        cursor: str | None = tail
        while cursor is not None:
            path.append(cursor)
            cursor = predecessor[cursor]
        return list(reversed(path))
