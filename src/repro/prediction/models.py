"""Performance-model interfaces and the default Harmony model.

Section 4.2: "Harmony has a very simple default performance model that
combines resource usage with a simple contention model."  The default model
here computes, for one placed configuration:

* per node demand: the processor-sharing sojourn estimate
  ``sum_j min(s_j, s) / speed(node)`` over all demands sharing the node —
  the CPU phase;
* per link demand: the same estimate over flows sharing each hop,
  ``sum_j min(mb_j, mb) / bandwidth`` at the bottleneck — the network phase;
* general ``communication`` traffic is charged at the worst placed pair.

Node phases of a parallel configuration overlap (max), the network phase is
additive: ``response = max(cpu phases) + network``.

Applications with richer behaviour provide an *explicit* model — a
piecewise-linear curve from the ``performance`` tag (see
:class:`ExplicitSpecModel`) or an arbitrary callable
(:class:`CallableModel`) — exactly the paper's escape hatch for "complex
interactions between constituent processes".
"""

from __future__ import annotations

from typing import Callable, Mapping, Protocol

from repro.allocation.instantiate import ConcreteDemands
from repro.allocation.matcher import Assignment
from repro.errors import PredictionError
from repro.prediction.contention import SystemView
from repro.prediction.piecewise import PiecewiseLinearModel
from repro.rsl.model import PerformanceSpec

__all__ = ["PerformanceModel", "DefaultModel", "ExplicitSpecModel",
           "ExpressionSpecModel", "CallableModel", "model_for_spec"]


class PerformanceModel(Protocol):
    """Predicts a configuration's response time under a system view."""

    def predict(self, demands: ConcreteDemands, assignment: Assignment,
                view: SystemView, app_key: str | None = None) -> float:
        """Projected completion seconds for one job/query/iteration.

        ``app_key`` identifies this configuration inside ``view`` so that
        contention estimates do not double-count the job against itself.
        """
        ...  # pragma: no cover - protocol


class DefaultModel:
    """Harmony's default CPU + network contention model.

    CPU contention uses the processor-sharing sojourn estimate
    :meth:`SystemView.cpu_effective_seconds` (``sum_j min(s_j, s)``), so a
    short competitor adds only its own length while an equal competitor
    doubles the job — the asymmetry that drives the database crossover.
    """

    def predict(self, demands: ConcreteDemands, assignment: Assignment,
                view: SystemView, app_key: str | None = None) -> float:
        cluster = view.cluster
        cpu_phase = 0.0
        for demand in demands.nodes:
            if not demand.seconds:
                continue
            hostname = assignment.hostname_of(demand.local_name)
            node = cluster.node(hostname)
            effective = view.cpu_effective_seconds(
                hostname, demand.seconds, own_app_key=app_key)
            cpu_phase = max(cpu_phase, effective / node.speed)

        network_phase = 0.0
        for link_demand in demands.links:
            if link_demand.total_mb <= 0:
                continue
            host_a = assignment.hostname_of(link_demand.endpoint_a)
            host_b = assignment.hostname_of(link_demand.endpoint_b)
            if host_a == host_b:
                continue
            network_phase += self._transfer_time(
                view, host_a, host_b, link_demand.total_mb, app_key)

        if demands.communication_mb and demands.communication_mb > 0:
            network_phase += self._general_communication_time(
                demands, assignment, view, app_key)

        return cpu_phase + network_phase

    def _transfer_time(self, view: SystemView, host_a: str, host_b: str,
                       total_mb: float, app_key: str | None) -> float:
        cluster = view.cluster
        worst = 0.0
        for link in cluster.path_links(host_a, host_b):
            effective = view.transfer_effective_mb(
                link.host_a, link.host_b, total_mb, own_app_key=app_key)
            seconds = effective / link.bandwidth_mbps \
                + link.latency_seconds
            worst = max(worst, seconds)
        return worst

    def _general_communication_time(self, demands: ConcreteDemands,
                                    assignment: Assignment,
                                    view: SystemView,
                                    app_key: str | None) -> float:
        """Charge all-pairs traffic at the slowest placed pair."""
        hosts = sorted(assignment.hostnames())
        if len(hosts) < 2:
            return 0.0
        worst = 0.0
        for i, host_a in enumerate(hosts):
            for host_b in hosts[i + 1:]:
                worst = max(worst, self._transfer_time(
                    view, host_a, host_b,
                    demands.communication_mb or 0.0, app_key))
        return worst


class ExplicitSpecModel:
    """An application-supplied piecewise-linear model over one parameter.

    The parameter is a variable of the configuration (e.g. ``workerNodes``);
    when the spec names none, the number of placed nodes is used — matching
    the paper's Bag example, whose data points map node counts to expected
    running times.  Contention on the placed nodes still stretches the
    curve's prediction: the user curve describes the *unloaded* runtime.
    """

    def __init__(self, spec: PerformanceSpec, apply_contention: bool = True):
        self.spec = spec
        self.curve = PiecewiseLinearModel.from_spec(spec)
        self.apply_contention = apply_contention

    def predict(self, demands: ConcreteDemands, assignment: Assignment,
                view: SystemView, app_key: str | None = None) -> float:
        x = self._parameter_value(demands)
        base = self.curve.predict(x)
        if not self.apply_contention:
            return base
        stretch = 1.0
        for demand in demands.nodes:
            if not demand.seconds:
                continue
            hostname = assignment.hostname_of(demand.local_name)
            node = view.cluster.node(hostname)
            stretch = max(stretch,
                          view.contention_factor(hostname) / node.speed)
        return base * stretch

    def _parameter_value(self, demands: ConcreteDemands) -> float:
        if self.spec.parameter is not None:
            value = demands.variable_assignment.get(self.spec.parameter)
            if value is None:
                raise PredictionError(
                    f"performance parameter {self.spec.parameter!r} is not "
                    f"a variable of configuration {demands.option_name!r}")
            return value
        if len(demands.variable_assignment) == 1:
            return next(iter(demands.variable_assignment.values()))
        return float(len(demands.nodes))


class ExpressionSpecModel:
    """An application-supplied closed-form runtime expression.

    The paper's alternative to data points: "an explicit specification
    might include either an expression or a function".  The expression is
    evaluated against the configuration's variable assignment plus the
    per-node memory the controller granted (under ``<node>.memory``) and
    the placed node count (``nodes``); node contention stretches the
    result exactly as for the piecewise model.
    """

    def __init__(self, spec: PerformanceSpec, apply_contention: bool = True):
        if spec.expression is None:
            raise PredictionError(
                "ExpressionSpecModel needs a performance expression")
        self.spec = spec
        self.expression = spec.expression
        self.apply_contention = apply_contention

    def predict(self, demands: ConcreteDemands, assignment: Assignment,
                view: SystemView, app_key: str | None = None) -> float:
        env = dict(demands.variable_assignment)
        env["nodes"] = float(len(demands.nodes))
        for demand in demands.nodes:
            env.setdefault(f"{demand.local_name}.memory",
                           demand.memory_min_mb)
        base = self.expression.evaluate(env)
        if base < 0:
            raise PredictionError(
                f"performance expression produced negative time {base}")
        if not self.apply_contention:
            return base
        stretch = 1.0
        for demand in demands.nodes:
            if not demand.seconds:
                continue
            hostname = assignment.hostname_of(demand.local_name)
            node = view.cluster.node(hostname)
            stretch = max(stretch,
                          view.contention_factor(hostname) / node.speed)
        return base * stretch


class CallableModel:
    """Adapts an arbitrary function into a performance model.

    The callable receives ``(demands, assignment, view)`` keyword-free and
    returns seconds — the Python analogue of the paper's TCL prediction
    scripts.
    """

    def __init__(self, func: Callable[[ConcreteDemands, Assignment,
                                       SystemView], float]):
        self._func = func

    def predict(self, demands: ConcreteDemands, assignment: Assignment,
                view: SystemView, app_key: str | None = None) -> float:
        value = float(self._func(demands, assignment, view))
        if value < 0:
            raise PredictionError(
                f"callable model returned negative time {value}")
        return value


def model_for_spec(spec: PerformanceSpec | None,
                   default: PerformanceModel | None = None,
                   ) -> PerformanceModel:
    """The model to use for an option: explicit when a spec exists.

    This is the dispatch rule of Section 3.1's "performance prediction":
    Harmony's default model unless the application overrides it — with
    data points (piecewise interpolation) or a closed-form expression.
    """
    if spec is not None and spec.points:
        return ExplicitSpecModel(spec)
    if spec is not None and spec.expression is not None:
        return ExpressionSpecModel(spec)
    return default if default is not None else DefaultModel()
