"""Hierarchical Harmony namespace (paper Section 3.2).

Paths follow ``application.instance.bundle.option.resource.tag``; the
controller publishes instantiated options and allocated resources here, and
applications (and RSL expressions) read them back.
"""

from repro.namespace.namespace import Namespace, NamespaceNode, NamespaceView
from repro.namespace.paths import (
    is_prefix,
    join_path,
    parent_path,
    split_path,
    validate_component,
)

__all__ = [
    "Namespace", "NamespaceNode", "NamespaceView",
    "split_path", "join_path", "parent_path", "is_prefix",
    "validate_component",
]
