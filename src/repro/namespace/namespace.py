"""The hierarchical Harmony namespace (paper Section 3.2).

The namespace is the shared vocabulary between the adaptation controller and
applications: it holds the currently instantiated application options and the
resources assigned to them, addressed by dotted paths like
``DBclient.66.where.DS.client.memory``.

The implementation is a tree of :class:`NamespaceNode` objects; leaves carry
values (numbers or strings).  Watchers may subscribe to a path prefix and are
notified synchronously on every change underneath it — the controller uses
this to propagate option changes into application variables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.errors import NamespaceError
from repro.namespace.paths import is_prefix, join_path, split_path

__all__ = ["Namespace", "NamespaceNode", "NamespaceView"]

Value = float | int | str


@dataclass
class NamespaceNode:
    """One tree node: an interior namespace level or a leaf value."""

    name: str
    value: Value | None = None
    children: dict[str, "NamespaceNode"] = field(default_factory=dict)

    def is_leaf(self) -> bool:
        return not self.children


class Namespace:
    """A mutable hierarchical key/value tree with prefix watchers.

    >>> ns = Namespace()
    >>> ns.set("DBclient.66.where.DS.client.memory", 32)
    >>> ns.get("DBclient.66.where.DS.client.memory")
    32
    """

    def __init__(self) -> None:
        self._root = NamespaceNode(name="")
        self._watchers: list[tuple[str, Callable[[str, Value | None], None]]] = []

    # -- basic operations --------------------------------------------------

    def set(self, path: str, value: Value) -> None:
        """Create or overwrite the leaf at ``path``."""
        parts = split_path(path)
        node = self._root
        for part in parts:
            node = node.children.setdefault(part, NamespaceNode(name=part))
        node.value = value
        self._notify(path, value)

    def get(self, path: str, default: Value | None = None) -> Value | None:
        """Return the value at ``path`` or ``default`` when absent."""
        node = self._find(path)
        if node is None or node.value is None:
            return default
        return node.value

    def require(self, path: str) -> Value:
        """Return the value at ``path``; raise if missing."""
        node = self._find(path)
        if node is None or node.value is None:
            raise NamespaceError(f"no value at namespace path {path!r}")
        return node.value

    def exists(self, path: str) -> bool:
        """Whether ``path`` names any node (leaf or interior)."""
        return self._find(path) is not None

    def delete(self, path: str) -> None:
        """Remove the subtree rooted at ``path``; raise if absent."""
        parts = split_path(path)
        node = self._root
        for part in parts[:-1]:
            child = node.children.get(part)
            if child is None:
                raise NamespaceError(f"namespace path {path!r} not found")
            node = child
        if parts[-1] not in node.children:
            raise NamespaceError(f"namespace path {path!r} not found")
        del node.children[parts[-1]]
        self._notify(path, None)

    # -- traversal ---------------------------------------------------------

    def children(self, path: str | None = None) -> list[str]:
        """The names of the direct children under ``path`` (root if None)."""
        node = self._root if path is None else self._find(path)
        if node is None:
            raise NamespaceError(f"namespace path {path!r} not found")
        return sorted(node.children)

    def walk(self, path: str | None = None) -> Iterator[tuple[str, Value]]:
        """Yield ``(full_path, value)`` for every leaf value under ``path``."""
        if path is None:
            start, prefix_parts = self._root, ()
        else:
            node = self._find(path)
            if node is None:
                return
            start, prefix_parts = node, split_path(path)
        yield from self._walk_node(start, prefix_parts)

    def _walk_node(self, node: NamespaceNode, prefix: tuple[str, ...],
                   ) -> Iterator[tuple[str, Value]]:
        if node.value is not None and prefix:
            yield ".".join(prefix), node.value
        for name in sorted(node.children):
            yield from self._walk_node(node.children[name], prefix + (name,))

    def as_dict(self, path: str | None = None) -> dict[str, Value]:
        """Snapshot all leaves under ``path`` as a flat dict."""
        return dict(self.walk(path))

    # -- watchers ----------------------------------------------------------

    def watch(self, prefix: str,
              callback: Callable[[str, Value | None], None]) -> Callable[[], None]:
        """Call ``callback(path, value)`` on changes under ``prefix``.

        ``value`` is ``None`` for deletions.  Returns an unsubscribe
        function.
        """
        entry = (prefix, callback)
        self._watchers.append(entry)

        def unsubscribe() -> None:
            if entry in self._watchers:
                self._watchers.remove(entry)

        return unsubscribe

    def _notify(self, path: str, value: Value | None) -> None:
        for prefix, callback in list(self._watchers):
            if is_prefix(prefix, path):
                callback(path, value)

    # -- scoped views ------------------------------------------------------

    def view(self, prefix: str) -> "NamespaceView":
        """A view whose paths are all relative to ``prefix``."""
        return NamespaceView(self, prefix)

    def _find(self, path: str) -> NamespaceNode | None:
        node = self._root
        for part in split_path(path):
            child = node.children.get(part)
            if child is None:
                return None
            node = child
        return node


class NamespaceView:
    """A namespace scoped under a prefix.

    Options refer to their resources by local names (``client.memory``); a
    view rooted at ``DBclient.66.where.DS`` resolves those names against the
    global tree.  Views also satisfy the expression-evaluator
    :class:`~repro.rsl.expressions.Environment` protocol via :meth:`lookup`.
    """

    def __init__(self, namespace: Namespace, prefix: str):
        split_path(prefix)  # validate
        self._namespace = namespace
        self._prefix = prefix

    @property
    def prefix(self) -> str:
        return self._prefix

    def set(self, path: str, value: Value) -> None:
        self._namespace.set(join_path(self._prefix, path), value)

    def get(self, path: str, default: Value | None = None) -> Value | None:
        return self._namespace.get(join_path(self._prefix, path), default)

    def require(self, path: str) -> Value:
        return self._namespace.require(join_path(self._prefix, path))

    def exists(self, path: str) -> bool:
        return self._namespace.exists(join_path(self._prefix, path))

    def as_dict(self) -> dict[str, Value]:
        """Leaves under the prefix, keyed by their *local* paths."""
        full = self._namespace.as_dict(self._prefix)
        offset = len(self._prefix) + 1
        return {path[offset:]: value for path, value in full.items()}

    def lookup(self, name: str) -> float:
        """Environment-protocol lookup for RSL expression evaluation."""
        value = self.get(name)
        if value is None:
            raise KeyError(name)
        return float(value)
