"""Dotted-path utilities for the Harmony namespace.

Fully qualified names follow the paper's Section 3.2::

    application.instance.bundle.option.resource.tag

e.g. ``DBclient.66.where.DS.client.memory``.  Path components may not be
empty and may not contain dots; replica resources use bracketed names like
``worker[3]`` which are single components.
"""

from __future__ import annotations

from repro.errors import NamespaceError

__all__ = ["split_path", "join_path", "validate_component", "parent_path",
           "is_prefix"]


def validate_component(component: str) -> str:
    """Check one path component, returning it unchanged when valid."""
    if not component:
        raise NamespaceError("empty namespace path component")
    if "." in component:
        raise NamespaceError(
            f"namespace component {component!r} may not contain '.'")
    return component


def split_path(path: str) -> tuple[str, ...]:
    """Split ``'a.b.c'`` into ``('a', 'b', 'c')``, validating components."""
    if not path:
        raise NamespaceError("empty namespace path")
    return tuple(validate_component(part) for part in path.split("."))


def join_path(*components: str) -> str:
    """Join components (each may itself be a dotted path) into one path."""
    parts: list[str] = []
    for component in components:
        if not component:
            raise NamespaceError("empty namespace path component")
        parts.extend(split_path(component))
    return ".".join(parts)


def parent_path(path: str) -> str | None:
    """The path one level up, or ``None`` for a root-level path."""
    parts = split_path(path)
    if len(parts) == 1:
        return None
    return ".".join(parts[:-1])


def is_prefix(prefix: str, path: str) -> bool:
    """Whether ``prefix`` names an ancestor of (or equals) ``path``."""
    prefix_parts = split_path(prefix)
    path_parts = split_path(path)
    return path_parts[:len(prefix_parts)] == prefix_parts
