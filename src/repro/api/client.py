"""The Harmony client runtime library (the paper's Figure 5 API).

Applications link this library, connect to the Harmony server over a
transport, and then use the five calls from the paper::

    client = HarmonyClient(transport)
    client.startup("DBclient")                     # harmony_startup
    client.bundle_setup(RSL_TEXT)                  # harmony_bundle_setup
    where = client.add_variable("where.option",    # harmony_add_variable
                                "QS", VariableType.STRING)
    ...
    client.wait_for_update()                       # harmony_wait_for_update
    if where.changed and where.consume() == "DS":
        reconfigure_to_data_shipping()
    ...
    client.end()                                   # harmony_end

Updates pushed by the server are applied to the declared
:class:`~repro.api.variables.HarmonyVariable` objects by the transport
receiver (the paper's "I/O event handler"); the application polls them at
its natural phase boundaries.  ``wait_for_update`` blocks (wall-clock) for
TCP transports; single-threaded simulated applications use the non-blocking
:meth:`HarmonyClient.poll_update` instead.

Module-level aliases with the paper's exact C names (``harmony_startup``
etc.) operate on a process-wide default client for API fidelity.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.api.protocol import make_message, require_field
from repro.api.transport import Transport
from repro.api.variables import HarmonyVariable, VariableTable, VariableType
from repro.errors import HarmonyError, ProtocolError, TransportError

__all__ = ["HarmonyClient", "harmony_startup", "harmony_bundle_setup",
           "harmony_add_variable", "harmony_wait_for_update", "harmony_end",
           "set_default_client"]


class HarmonyClient:
    """One application's connection to the Harmony server."""

    def __init__(self, transport: Transport):
        self.transport = transport
        self.variables = VariableTable()
        self.app_key: str | None = None
        self.instance_id: int | None = None
        self._response: dict[str, Any] | None = None
        self._response_ready = threading.Event()
        self._update_ready = threading.Event()
        self._updates_seen = 0
        self._last_update: dict[str, Any] = {}
        self._lock = threading.Lock()
        self._ended = False
        transport.set_receiver(self._on_message)

    # -- the Figure 5 calls ---------------------------------------------------

    def startup(self, app_name: str, use_interrupts: bool = False) -> str:
        """Register with the Harmony server; returns the ``app.instance`` key.

        ``use_interrupts`` mirrors the paper's flag: when True the
        application asks to be notified eagerly rather than at poll points
        (our transports always deliver eagerly; the flag is recorded for the
        server's information).
        """
        if self.app_key is not None:
            raise ProtocolError("startup called twice")
        reply = self._request(make_message(
            "register", app_name=app_name, use_interrupts=use_interrupts))
        self.app_key = str(require_field(reply, "key"))
        self.instance_id = int(require_field(reply, "instance_id"))
        return self.app_key

    def bundle_setup(self, rsl_text: str) -> dict[str, Any]:
        """Export a bundle; returns the initially chosen configuration."""
        self._require_started()
        reply = self._request(make_message("bundle_setup", rsl=rsl_text))
        return {
            "bundle_name": require_field(reply, "bundle_name"),
            "option": require_field(reply, "option"),
            "variables": reply.get("variables", {}),
            "placements": reply.get("placements", {}),
        }

    def add_variable(self, name: str, default: Any,
                     var_type: VariableType = VariableType.FLOAT,
                     ) -> HarmonyVariable:
        """Declare a variable shared with Harmony; returns the live object."""
        self._require_started()
        variable = self.variables.declare(name, default, var_type)
        reply = self._request(make_message(
            "add_variable", name=name, default=variable.value,
            var_type=var_type.value))
        # The server may answer with a current value differing from the
        # default (e.g. the option already chosen during bundle_setup).
        if "value" in reply and reply["value"] is not None:
            variable.apply_update(reply["value"])
            variable.consume()  # initial sync is not a "change"
        return variable

    def wait_for_update(self, timeout: float | None = None,
                        ) -> dict[str, Any]:
        """Block until the server pushes a variable update batch.

        Returns the raw update mapping.  Raises :class:`TransportError` on
        timeout.  Only meaningful on threaded (TCP) transports; simulated
        applications poll :meth:`poll_update`.
        """
        self._require_started()
        self.transport.send(make_message("wait_for_update"))
        if not self._update_ready.wait(timeout):
            raise TransportError("timed out waiting for variable update")
        with self._lock:
            self._update_ready.clear()
            return dict(self._last_update)

    def end(self) -> None:
        """Tell Harmony the application is terminating."""
        if self._ended:
            return
        self._require_started()
        self._request(make_message("end"))
        self._ended = True
        self.transport.close()

    # -- extras ------------------------------------------------------------------

    def report_metric(self, name: str, value: float) -> None:
        """Feed an application metric into the Harmony metric interface."""
        self._require_started()
        self.transport.send(make_message(
            "report_metric", name=name, value=float(value)))

    def query_nodes(self) -> dict[str, Any]:
        """Ask Harmony for current resource availability.

        Returns ``{"nodes": [...], "rsl": "harmonyNode ..."}`` — the
        structured per-node records plus equivalent ``harmonyNode`` RSL.
        """
        self._require_started()
        reply = self._request(make_message("query_nodes"))
        return {"nodes": require_field(reply, "nodes"),
                "rsl": reply.get("rsl", "")}

    def poll_update(self) -> dict[str, Any] | None:
        """Non-blocking check for a new update batch (simulation-friendly).

        Returns the batch once per arrival, then ``None`` until the next.
        """
        with self._lock:
            if not self._update_ready.is_set():
                return None
            self._update_ready.clear()
            return dict(self._last_update)

    @property
    def updates_received(self) -> int:
        return self._updates_seen

    # -- plumbing ---------------------------------------------------------------

    def _require_started(self) -> None:
        if self.app_key is None:
            raise ProtocolError("call startup() first")
        if self._ended:
            raise ProtocolError("client already ended")

    def _request(self, message: dict[str, Any]) -> dict[str, Any]:
        """Send a request and wait for its (single) response message."""
        self._response_ready.clear()
        self._response = None
        self.transport.send(message)
        if not self._response_ready.wait(timeout=30.0):
            raise TransportError(
                f"no response to {message['type']!r} within 30s")
        response = self._response
        assert response is not None
        if response.get("type") == "error":
            raise HarmonyError(
                f"server error: {response.get('message', 'unknown')}")
        return response

    def _on_message(self, message: dict[str, Any]) -> None:
        """The transport receiver — the paper's I/O event handler."""
        msg_type = message.get("type")
        if msg_type == "variable_update":
            updates = message.get("updates", {})
            self.variables.apply_updates(updates)
            with self._lock:
                self._updates_seen += 1
                self._last_update = dict(updates)
                self._update_ready.set()
            return
        # Everything else answers the single outstanding request.
        self._response = message
        self._response_ready.set()


# --------------------------------------------------------------------------
# Paper-style C API on a process-wide default client
# --------------------------------------------------------------------------

_default_client: HarmonyClient | None = None


def set_default_client(client: HarmonyClient | None) -> None:
    """Install the client the ``harmony_*`` module functions operate on."""
    global _default_client
    _default_client = client


def _default() -> HarmonyClient:
    if _default_client is None:
        raise ProtocolError(
            "no default client installed; call set_default_client() first")
    return _default_client


def harmony_startup(app_name: str, use_interrupts: bool = False) -> str:
    """Figure 5: ``harmony_startup(<unique id>, <use interrupts>)``."""
    return _default().startup(app_name, use_interrupts)


def harmony_bundle_setup(bundle_definition: str) -> dict[str, Any]:
    """Figure 5: ``harmony_bundle_setup("<bundle definition>")``."""
    return _default().bundle_setup(bundle_definition)


def harmony_add_variable(name: str, default: Any,
                         var_type: VariableType = VariableType.FLOAT,
                         ) -> HarmonyVariable:
    """Figure 5: ``harmony_add_variable(name, default, type)``."""
    return _default().add_variable(name, default, var_type)


def harmony_wait_for_update(timeout: float | None = None) -> dict[str, Any]:
    """Figure 5: ``harmony_wait_for_update()``."""
    return _default().wait_for_update(timeout)


def harmony_end() -> None:
    """Figure 5: ``harmony_end()``."""
    _default().end()
