"""The Harmony client runtime library (the paper's Figure 5 API).

Applications link this library, connect to the Harmony server over a
transport, and then use the five calls from the paper::

    client = HarmonyClient(transport)
    client.startup("DBclient")                     # harmony_startup
    client.bundle_setup(RSL_TEXT)                  # harmony_bundle_setup
    where = client.add_variable("where.option",    # harmony_add_variable
                                "QS", VariableType.STRING)
    ...
    client.wait_for_update()                       # harmony_wait_for_update
    if where.changed and where.consume() == "DS":
        reconfigure_to_data_shipping()
    ...
    client.end()                                   # harmony_end

Updates pushed by the server are applied to the declared
:class:`~repro.api.variables.HarmonyVariable` objects by the transport
receiver (the paper's "I/O event handler"); the application polls them at
its natural phase boundaries.  ``wait_for_update`` blocks (wall-clock) for
TCP transports; single-threaded simulated applications use the non-blocking
:meth:`HarmonyClient.poll_update` instead.

Module-level aliases with the paper's exact C names (``harmony_startup``
etc.) operate on a process-wide default client for API fidelity.
"""

from __future__ import annotations

import contextlib
import threading
import time
from typing import TYPE_CHECKING, Any, Callable

from repro.api.protocol import (
    CONTROLLER_BUSY,
    CONTROLLER_MOVED,
    CONTROLLER_RECOVERING,
    HEARTBEAT,
    HEARTBEAT_ACK,
    LEASE_EXPIRED,
    SHARD_LOOKUP,
    SHARD_MAP,
    SHARD_MOVED,
    STATUS,
    make_message,
    require_field,
)
from repro.api.retry import RetryPolicy
from repro.api.transport import TcpTransport, Transport
from repro.api.variables import HarmonyVariable, VariableTable, VariableType
from repro.obs.trace import NULL_TRACER
from repro.errors import (
    ControllerBusyError,
    ControllerMovedError,
    ControllerRecoveringError,
    HarmonyError,
    LeaseExpiredError,
    ProtocolError,
    RequestTimeoutError,
    RetryExhaustedError,
    ShardMovedError,
    TransportError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.metrics.interface import MetricInterface

__all__ = ["HarmonyClient", "harmony_startup", "harmony_bundle_setup",
           "harmony_add_variable", "harmony_wait_for_update", "harmony_end",
           "set_default_client"]


class HarmonyClient:
    """One application's connection to the Harmony server.

    ``retry_policy`` governs every request's timeout, retry count, and
    backoff (default: one 30 s attempt, the original behaviour).
    ``transport_factory`` supplies a replacement transport after a
    connection loss; when omitted, a dialed :class:`TcpTransport` falls
    back to :meth:`TcpTransport.redial`.  With either available, failed
    requests transparently reconnect, replay the session (registration
    with the old key, every bundle, every declared variable), and retry —
    see :meth:`rejoin` for the explicit form.

    ``metrics`` optionally mirrors the liveness counters (``retries``,
    ``reconnects``, ``heartbeats_acked``) into a local
    :class:`~repro.metrics.interface.MetricInterface` as cumulative
    ``client.*`` series, timestamped on the wall clock, so chaos tests
    read client-side retry behaviour through the same telemetry path as
    everything else.

    ``tracer`` (default: the no-op ``NULL_TRACER``) roots a
    ``client.request`` span around each RPC and stamps its
    :class:`~repro.obs.trace.TraceContext` onto the wire message as the
    optional ``trace_ctx`` field, so the server, scheduler, and sweep
    workers continue the same trace.  ``trace_sample_rate`` keeps the
    cost bounded: a deterministic 1-in-N stride (rate 1.0 traces every
    request, 0.1 every 10th, 0 none); unsampled requests allocate no
    span at all.

    ``failover`` is the static failover list: where to look for the
    controller when the current connection is dead or answers with a
    ``controller_moved`` redirect.  Each entry is either a ``host:port``
    string or a zero-argument transport factory.  A redirect's explicit
    ``leader`` hint always wins over list rotation; a dead or still-
    standby target advances the rotation.  :attr:`term` tracks the
    highest controller term seen on any reply, so a client that has
    talked to the new primary can never be fooled by a deposed one.
    """

    def __init__(self, transport: Transport,
                 retry_policy: RetryPolicy | None = None,
                 transport_factory: Callable[[], Transport] | None = None,
                 metrics: "MetricInterface | None" = None,
                 tracer=None,
                 trace_sample_rate: float = 1.0,
                 failover: list[Any] | None = None):
        self.transport = transport
        self.retry_policy = retry_policy or RetryPolicy()
        self.transport_factory = transport_factory
        self.failover = list(failover or [])
        #: Highest controller term observed on any reply (0 = none yet).
        self.term = 0
        self._moved_leader: str | None = None
        self._force_reconnect = False
        self._target_index = 0
        self.metrics = metrics
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if not 0.0 <= trace_sample_rate <= 1.0:
            raise ValueError(
                f"trace_sample_rate must be in [0, 1], "
                f"got {trace_sample_rate}")
        #: 1-in-N deterministic sampling stride (0 disables sampling).
        self._trace_stride = (0 if trace_sample_rate <= 0.0
                              else max(1, round(1.0 / trace_sample_rate)))
        self._trace_seq = 0
        self.variables = VariableTable()
        self.app_key: str | None = None
        self.instance_id: int | None = None
        self._app_name: str | None = None
        self._use_interrupts = False
        self._bundle_rsls: list[str] = []
        self._response: dict[str, Any] | None = None
        self._response_ready = threading.Event()
        self._update_ready = threading.Event()
        self._updates_seen = 0
        self._last_update: dict[str, Any] = {}
        self._lock = threading.Lock()
        self._ended = False
        self._lease_lost = False
        self._lease_expires_at: float | None = None
        self._retries = 0
        self._reconnects = 0
        self._heartbeats_sent = 0
        self._heartbeats_acked = 0
        self._heartbeat_stop: threading.Event | None = None
        self._heartbeat_thread: threading.Thread | None = None
        transport.set_receiver(self._on_message)

    # -- the Figure 5 calls ---------------------------------------------------

    def startup(self, app_name: str, use_interrupts: bool = False) -> str:
        """Register with the Harmony server; returns the ``app.instance`` key.

        ``use_interrupts`` mirrors the paper's flag: when True the
        application asks to be notified eagerly rather than at poll points
        (our transports always deliver eagerly; the flag is recorded for the
        server's information).
        """
        if self.app_key is not None:
            raise ProtocolError("startup called twice")
        self._app_name = app_name
        self._use_interrupts = use_interrupts
        reply = self._request(make_message(
            "register", app_name=app_name, use_interrupts=use_interrupts))
        self.app_key = str(require_field(reply, "key"))
        self.instance_id = int(require_field(reply, "instance_id"))
        return self.app_key

    def bundle_setup(self, rsl_text: str) -> dict[str, Any]:
        """Export a bundle; returns the initially chosen configuration."""
        self._require_started()
        reply = self._request(make_message("bundle_setup", rsl=rsl_text))
        if rsl_text not in self._bundle_rsls:
            self._bundle_rsls.append(rsl_text)
        return {
            "bundle_name": require_field(reply, "bundle_name"),
            "option": require_field(reply, "option"),
            "variables": reply.get("variables", {}),
            "placements": reply.get("placements", {}),
        }

    def add_variable(self, name: str, default: Any,
                     var_type: VariableType = VariableType.FLOAT,
                     ) -> HarmonyVariable:
        """Declare a variable shared with Harmony; returns the live object."""
        self._require_started()
        variable = self.variables.declare(name, default, var_type)
        reply = self._request(make_message(
            "add_variable", name=name, default=variable.value,
            var_type=var_type.value))
        # The server may answer with a current value differing from the
        # default (e.g. the option already chosen during bundle_setup).
        if "value" in reply and reply["value"] is not None:
            variable.apply_update(reply["value"])
            variable.consume()  # initial sync is not a "change"
        return variable

    def wait_for_update(self, timeout: float | None = None,
                        ) -> dict[str, Any]:
        """Block until the server pushes a variable update batch.

        Returns the raw update mapping.  Raises :class:`TransportError` on
        timeout.  Only meaningful on threaded (TCP) transports; simulated
        applications poll :meth:`poll_update`.
        """
        self._require_started()
        self.transport.send(make_message("wait_for_update"))
        if not self._update_ready.wait(timeout):
            raise RequestTimeoutError("wait_for_update", timeout or 0.0)
        with self._lock:
            self._update_ready.clear()
            return dict(self._last_update)

    def end(self) -> None:
        """Tell Harmony the application is terminating."""
        if self._ended:
            return
        self._require_started()
        self.stop_heartbeats()
        self._request(make_message("end"))
        self._ended = True
        self.transport.close()

    # -- extras ------------------------------------------------------------------

    def report_metric(self, name: str, value: float) -> None:
        """Feed an application metric into the Harmony metric interface."""
        self._require_started()
        message = make_message("report_metric", name=name,
                               value=float(value))
        if self.tracer.enabled and self._trace_due():
            # Fire-and-forget, but still the root of the interesting
            # trace: metric reports are what trigger scheduler batches.
            with self.tracer.span("client.request", rpc="report_metric",
                                  metric=name) as span:
                message["trace_ctx"] = self.tracer.wire_context(span)
                self.transport.send(message)
            return
        self.transport.send(message)

    def query_nodes(self) -> dict[str, Any]:
        """Ask Harmony for current resource availability.

        Returns ``{"nodes": [...], "rsl": "harmonyNode ..."}`` — the
        structured per-node records plus equivalent ``harmonyNode`` RSL.
        """
        self._require_started()
        reply = self._request(make_message("query_nodes"))
        return {"nodes": require_field(reply, "nodes"),
                "rsl": reply.get("rsl", "")}

    def query_status(self, prefix: str | None = None,
                     max_traces: int = 20) -> dict[str, Any]:
        """Ask the server for its telemetry (the ``STATUS`` message).

        Works without :meth:`startup` — a pure monitoring client may
        connect just to poll.  Returns ``{"metrics", "decision_traces",
        "optimizer", "server", "histograms"}``: the metric snapshot
        (optionally filtered by dotted ``prefix``), the most recent
        decision traces (up to ``max_traces``, oldest first), the
        optimizer work counters, server-side session counts, and the
        runtime health histogram snapshots (feed them to
        :func:`repro.obs.health.evaluate_health` or
        :func:`repro.metrics.quantile_from_snapshot`).
        """
        fields: dict[str, Any] = {"max_traces": int(max_traces)}
        if prefix is not None:
            fields["prefix"] = prefix
        reply = self._request(make_message(STATUS, **fields))
        return {"metrics": reply.get("metrics", {}),
                "decision_traces": reply.get("decision_traces", []),
                "optimizer": reply.get("optimizer", {}),
                "server": reply.get("server", {}),
                "histograms": reply.get("histograms", {}),
                "replication": reply.get("replication", {})}

    def locate_shard(self, app_name: str | None = None,
                     resume_key: str | None = None) -> dict[str, Any]:
        """Ask a federation arbiter which shard owns an application.

        Works without :meth:`startup` — a connecting client asks the
        arbiter *before* it knows where to register.  Returns the
        ``shard_map`` payload: ``{"shards": [...], "leader": "host:port"}``
        where ``leader`` is the shard that owns ``resume_key`` (exact
        assignment) or ``app_name`` (consistent hash).  Raises
        :class:`~repro.errors.HarmonyError` when the connected server is
        not an arbiter.
        """
        fields: dict[str, Any] = {}
        if app_name is not None:
            fields["app_name"] = app_name
        if resume_key is not None:
            fields["resume_key"] = resume_key
        reply = self._request(make_message(SHARD_LOOKUP, **fields))
        if reply.get("type") != SHARD_MAP:
            raise ProtocolError(
                f"expected shard_map, got {reply.get('type')!r}")
        return {"shards": reply.get("shards", []),
                "leader": reply.get("leader")}

    def poll_update(self) -> dict[str, Any] | None:
        """Non-blocking check for a new update batch (simulation-friendly).

        Returns the batch once per arrival, then ``None`` until the next.
        """
        with self._lock:
            if not self._update_ready.is_set():
                return None
            self._update_ready.clear()
            return dict(self._last_update)

    @property
    def updates_received(self) -> int:
        return self._updates_seen

    # -- session liveness ---------------------------------------------------

    def heartbeat(self) -> None:
        """Fire-and-forget liveness ping; the server renews the lease.

        The ``heartbeat_ack`` answer is handled out-of-band (it never
        competes with an in-flight request's response).  Raises
        :class:`~repro.errors.LeaseExpiredError` once the server has
        answered a beat with ``lease_expired``.
        """
        self._require_started()
        if self._lease_lost:
            raise LeaseExpiredError(
                f"session {self.app_key} was evicted; call rejoin()")
        self._heartbeats_sent += 1
        self.transport.send(make_message(HEARTBEAT, key=self.app_key))

    def start_heartbeats(self, interval_seconds: float | None = None,
                         ) -> None:
        """Beat on a background thread (TCP sessions with server leases).

        ``interval_seconds`` defaults to the retry policy's
        ``heartbeat_interval_seconds``.  The thread stops silently when
        the transport dies or the lease is lost — the next RPC surfaces
        the failure (and, with a transport factory, recovers it).
        """
        self._require_started()
        if self._heartbeat_thread is not None \
                and self._heartbeat_thread.is_alive():
            return
        interval = interval_seconds \
            or self.retry_policy.heartbeat_interval_seconds
        stop = threading.Event()
        self._heartbeat_stop = stop

        def beat() -> None:
            while not stop.wait(interval):
                try:
                    self.heartbeat()
                except (TransportError, LeaseExpiredError, ProtocolError):
                    return

        self._heartbeat_thread = threading.Thread(
            target=beat, name="harmony-heartbeat", daemon=True)
        self._heartbeat_thread.start()

    def stop_heartbeats(self) -> None:
        if self._heartbeat_stop is not None:
            self._heartbeat_stop.set()
        self._heartbeat_thread = None
        self._heartbeat_stop = None

    @property
    def lease_lost(self) -> bool:
        """True once the server reported this session as evicted."""
        return self._lease_lost

    @property
    def heartbeats_acked(self) -> int:
        return self._heartbeats_acked

    @property
    def retries(self) -> int:
        """Request attempts beyond the first, across the session."""
        return self._retries

    @property
    def reconnects(self) -> int:
        return self._reconnects

    def rejoin(self) -> str:
        """Reconnect if needed and replay the session idempotently.

        Re-registers under the previous ``app.instance`` key (the server
        dedupes if the instance is still alive, or creates a fresh one if
        the lease expired), replays every bundle's RSL, and re-declares
        every variable.  Variables whose server-side value changed while
        disconnected come back with ``changed`` set, so no update is lost
        across the outage.  Returns the (possibly new) session key.
        """
        if self._app_name is None:
            raise ProtocolError("call startup() before rejoin()")
        if self._ended:
            raise ProtocolError("client already ended")
        if self.transport.closed:
            self._reconnect_transport()
        self._replay_session()
        return self.app_key  # type: ignore[return-value]

    # -- plumbing ---------------------------------------------------------------

    def _count(self, name: str) -> None:
        """Mirror a liveness counter into the optional metric interface."""
        if self.metrics is not None:
            self.metrics.increment(name, time.monotonic())

    def _require_started(self) -> None:
        if self.app_key is None:
            raise ProtocolError("call startup() first")
        if self._ended:
            raise ProtocolError("client already ended")

    def _trace_due(self) -> bool:
        """Advance the deterministic sampling stride; True to trace."""
        if self._trace_stride == 0:
            return False
        seq = self._trace_seq
        self._trace_seq = seq + 1
        return seq % self._trace_stride == 0

    def _request(self, message: dict[str, Any]) -> dict[str, Any]:
        """Send a request and wait for its response, per the retry policy.

        When tracing is enabled and this request is sampled, the whole
        retry loop runs under a ``client.request`` span whose context is
        stamped onto the message as ``trace_ctx`` — unsampled requests
        allocate no span and send the message untouched.
        """
        if self.tracer.enabled and self._trace_due():
            with self.tracer.span("client.request",
                                  rpc=str(message.get("type"))) as span:
                message = dict(message)
                message["trace_ctx"] = self.tracer.wire_context(span)
                return self._request_with_retries(message)
        return self._request_with_retries(message)

    def _request_with_retries(self,
                              message: dict[str, Any]) -> dict[str, Any]:
        """Send a request and wait for its response, per the retry policy.

        Transport failures and per-attempt timeouts are retried with
        exponential backoff; between attempts a dead connection is redialed
        and the session replayed (when a reconnect path exists).  Server
        ``error`` answers are not retried — they are application-level.
        """
        policy = self.retry_policy
        last_error: Exception | None = None
        for attempt in range(1, policy.max_attempts + 1):
            if attempt > 1:
                self._retries += 1
                self._count("client.retries")
                delay = policy.jittered_delay(attempt - 1)
                if delay > 0:
                    time.sleep(delay)
                self._recover_connection()
                if self._force_reconnect:
                    # Recovery did not produce a bound session (the
                    # replay was redirected or refused mid-flight).
                    # Sending the real request now would reach an
                    # unregistered session and draw a misleading,
                    # non-retryable refusal — spend the attempt on
                    # another recovery round instead.
                    continue
            try:
                return self._request_once(message)
            except (RequestTimeoutError, TransportError,
                    ControllerBusyError, ControllerMovedError) as exc:
                # ControllerBusyError is the server's admission
                # backpressure — transient by contract, so it rides the
                # same backoff loop as connection failures.
                # ControllerMovedError is the failover redirect: also
                # retryable, but the next attempt must reconnect (to
                # the redirect's leader hint) even though the current
                # transport is still perfectly healthy.
                last_error = exc
                if isinstance(exc, ControllerMovedError):
                    self._force_reconnect = True
        raise RetryExhaustedError(str(message.get("type")),
                                  policy.max_attempts) from last_error

    def _request_once(self, message: dict[str, Any]) -> dict[str, Any]:
        """One send/wait round trip (no retries)."""
        self._response_ready.clear()
        self._response = None
        self.transport.send(message)
        timeout = self.retry_policy.request_timeout_seconds
        deadline = time.monotonic() + timeout
        while not self._response_ready.is_set():
            # Fail fast when the connection dies under the request (the
            # peer crashed): waiting out the full request timeout for a
            # reply that can never arrive just slows failover down.
            if self.transport.closed:
                raise TransportError(
                    f"connection closed awaiting "
                    f"{message.get('type')!r} reply")
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise RequestTimeoutError(str(message.get("type")),
                                          timeout)
            self._response_ready.wait(timeout=min(0.05, remaining))
        response = self._response
        assert response is not None
        term = response.get("term")
        if isinstance(term, (int, float)) and int(term) > self.term:
            self.term = int(term)
        if response.get("type") == CONTROLLER_MOVED:
            leader = response.get("leader")
            self._moved_leader = str(leader) if leader else None
            raise ControllerMovedError(
                f"controller moved: "
                f"{response.get('message', 'not the primary')}",
                leader=self._moved_leader,
                term=int(response.get("term", 0) or 0))
        if response.get("type") == SHARD_MOVED:
            # The federation redirect: the session was handed to a
            # sibling shard.  A ControllerMovedError subclass, so the
            # retry loop reconnects to the hinted shard and replays the
            # session there (resume_key rejoin) with no extra plumbing.
            leader = response.get("leader")
            self._moved_leader = str(leader) if leader else None
            self._count("client.shard_redirects")
            raise ShardMovedError(
                f"shard moved: "
                f"{response.get('message', 'session handed off')}",
                leader=self._moved_leader,
                term=int(response.get("term", 0) or 0))
        if response.get("type") == "error":
            if response.get("code") == CONTROLLER_RECOVERING:
                # Typed and retryable-by-the-caller: the server is
                # replaying its durability log in read-only mode.
                raise ControllerRecoveringError(
                    f"server error: {response.get('message', 'recovering')}")
            if response.get("code") == CONTROLLER_BUSY:
                raise ControllerBusyError(
                    f"server error: {response.get('message', 'busy')}")
            raise HarmonyError(
                f"server error: {response.get('message', 'unknown')}")
        if response.get("type") == LEASE_EXPIRED:
            raise LeaseExpiredError(
                f"session {self.app_key} was evicted: "
                f"{response.get('message', 'lease expired')}")
        return response

    def _recover_connection(self) -> None:
        """Best-effort reconnect + replay between retry attempts."""
        if not self.transport.closed and not self._force_reconnect:
            return
        self._force_reconnect = False
        try:
            self._reconnect_transport()
            if self._app_name is not None:
                self._replay_session()
        except ControllerMovedError:
            # We reconnected to a standby: its redirect recorded a
            # fresher leader hint; force the next attempt to hop again.
            self._force_reconnect = True
        except TransportError:
            # Dead target (dial refused, or it died mid-replay): rotate
            # to the next failover candidate for the following attempt —
            # and redial even if this dial left an open socket, because
            # its session was never (fully) replayed.
            self._advance_target()
            self._force_reconnect = True
        except HarmonyError:
            # Replay stopped early (busy, recovering, evicted): the new
            # session is not fully bound, so a request sent on it now
            # would be refused with a misleading "register first".
            # Redial and replay from scratch on the next attempt.
            self._force_reconnect = True

    def _reconnect_transport(self) -> None:
        """Swap in a fresh transport aimed at the best-known controller.

        Target choice, in order: an explicit ``controller_moved``
        ``leader`` hint (consumed once), then the rotation over the
        base reconnect path (``transport_factory`` or TCP redial) and
        the static :attr:`failover` list.
        """
        factory = self._next_target_factory()
        if factory is None:
            raise TransportError(
                "transport closed and no reconnect path configured")
        old = self.transport
        if not old.closed:
            with contextlib.suppress(Exception):
                old.close()
        transport = factory()
        transport.set_receiver(self._on_message)
        self.transport = transport
        self._reconnects += 1
        self._count("client.reconnects")

    def _next_target_factory(self) -> Callable[[], Transport] | None:
        leader = self._moved_leader
        if leader:
            # A redirect hint is consumed once: if the hinted leader
            # turns out dead too, rotation takes over.
            self._moved_leader = None
            self._count("client.redirects_followed")
            return self._as_factory(leader)
        targets = self._reconnect_targets()
        if not targets:
            return None
        return targets[self._target_index % len(targets)]

    def _reconnect_targets(self) -> list[Callable[[], Transport]]:
        base = self.transport_factory
        if base is None and getattr(self.transport, "can_redial", False):
            base = self.transport.redial
        targets: list[Callable[[], Transport]] = []
        if base is not None:
            targets.append(base)
        targets.extend(self._as_factory(entry) for entry in self.failover)
        return targets

    def _advance_target(self) -> None:
        self._target_index += 1
        self._count("client.failover_rotations")

    @staticmethod
    def _as_factory(entry: Any) -> Callable[[], Transport]:
        """A failover entry: a transport factory or a host:port string."""
        if callable(entry):
            return entry
        host, _, port = str(entry).rpartition(":")
        if not host or not port.isdigit():
            raise ProtocolError(
                f"failover entry {entry!r} is not host:port or callable")
        return lambda: TcpTransport.connect(host, int(port))

    def _replay_session(self) -> None:
        """Re-register (resuming the old key) and replay bundles/variables.

        Everything here is idempotent server-side: registration dedupes on
        the resume key, ``bundle_setup`` returns the existing state for an
        already-exported bundle, and ``add_variable`` answers with the
        current value — which is applied as a *change* only if it differs
        from what this client last saw.
        """
        self._lease_lost = False
        reply = self._request_once(make_message(
            "register", app_name=self._app_name,
            use_interrupts=self._use_interrupts,
            resume_key=self.app_key))
        self.app_key = str(require_field(reply, "key"))
        self.instance_id = int(require_field(reply, "instance_id"))
        for rsl_text in self._bundle_rsls:
            self._request_once(make_message("bundle_setup", rsl=rsl_text))
        for name in self.variables.names():
            variable = self.variables.get(name)
            reply = self._request_once(make_message(
                "add_variable", name=name, default=variable.value,
                var_type=variable.var_type.value))
            value = reply.get("value")
            if value is not None \
                    and variable.var_type.coerce(value) != variable.value:
                variable.apply_update(value)

    def _on_message(self, message: dict[str, Any]) -> None:
        """The transport receiver — the paper's I/O event handler."""
        msg_type = message.get("type")
        if msg_type == "variable_update":
            updates = message.get("updates", {})
            self.variables.apply_updates(updates)
            with self._lock:
                self._updates_seen += 1
                self._last_update = dict(updates)
                self._update_ready.set()
            return
        if msg_type == HEARTBEAT_ACK:
            with self._lock:
                self._heartbeats_acked += 1
                self._lease_expires_at = message.get("lease_expires_at")
            self._count("client.heartbeats_acked")
            return
        if msg_type == LEASE_EXPIRED:
            # Answers the outstanding request if there is one; otherwise it
            # is the server reacting to a stray heartbeat — flag and drop.
            self._lease_lost = True
            self._response = message
            self._response_ready.set()
            return
        # Everything else answers the single outstanding request.
        self._response = message
        self._response_ready.set()


# --------------------------------------------------------------------------
# Paper-style C API on a process-wide default client
# --------------------------------------------------------------------------

_default_client: HarmonyClient | None = None


def set_default_client(client: HarmonyClient | None) -> None:
    """Install the client the ``harmony_*`` module functions operate on."""
    global _default_client
    _default_client = client


def _default() -> HarmonyClient:
    if _default_client is None:
        raise ProtocolError(
            "no default client installed; call set_default_client() first")
    return _default_client


def harmony_startup(app_name: str, use_interrupts: bool = False) -> str:
    """Figure 5: ``harmony_startup(<unique id>, <use interrupts>)``."""
    return _default().startup(app_name, use_interrupts)


def harmony_bundle_setup(bundle_definition: str) -> dict[str, Any]:
    """Figure 5: ``harmony_bundle_setup("<bundle definition>")``."""
    return _default().bundle_setup(bundle_definition)


def harmony_add_variable(name: str, default: Any,
                         var_type: VariableType = VariableType.FLOAT,
                         ) -> HarmonyVariable:
    """Figure 5: ``harmony_add_variable(name, default, type)``."""
    return _default().add_variable(name, default, var_type)


def harmony_wait_for_update(timeout: float | None = None) -> dict[str, Any]:
    """Figure 5: ``harmony_wait_for_update()``."""
    return _default().wait_for_update(timeout)


def harmony_end() -> None:
    """Figure 5: ``harmony_end()``."""
    _default().end()
