"""The Harmony server process (paper Section 5, Figure 6).

"The Harmony process is a server that listens on a well-known port and
waits for connections from application processes.  Inside Harmony is the
resource management and adaptation part of the system."

:class:`HarmonyServer` bridges transports to an
:class:`~repro.controller.controller.AdaptationController`: each connection
becomes a :class:`HarmonySession`; controller reconfiguration events are
staged into a :class:`~repro.api.variables.PendingVariableBuffer` and pushed
to the owning session by ``flush_pending_vars()`` (automatically after each
decision wave when ``auto_flush`` is on, the default).

Concurrency model (three locks, strictly ordered)
-------------------------------------------------

The server runs handler code on whatever thread delivered the message (a
TCP reader thread, an asyncio dispatch-pool worker for the
:class:`~repro.api.aio.AsyncHarmonyServer` front end, or the caller's
thread for in-process transports).  Instead of one global lock, state is
partitioned:

* ``controller_lock`` — serializes controller mutations (``register``,
  ``bundle_setup``, ``end``, lease evictions, recovery transitions).
  This is the expensive lock: optimization sweeps run under it.
* ``_flush_lock`` — serializes the pending-variable buffer (staging and
  flushing), so a flush never races a concurrent stage.
* ``sessions_lock`` — guards the session registry, leases, and push
  generations.  Heartbeats, status queries, and metric reports only ever
  take this (or no lock at all), so they never contend with an
  optimization sweep in flight.

Acquisition order is ``controller_lock`` → ``_flush_lock`` →
``sessions_lock``; never acquire an earlier lock while holding a later
one.  Replies are always sent with ``sessions_lock`` released.

Admission backpressure: ``max_pending_admissions`` bounds how many
``register``/``bundle_setup`` requests may queue on ``controller_lock``;
excess requests are refused immediately with
``error.code=controller_busy`` (retryable) instead of stacking threads.

Variable naming convention for pushed resource information:

* ``<bundle>.option``            — the chosen option name,
* ``<bundle>.<variable>``        — each RSL ``variable`` value,
* ``<bundle>.<node>.hostname``   — where each local node name landed.
"""

from __future__ import annotations

import contextlib
import socket
import threading
import time
from typing import Any, Callable, Iterator

from repro.api.protocol import (
    CLIENT_TYPES,
    CONTROLLER_BUSY,
    CONTROLLER_MOVED,
    CONTROLLER_RECOVERING,
    HEARTBEAT,
    HEARTBEAT_ACK,
    LEASE_EXPIRED,
    MUTATING_TYPES,
    REPL_ACK,
    REPL_HELLO,
    SHARD_LOOKUP,
    SHARD_MAP,
    SHARD_MOVED,
    STATUS,
    STATUS_REPORT,
    make_message,
    require_field,
)
from repro.api.transport import TcpTransport, Transport
from repro.api.variables import PendingVariableBuffer
from repro.controller.controller import (
    AdaptationController,
    ReconfigurationEvent,
)
from repro.controller.registry import AppInstance
from repro.errors import (
    ControllerBusyError,
    ControllerError,
    HarmonyError,
    ProtocolError,
    ReplicationError,
    TransportError,
)
from repro.obs.flightrec import (EVENT_BACKPRESSURE, EVENT_DEMOTION,
                                 EVENT_LEASE_EXPIRED, EVENT_PUSH,
                                 EVENT_RPC_IN, EVENT_RPC_OUT,
                                 EVENT_SERVER_ERROR)
from repro.obs.instrument import InstrumentedRLock
from repro.obs.trace import TraceContext

__all__ = ["HarmonyServer", "HarmonySession", "DEFAULT_PORT"]

#: The prototype's "well-known port" (any free port works; tests use 0).
DEFAULT_PORT = 52766

#: Requests that mutate controller state and therefore take
#: ``controller_lock``.  Everything else runs without it.
#: ``repl_hello`` is here for a different reason: a standby's catch-up
#: snapshot must not race a concurrent append, and appends run under
#: ``controller_lock``.
_CONTROLLER_LOCKED_TYPES = frozenset({"register", "bundle_setup", "end",
                                      REPL_HELLO})

#: The admission pipeline: the subset of controller-locked requests the
#: bounded pending queue applies to.  ``end`` is exempt — releasing
#: capacity must never be refused for lack of capacity.
_ADMISSION_TYPES = frozenset({"register", "bundle_setup"})


class HarmonySession:
    """Server-side state for one connected application."""

    def __init__(self, server: "HarmonyServer", transport: Transport):
        self.server = server
        self.transport = transport
        self.instance: AppInstance | None = None
        self.use_interrupts = False
        transport.set_receiver(self._on_message)

    @property
    def client_id(self) -> str:
        if self.instance is None:
            raise ProtocolError("session not registered")
        return self.instance.key

    @property
    def evicted(self) -> bool:
        """Whether this session's instance was removed behind its back."""
        return self.instance is not None and self.instance.ended

    def push_updates(self, updates: dict[str, Any],
                     generation: int = 0) -> None:
        if self.transport.closed:
            # The client is gone but its lease may still be running: keep
            # the batch staged so a rejoin within the lease receives it.
            self.server.mark_disconnected(self)
            self.server.stage_updates(self.client_id, updates, generation)
            return
        try:
            self.transport.send(make_message("variable_update",
                                             updates=updates))
        except TransportError:
            self.server.mark_disconnected(self)
            self.server.stage_updates(self.client_id, updates, generation)
        except ControllerBusyError:
            # Async-transport backpressure: the connection's bounded write
            # queue is full (a slow reader).  The session stays bound —
            # the batch is re-staged and delivered by a later flush, once
            # the client drains its socket.
            self.server.stage_updates(self.client_id, updates, generation)

    # -- message handling ---------------------------------------------------

    def _on_message(self, message: dict[str, Any]) -> None:
        msg_type = str(message.get("type"))
        server = self.server
        if server.failed:
            # Crash-only semantics: a fail-stopped server behaves like a
            # dead process — it never answers, it just drops the line.
            with contextlib.suppress(Exception):
                self.transport.close()
            return
        server.count_rpc(msg_type)
        recorder = server.recorder
        if recorder is not None:
            recorder.record(EVENT_RPC_IN, rpc=msg_type)
        tracer = server.controller.tracer
        ctx = None
        if tracer.enabled:
            # Continue a client-stamped trace.  Absent, malformed, or
            # unsampled trace_ctx parses to None — old clients and
            # garbage alike degrade to "no trace", never to an error.
            ctx = TraceContext.from_wire(message.get("trace_ctx"))
        try:
            if ctx is not None:
                with tracer.span_from_context("server.dispatch", ctx,
                                              rpc=msg_type):
                    self._locked_dispatch(msg_type, message)
            else:
                self._locked_dispatch(msg_type, message)
        except ControllerBusyError as exc:
            if recorder is not None:
                recorder.record(EVENT_BACKPRESSURE, rpc=msg_type,
                                message=str(exc))
            self._reply(make_message("error", code=CONTROLLER_BUSY,
                                     message=str(exc)))
        except HarmonyError as exc:
            self._reply(make_message("error", message=str(exc)))
        except Exception as exc:
            # Unhandled server error: capture the event timeline before
            # the exception unwinds whatever thread delivered us.
            server.note_server_error(exc, rpc=msg_type)
            if server.fail_stop_on_error:
                # Crash-only discipline (chaos suites): an unhandled
                # error kills the whole server, not just this
                # connection — otherwise an asyncio front end would
                # keep the listener alive as a half-dead zombie.
                server.fail_stop()
            raise

    def _locked_dispatch(self, msg_type: str,
                         message: dict[str, Any]) -> None:
        if msg_type in _CONTROLLER_LOCKED_TYPES:
            if msg_type in _ADMISSION_TYPES:
                with self.server.admission_slot():
                    with self.server.controller_lock:
                        self._dispatch(message)
            else:
                with self.server.controller_lock:
                    self._dispatch(message)
        else:
            self._dispatch(message)

    def _dispatch(self, message: dict[str, Any]) -> None:
        msg_type = message.get("type")
        if self.server.standby and msg_type in MUTATING_TYPES:
            # A standby serves reads (status, heartbeats) but refuses
            # every mutation with a redirect carrying its best guess at
            # the current primary — the fencing record's address.
            self._reply(self.server.moved_reply())
            return
        if self.server.recovering and msg_type in MUTATING_TYPES:
            # Degraded read-only mode while crash recovery replays the
            # durability log: queries and status still flow, anything
            # state-changing is refused with a typed, retryable error.
            self._reply(make_message(
                "error", code=CONTROLLER_RECOVERING,
                message="controller is recovering; mutations are "
                        "refused until recovery completes"))
            return
        if msg_type != SHARD_LOOKUP:
            # Federation redirect, checked *before* the eviction gate: a
            # handed-off session's instance was evicted here (it lives on
            # the target shard now), and the answer must be "go there",
            # never "your lease expired".  A fresh connection registering
            # with a moved resume_key gets the same redirect.
            moved_key = (self.instance.key if self.instance is not None
                         else message.get("resume_key"))
            target = self.server.moved_target(moved_key)
            if target is not None:
                self._reply(self.server.shard_moved_reply(target))
                return
        if self.evicted and msg_type != "register":
            # Anything an evicted client says (a heartbeat racing the
            # eviction, a late RPC) gets the same answer: your lease is
            # gone, rejoin.  `register` falls through for exactly that.
            self._reply(make_message(
                LEASE_EXPIRED,
                message=f"session {self.client_id} lease expired"))
            return
        if msg_type == "register":
            self._handle_register(message)
        elif msg_type == "bundle_setup":
            self._handle_bundle_setup(message)
        elif msg_type == "add_variable":
            self._handle_add_variable(message)
        elif msg_type == "wait_for_update":
            pass  # updates are pushed eagerly; nothing to do server-side
        elif msg_type == "report_metric":
            self._handle_report_metric(message)
        elif msg_type == "query_nodes":
            self._handle_query_nodes()
        elif msg_type == STATUS:
            self._handle_status(message)
        elif msg_type == HEARTBEAT:
            self._handle_heartbeat()
        elif msg_type == "end":
            self._handle_end()
        elif msg_type == REPL_HELLO:
            self._handle_repl_hello(message)
        elif msg_type == REPL_ACK:
            self._handle_repl_ack(message)
        elif msg_type == SHARD_LOOKUP:
            self._handle_shard_lookup(message)
        else:
            raise ProtocolError(f"unknown message type {msg_type!r}")
        if self.instance is not None and not self.instance.ended:
            # Renew the lease only after the message *dispatched
            # successfully*: a stream of malformed or rejected requests
            # must not keep a session alive forever, and an evicted
            # instance's dead key must never be re-armed.
            self.server.touch(self.instance.key)

    def _handle_register(self, message: dict[str, Any]) -> None:
        app_name = str(require_field(message, "app_name"))
        if self.instance is not None and not self.instance.ended:
            # A duplicated or replayed register on a live session is
            # answered idempotently rather than poisoning the session.
            if self.instance.app_name == app_name:
                self._reply(make_message(
                    "registered", instance_id=self.instance.instance_id,
                    key=self.instance.key, resumed=True))
                return
            raise ProtocolError("already registered")
        resume_key = message.get("resume_key")
        self.use_interrupts = bool(message.get("use_interrupts", False))
        self.instance = self.server.controller.register_app(
            app_name, resume_key=resume_key)
        resumed = self.instance.key == resume_key
        if resumed:
            controller = self.server.controller
            controller.metrics.increment("server.session_resumes",
                                         controller.now)
        self.server.bind_session(self)
        self._reply(make_message("registered",
                                 instance_id=self.instance.instance_id,
                                 key=self.instance.key,
                                 resumed=resumed))
        if resumed:
            # Deliver anything staged while the client was away.
            self.server.flush_pending_vars()

    def _handle_heartbeat(self) -> None:
        instance = self._require_instance()
        server = self.server
        # Renew before answering: the ack carries the *new* deadline.
        server.touch(instance.key)
        with server.sessions_lock:
            server.heartbeats_received += 1
            deadline = server._leases.get(instance.key)
        controller = server.controller
        controller.metrics.increment("server.heartbeats", controller.now)
        self._reply(make_message(HEARTBEAT_ACK, lease_expires_at=deadline))

    def _handle_status(self, message: dict[str, Any]) -> None:
        """Answer a telemetry query; registration is not required.

        A monitoring client may connect, send ``status``, and disconnect
        without ever registering an application.
        """
        prefix = message.get("prefix")
        max_traces = int(message.get("max_traces", 20))
        payload = self.server.status_payload(
            prefix=str(prefix) if prefix else None, max_traces=max_traces)
        self._reply(make_message(STATUS_REPORT, **payload))

    def _handle_bundle_setup(self, message: dict[str, Any]) -> None:
        instance = self._require_instance()
        rsl = str(require_field(message, "rsl"))
        state = self.server.controller.setup_bundle(instance, rsl)
        chosen = state.chosen
        if chosen is None:
            raise ProtocolError(
                f"bundle {state.bundle.bundle_name!r} registered but no "
                f"feasible configuration exists")
        self._reply(make_message(
            "bundle_ok",
            bundle_name=state.bundle.bundle_name,
            option=chosen.option_name,
            variables=dict(chosen.variable_assignment),
            placements=dict(chosen.assignment.placements)))

    def _handle_add_variable(self, message: dict[str, Any]) -> None:
        instance = self._require_instance()
        name = str(require_field(message, "name"))
        # Answer with the live value when the name maps onto a chosen
        # configuration (e.g. "<bundle>.option"), else echo the default.
        value = self.server.current_variable_value(instance, name)
        if value is None:
            value = message.get("default")
        self._reply(make_message("variable_added", name=name, value=value))

    def _handle_report_metric(self, message: dict[str, Any]) -> None:
        instance = self._require_instance()
        name = str(require_field(message, "name"))
        value = float(require_field(message, "value"))
        controller = self.server.controller
        controller.metrics.report(f"app.{instance.key}.{name}",
                                  controller.now, value)
        scheduler = controller.scheduler
        if scheduler is not None:
            # Metric reports never re-optimize inline (that would put an
            # optimization sweep on every telemetry packet); with a
            # scheduler attached they feed the coalesced batch instead.
            scheduler.request(f"metric:{instance.key}.{name}",
                              trace_ctx=controller.tracer.current_context())

    def _handle_query_nodes(self) -> None:
        """Answer with current resource availability.

        The reply carries both structured records and the equivalent
        ``harmonyNode`` RSL text, so an application can feed the answer
        straight back into bundle authoring.  ``memory_available_mb``
        reflects live reservations — this is the controller's own view of
        availability, not the raw machine size.
        """
        self._require_instance()
        from repro.rsl import unparse_advertisement

        cluster = self.server.controller.cluster
        nodes = []
        rsl_lines = []
        for node in cluster.nodes():
            nodes.append({
                "hostname": node.hostname,
                "speed": node.speed,
                "os": node.os,
                "memory_total_mb": node.memory.total_mb,
                "memory_available_mb": node.memory.available_mb,
                "cpu_active_jobs": node.cpu.active_jobs,
            })
            rsl_lines.append(unparse_advertisement(node.advertisement()))
        self._reply(make_message("node_list", nodes=nodes,
                                 rsl="\n".join(rsl_lines)))

    def _handle_end(self) -> None:
        instance = self._require_instance()
        self.server.controller.end_app(instance)
        self._reply(make_message("ended"))
        self.server.detach(self)

    def _handle_repl_hello(self, message: dict[str, Any]) -> None:
        """A standby subscribing to the WAL stream (under controller_lock).

        Runs with ``controller_lock`` held (see
        ``_CONTROLLER_LOCKED_TYPES``): the catch-up snapshot/tail the
        primary ships here cannot race a concurrent append, so the
        standby never observes a torn view of the log.
        """
        replication = self.server.replication
        if replication is None:
            raise ProtocolError(
                "replication is not enabled on this server")
        replication.handle_hello(self.transport, message)

    def _handle_repl_ack(self, message: dict[str, Any]) -> None:
        if self.server.replication is not None:
            self.server.replication.handle_ack(message)

    def _handle_shard_lookup(self, message: dict[str, Any]) -> None:
        """Answer "which shard owns this app?" (arbiter only).

        Registration is not required — a connecting client asks the
        arbiter before it knows its shard.  Servers without an attached
        shard router (every non-arbiter) refuse with a protocol error.
        """
        router = self.server.shard_router
        if router is None:
            raise ProtocolError(
                "this server is not a federation arbiter")
        payload = router.lookup(
            app_name=message.get("app_name"),
            resume_key=message.get("resume_key"))
        self._reply(make_message(SHARD_MAP, **payload))

    def _require_instance(self) -> AppInstance:
        if self.instance is None:
            raise ProtocolError("register first")
        return self.instance

    def _reply(self, message: dict[str, Any]) -> None:
        term = self.server.controller.term
        if term > 0 and "term" not in message:
            # Once elected into a term, stamp it on every reply so
            # clients can spot (and report) a deposed, stale primary.
            message["term"] = term
        recorder = self.server.recorder
        if recorder is not None:
            recorder.record(EVENT_RPC_OUT, rpc=str(message.get("type")))
        try:
            self.transport.send(message)
        except TransportError:
            self.server.detach(self)
        except ControllerBusyError:
            # Backpressured write queue (async transport): drop the reply
            # rather than tear the session down — the client's request
            # times out and its retry policy takes over.  Error replies
            # bypass the bound, so a refusal is never itself refused.
            controller = self.server.controller
            controller.metrics.increment(
                "server.replies_dropped_backpressure", controller.now)
            if recorder is not None:
                recorder.record(EVENT_BACKPRESSURE,
                                rpc=str(message.get("type")),
                                message="reply dropped: write queue full")


class HarmonyServer:
    """Accepts application connections and wires them to the controller.

    ``lease_seconds`` (optional) arms session leases: every message from a
    registered client renews its lease; :meth:`check_leases` evicts
    applications whose lease lapsed — their placements are removed
    through the controller's transactional view and the survivors are
    re-optimized, so a crashed client degrades the system gracefully
    instead of stranding its allocation.  ``clock`` defaults to
    ``time.monotonic``; simulated deployments inject their own (or pass
    ``now=`` to :meth:`check_leases`) to stay deterministic.

    ``max_pending_admissions`` (optional) bounds the admission pipeline:
    at most that many ``register``/``bundle_setup`` requests may hold or
    wait on ``controller_lock`` at once; excess requests are refused with
    a retryable ``controller_busy`` error.  ``None`` (the default) leaves
    admissions unbounded.

    See the module docstring for the lock layout and ordering rules.
    """

    def __init__(self, controller: AdaptationController,
                 auto_flush: bool = True,
                 lease_seconds: float | None = None,
                 clock: Callable[[], float] | None = None,
                 recovering: bool = False,
                 max_pending_admissions: int | None = None,
                 flight_dump_path: str | None = None,
                 standby: bool = False,
                 fail_stop_on_error: bool = False,
                 pending_vars_cap: int | None = None,
                 failover_targets: list[str] | None = None):
        self.controller = controller
        self.auto_flush = auto_flush
        self.lease_seconds = lease_seconds
        self.clock: Callable[[], float] = clock or time.monotonic
        #: Degraded read-only mode (crash recovery in flight): mutating
        #: requests get ``error.code=controller_recovering`` until
        #: :meth:`complete_recovery`.
        self.recovering = recovering
        #: Standby role: reads are served, mutations are refused with a
        #: ``controller_moved`` redirect.  Flipped by :meth:`set_primary`
        #: (promotion) and :meth:`demote`.
        self.standby = standby
        #: Crash-only failure discipline for chaos suites: an unhandled
        #: dispatch error fail-stops the whole server (listener closed,
        #: every connection dropped) instead of killing one connection.
        self.fail_stop_on_error = fail_stop_on_error
        #: Set by :meth:`fail_stop`; a failed server drops everything.
        self.failed = False
        #: The WAL-shipping side (``None`` until
        #: :meth:`enable_replication`).
        self.replication = None
        #: The shared fencing record this server's term lives in
        #: (``None`` when replication runs unfenced).
        self.fencing = None
        self._fencing_holder: str | None = None
        self._fencing_lease_seconds = 30.0
        #: Where clients should look for the primary (advertised in
        #: ``controller_moved`` redirects when no fencing record is
        #: available to consult).
        self.failover_targets = list(failover_targets or [])
        #: Where to dump the flight recorder on an unhandled server
        #: error (``None`` records the event but writes nothing).
        self.flight_dump_path = flight_dump_path
        self.buffer = PendingVariableBuffer(
            max_per_client=pending_vars_cap,
            on_evict=self._on_pending_evicted)
        # The three pipeline locks publish always-on wait/hold
        # histograms (lock.<name>.{wait,hold}_seconds): contention is
        # the invisible cost of an admission burst, and a gauge or
        # counter cannot show its tail.
        #: Serializes controller mutations (the expensive lock).
        self.controller_lock = InstrumentedRLock("controller",
                                                 controller.metrics)
        #: Guards the session registry, leases, and push generations.
        self.sessions_lock = InstrumentedRLock("sessions",
                                               controller.metrics)
        #: Serializes pending-variable staging and flushing.
        self._flush_lock = InstrumentedRLock("flush", controller.metrics)
        self.max_pending_admissions = max_pending_admissions
        self._admission_gate = threading.Lock()
        self._pending_admissions = 0
        self.heartbeats_received = 0
        self.scheduler = None
        #: Federation: the arbiter's shard directory (answers
        #: ``shard_lookup``); ``None`` on every non-arbiter server.
        self.shard_router = None
        #: Sessions handed off to a sibling shard: key -> ``host:port``.
        #: Any message for a moved key answers with ``shard_moved``.
        self._moved_sessions: dict[str, str] = {}
        self._sessions_by_key: dict[str, HarmonySession] = {}
        self._leases: dict[str, float] = {}
        #: Highest push generation delivered per client — stale batches
        #: (older than what the client already holds) are dropped.
        self._push_generations: dict[str, int] = {}
        self._push_seq = 0
        self._listener_socket: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._accept_retry_seconds = 0.05
        self._lease_thread: threading.Thread | None = None
        self._lease_stop: threading.Event | None = None
        self._stopping = False
        controller.add_listener(self._on_reconfiguration)

    # -- telemetry ----------------------------------------------------------

    @property
    def recorder(self):
        """The controller's flight recorder (``None`` when disabled)."""
        return getattr(self.controller, "flight_recorder", None)

    def note_server_error(self, exc: BaseException, **fields: Any) -> None:
        """Record an unhandled error; dump the flight ring if configured.

        The dump is best-effort — a failing disk must not mask the
        original exception unwinding through the caller.
        """
        controller = self.controller
        controller.metrics.increment("server.unhandled_errors",
                                     controller.now)
        recorder = self.recorder
        if recorder is None:
            return
        recorder.record(EVENT_SERVER_ERROR, error=type(exc).__name__,
                        message=str(exc), **fields)
        if self.flight_dump_path is not None:
            try:
                recorder.dump(self.flight_dump_path)
            except OSError:
                pass

    def _on_pending_evicted(self, client_id: str, dropped: int) -> None:
        """A bounded pending-variable buffer evicted stale batches."""
        controller = self.controller
        controller.metrics.increment("server.pending_vars_dropped",
                                     controller.now, amount=float(dropped))

    def count_rpc(self, msg_type: str) -> None:
        """Count one received RPC as ``server.rpc.<type>`` (cumulative).

        Unknown type tags share one ``server.rpc.unknown`` bucket: metric
        cardinality is bounded by the protocol vocabulary, so a client
        spraying garbage tags cannot mint unbounded series.
        """
        bucket = msg_type if msg_type in CLIENT_TYPES else "unknown"
        controller = self.controller
        controller.metrics.increment(f"server.rpc.{bucket}",
                                     controller.now)

    def status_payload(self, prefix: str | None = None,
                       max_traces: int = 20) -> dict[str, Any]:
        """The ``status_report`` body: metrics, traces, work counters.

        ``prefix`` filters the metric snapshot by dotted prefix;
        ``max_traces`` caps the decision traces (most recent first is the
        log's tail, returned oldest-first).  Everything is strict-JSON
        serializable, so it travels over the wire protocol unchanged.
        """
        from repro.obs.export import json_snapshot

        controller = self.controller
        snapshot = json_snapshot(controller.metrics, prefix=prefix)
        with self.sessions_lock:
            heartbeats = self.heartbeats_received
            active = len(self._sessions_by_key)
        return {
            "metrics": snapshot["metrics"],
            "histograms": snapshot["histograms"],
            "decision_traces": [trace.to_dict() for trace in
                                controller.trace_log.latest(max_traces)],
            "optimizer": controller.stats.snapshot(),
            "server": {
                "heartbeats_received": heartbeats,
                "active_sessions": active,
                "lease_seconds": self.lease_seconds,
                "recovering": self.recovering,
            },
            "replication": self.replication_status(),
        }

    # -- admission backpressure ----------------------------------------------

    @contextlib.contextmanager
    def admission_slot(self) -> Iterator[None]:
        """Hold one slot in the bounded admission pipeline.

        Raises :class:`~repro.errors.ControllerBusyError` immediately
        when every slot is taken — the caller never blocks on a full
        queue, it gets a retryable refusal.
        """
        if self.max_pending_admissions is None:
            yield
            return
        with self._admission_gate:
            if self._pending_admissions >= self.max_pending_admissions:
                controller = self.controller
                controller.metrics.increment("server.admissions_rejected",
                                             controller.now)
                raise ControllerBusyError(
                    f"admission queue is full "
                    f"({self.max_pending_admissions} pending); retry")
            self._pending_admissions += 1
        try:
            yield
        finally:
            with self._admission_gate:
                self._pending_admissions -= 1

    # -- recovery mode -------------------------------------------------------

    def begin_recovery(self) -> None:
        """Enter the degraded read-only mode (mutations refused)."""
        with self.controller_lock:
            self.recovering = True

    def complete_recovery(self) -> None:
        """Recovery finished: accept mutations (and rejoins) again."""
        with self.controller_lock:
            self.recovering = False

    # -- replication & failover ----------------------------------------------

    def enable_replication(self, fencing=None, lease_seconds: float = 30.0,
                           address: str | None = None,
                           ship_timeout: float | None = 5.0) -> str:
        """Become a replicating primary; returns the role taken.

        With a :class:`~repro.persistence.replication.FencingStore`, the
        server first tries to acquire the fencing lease (bumping the
        term).  If another holder's lease is live — a newer primary was
        elected while this one was down — the server *demotes itself to
        standby* instead of split-braining, and returns ``"standby"``.
        On success the new term is journaled (durable before anything is
        served under it), stamped on every reply from here on, and a
        :class:`~repro.persistence.replication.ReplicationPrimary` is
        installed to ship WAL records to subscribing standbys.

        Without fencing the term is simply ``controller.term + 1`` —
        single-machine tests and demos that want replication without a
        shared fencing file.  ``ship_timeout`` bounds how long shipping
        to one standby may block the appending thread; a link that
        stalls past it is dropped (the standby re-hellos on reconnect).
        """
        from repro.persistence.replication import ReplicationPrimary

        controller = self.controller
        journal = controller.journal
        if journal is None:
            raise ControllerError(
                "enable_replication requires an attached durability "
                "journal (the WAL is the replication stream)")
        holder = address or f"server-{id(self):x}"
        with self.controller_lock:
            self.fencing = fencing
            self._fencing_holder = holder
            self._fencing_lease_seconds = lease_seconds
            if fencing is not None:
                try:
                    term = fencing.acquire(holder,
                                           lease_seconds=lease_seconds,
                                           address=address)
                except ReplicationError:
                    # Fenced out: a live, higher-term primary exists.
                    self.demote()
                    return "standby"
            else:
                term = controller.term + 1
            journal.record_term(term, holder)
            controller.note_term(term)
            self.replication = ReplicationPrimary(
                journal, controller,
                ship_timeout=ship_timeout).install()
            self.standby = False
            self.failed = False
        return "primary"

    def renew_fencing(self, now: float | None = None) -> bool:
        """Renew the primary lease; demote when the term moved on.

        Returns ``True`` while this server is (still) the fenced
        primary.  A deposed primary — one whose fencing record now
        carries a higher term, or whose renew is refused — demotes to
        standby here instead of continuing to serve a dead term.
        """
        if self.standby:
            return False
        if self.fencing is None:
            return True
        record = self.fencing.read()
        if record.term > self.controller.term:
            self.demote(observed_term=record.term)
            return False
        try:
            self.fencing.renew(self._fencing_holder,
                               self.controller.term, now=now)
        except ReplicationError:
            self.demote(observed_term=self.fencing.read().term)
            return False
        return True

    def demote(self, observed_term: int | None = None) -> None:
        """Step down to standby: mutations now answer with redirects."""
        with self.controller_lock:
            if self.standby:
                return
            self.standby = True
            self.replication = None
        controller = self.controller
        controller.metrics.increment("server.demotions", controller.now)
        recorder = self.recorder
        if recorder is not None:
            recorder.record(EVENT_DEMOTION, term=controller.term,
                            observed_term=observed_term)

    def set_primary(self) -> None:
        """Flip a standby server to primary (after a replica promoted).

        The caller is responsible for having won the term first —
        typically via
        :meth:`~repro.persistence.replication.ReplicationStandby.promote`,
        which acquires the fencing lease, journals the term, and hands
        back a live controller; :meth:`adopt_controller` wires it in.
        """
        with self.controller_lock:
            self.standby = False

    def adopt_controller(self, controller: AdaptationController) -> None:
        """Swap in a replica's rebuilt controller (standby servers).

        A standby server is constructed before its replica has finished
        catching up; once the replica (re)builds its controller — and
        again at promotion — the server adopts it so status queries and,
        post-promotion, mutations run against the replicated state.
        """
        with self.controller_lock:
            if controller is self.controller:
                return
            self.controller = controller
            controller.add_listener(self._on_reconfiguration)

    def moved_reply(self) -> dict[str, Any]:
        """The ``controller_moved`` redirect a standby answers with."""
        leader = self.leader_hint()
        message = "this server is a standby, not the primary controller"
        if leader:
            message += f"; try {leader}"
        fields: dict[str, Any] = {"message": message,
                                  "term": self.controller.term}
        if leader:
            fields["leader"] = leader
        return make_message(CONTROLLER_MOVED, **fields)

    def leader_hint(self) -> str | None:
        """Best guess at the current primary's address, if any.

        The fencing record is authoritative (whoever holds the lease is
        the primary); without one, the first configured failover target
        is offered.
        """
        if self.fencing is not None:
            record = self.fencing.read()
            if record.address and record.holder != self._fencing_holder:
                return str(record.address)
        if self.failover_targets:
            return self.failover_targets[0]
        return None

    def fail_stop(self) -> None:
        """Simulate crash-only failure: stop answering, drop every line.

        Closes the listener and every bound session transport and marks
        the server failed so racing reader threads drop their messages.
        Unlike :meth:`stop` this never joins threads (it may be running
        *on* a reader thread) and never drains the scheduler — a crash
        doesn't say goodbye.
        """
        self.failed = True
        self._stopping = True
        listener = self._listener_socket
        self._listener_socket = None
        if listener is not None:
            with contextlib.suppress(OSError):
                listener.close()
        with self.sessions_lock:
            sessions = list(self._sessions_by_key.values())
        for session in sessions:
            with contextlib.suppress(Exception):
                session.transport.close()
        # Replication links are not registered sessions (a standby never
        # sends ``register``), so the loop above misses them — and a
        # standby is purely reactive, so without an explicit close here
        # it would sit on the silent socket forever, never learning the
        # primary died.  Closed strictly *after* the client lines: a
        # mutation racing this teardown may fail its ship once a link is
        # gone, and its success reply must then be undeliverable too —
        # otherwise a client would hold an ack for a record no surviving
        # replica has.
        if self.replication is not None:
            for link in self.replication.link_transports():
                with contextlib.suppress(Exception):
                    link.close()

    def replication_status(self) -> dict[str, Any]:
        """This server's view of the replicated cluster (for ``status``)."""
        controller = self.controller
        journal = controller.journal
        last_seq = 0
        if journal is not None:
            records = journal.wal.records()
            last_seq = (records[-1].seq if records
                        else journal.wal.next_seq - 1)
        standbys = (self.replication.status()
                    if self.replication is not None else [])
        return {
            "role": "standby" if self.standby else "primary",
            "term": controller.term,
            "last_seq": last_seq,
            "standbys": standbys,
        }

    # -- federation: cross-shard session handoff ------------------------------

    def moved_target(self, key: str | None) -> str | None:
        """Where a handed-off session lives now (``None``: not moved)."""
        if key is None or not self._moved_sessions:
            return None
        with self.sessions_lock:
            return self._moved_sessions.get(key)

    def mark_session_moved(self, key: str, target: str) -> None:
        """Record that ``key`` was handed to the shard at ``target``."""
        with self.sessions_lock:
            self._moved_sessions[key] = target

    def clear_session_moved(self, key: str) -> None:
        """Forget a handoff tombstone (the session moved back here)."""
        with self.sessions_lock:
            self._moved_sessions.pop(key, None)

    def shard_moved_reply(self, target: str) -> dict[str, Any]:
        """The ``shard_moved`` redirect for a handed-off session."""
        return make_message(
            SHARD_MOVED,
            message=f"session was handed off; reconnect to {target}",
            term=self.controller.term, leader=target)

    def begin_handoff(self, key: str, target: str) -> dict[str, Any] | None:
        """Atomically export and evict one session for a sibling shard.

        Runs entirely under ``controller_lock``: the session's staged
        variable batches, decision traces, and push-generation watermark
        are captured, the application is evicted (allocations released,
        survivors re-optimized, ``release`` journaled), and the key is
        tombstoned so every later message — including a fresh ``register``
        carrying the moved ``resume_key`` — answers ``shard_moved`` with
        the target's address.  Returns the handoff descriptor for
        :meth:`adopt_handoff` on the target, or ``None`` when the key is
        unknown or already ended.  The descriptor holds live objects
        (in-process federation); it is not a wire message.
        """
        from repro.rsl import unparse_bundle

        with self.controller_lock:
            try:
                instance = self.controller.registry.instance(key)
            except ControllerError:
                return None
            if instance.ended:
                return None
            bundles = []
            for state in instance.bundles.values():
                chosen = state.chosen
                bundles.append({
                    "bundle_name": state.bundle.bundle_name,
                    "rsl": unparse_bundle(state.bundle),
                    "chosen_option": (chosen.option_name
                                      if chosen is not None else None),
                })
            with self._flush_lock:
                pending = dict(self.buffer.pending_for(key))
                staged_generation = self.buffer.generation_for(key)
            with self.sessions_lock:
                delivered = self._push_generations.get(key, 0)
            descriptor = {
                "key": key,
                "app_name": instance.app_name,
                "instance_id": instance.instance_id,
                "bundles": bundles,
                "pending": pending,
                "push_generation": max(staged_generation, delivered),
                "traces": list(self.controller.trace_log.for_app(key)),
            }
            self.controller.evict_app(instance,
                                      reason=f"handoff to {target}")
            with self._flush_lock:
                with self.sessions_lock:
                    self._sessions_by_key.pop(key, None)
                    self._leases.pop(key, None)
                    self._push_generations.pop(key, None)
                    self._moved_sessions[key] = target
                self.buffer.discard(key)
            return descriptor

    def adopt_handoff(self, descriptor: dict[str, Any]) -> AppInstance:
        """Re-admit a session exported by a sibling's :meth:`begin_handoff`.

        The instance is adopted under its original key (so the client's
        ``resume_key`` rejoin matches), its staged variable batches are
        re-staged for delivery on rejoin, its decision traces are
        imported for continuity, and this server's push sequence is
        advanced past the origin shard's watermark — otherwise this
        shard's next reconfiguration push would stamp a *lower*
        generation than the carried batch and be dropped as stale.
        """
        key = str(descriptor["key"])
        with self.controller_lock:
            self.clear_session_moved(key)
            instance = self.controller.adopt_app(
                str(descriptor["app_name"]),
                int(descriptor["instance_id"]))
            for trace in descriptor.get("traces", ()):
                self.controller.trace_log.record(trace)
            generation = int(descriptor.get("push_generation", 0))
            pending = descriptor.get("pending") or {}
            with self._flush_lock:
                self._push_seq = max(self._push_seq, generation)
                if pending:
                    self.buffer.stage_many(key, dict(pending),
                                           generation=generation)
        self.touch(key)
        return instance

    # -- the coalescing scheduler --------------------------------------------

    def start_scheduler(self, coalesce_window: float = 0.05,
                        max_delay: float = 0.5,
                        clock: Callable[[], float] | None = None):
        """Attach and start a coalescing reevaluation scheduler.

        The scheduler runs its batches under ``controller_lock``, so a
        coalesced sweep serializes with admissions exactly like an inline
        sweep would — but register/end/metric triggers return immediately
        and merge into one batch per quiescence window.  Returns the
        scheduler; :meth:`stop` drains and stops it.
        """
        from repro.controller.scheduler import CoalescingScheduler

        if self.scheduler is not None:
            raise ProtocolError("scheduler already attached")
        self.scheduler = CoalescingScheduler(
            self.controller, coalesce_window=coalesce_window,
            max_delay=max_delay, clock=clock, lock=self.controller_lock)
        self.scheduler.start()
        return self.scheduler

    # -- attaching clients ---------------------------------------------------

    def attach(self, transport: Transport) -> HarmonySession:
        """Adopt one server-side transport endpoint as a session."""
        return HarmonySession(self, transport)

    def bind_session(self, session: HarmonySession) -> None:
        with self.sessions_lock:
            self._sessions_by_key[session.client_id] = session
        self.touch(session.client_id)

    def detach(self, session: HarmonySession) -> None:
        """Drop a session's registry entry, lease, and staged batch.

        Guarded by identity: a *stale* session (the client reconnected
        and a newer session owns the key) detaching — say, its dead
        transport failing a late reply — must not tear down the live
        session's lease or staged updates.
        """
        instance = session.instance
        if instance is None:
            return
        key = instance.key
        with self._flush_lock:
            with self.sessions_lock:
                if self._sessions_by_key.get(key) is not session:
                    return
                self._sessions_by_key.pop(key, None)
                self._leases.pop(key, None)
                self._push_generations.pop(key, None)
            self.buffer.discard(key)

    def mark_disconnected(self, session: HarmonySession) -> None:
        """A session's transport died, but its lease keeps running.

        The registration, allocations, and any staged variable updates
        survive until the lease expires (eviction) or the client rejoins
        with its resume key (rebind + replay).
        """
        if session.instance is None:
            return
        with self.sessions_lock:
            if self._sessions_by_key.get(session.instance.key) is session:
                self._sessions_by_key.pop(session.instance.key, None)

    # -- session leases -------------------------------------------------------

    def touch(self, key: str) -> None:
        """Renew one application's lease (any received message counts)."""
        if self.lease_seconds is not None:
            with self.sessions_lock:
                self._leases[key] = self.clock() + self.lease_seconds

    def lease_deadline(self, key: str) -> float | None:
        with self.sessions_lock:
            return self._leases.get(key)

    def check_leases(self, now: float | None = None) -> list[str]:
        """Evict every application whose lease has expired.

        Returns the evicted keys.  For each: the controller removes the
        placement and re-optimizes the survivors (emitting a structured
        lifecycle event), staged updates are discarded, and — if the dead
        transport still accepts writes — a ``lease_expired`` notice is
        sent so a half-alive client learns its fate immediately.
        """
        if self.lease_seconds is None:
            return []
        if now is None:
            now = self.clock()
        evicted: list[str] = []
        notify: list[HarmonySession] = []
        with self.controller_lock:
            with self.sessions_lock:
                expired = [key for key, deadline in self._leases.items()
                           if deadline <= now]
            for key in expired:
                with self.sessions_lock:
                    self._leases.pop(key, None)
                    session = self._sessions_by_key.pop(key, None)
                    self._push_generations.pop(key, None)
                with self._flush_lock:
                    self.buffer.discard(key)
                try:
                    instance = self.controller.registry.instance(key)
                except ControllerError:
                    instance = None
                if instance is not None and not instance.ended:
                    if self.controller.journal is not None:
                        # Audit record: the state change itself is the
                        # eviction's ``release`` record.
                        self.controller.journal.record_lease_expired(key)
                    self.controller.evict_app(instance,
                                              reason="lease expired")
                self.controller.metrics.increment("server.lease_expiries",
                                                  self.controller.now)
                recorder = self.recorder
                if recorder is not None:
                    recorder.record(EVENT_LEASE_EXPIRED, client=key)
                evicted.append(key)
                if session is not None and not session.transport.closed:
                    notify.append(session)
        for session in notify:
            try:
                session.transport.send(make_message(
                    LEASE_EXPIRED,
                    message=f"session {session.client_id} lease expired"))
            except (TransportError, ProtocolError, ControllerBusyError):
                pass
        return evicted

    def start_lease_monitor(self, period_seconds: float | None = None,
                            ) -> None:
        """Run :meth:`check_leases` periodically on a background thread."""
        if self.lease_seconds is None:
            raise ProtocolError("server has no lease_seconds configured")
        if self._lease_thread is not None and self._lease_thread.is_alive():
            return
        period = period_seconds or self.lease_seconds / 3.0
        stop = threading.Event()
        self._lease_stop = stop

        def monitor() -> None:
            while not stop.wait(period):
                self.check_leases()

        self._lease_thread = threading.Thread(
            target=monitor, name="harmony-lease-monitor", daemon=True)
        self._lease_thread.start()

    def stop_lease_monitor(self) -> None:
        """Stop the monitor and *wait for it*: after this returns, no
        lease check is running or will ever run again."""
        thread = self._lease_thread
        if self._lease_stop is not None:
            self._lease_stop.set()
        if thread is not None and thread.is_alive() \
                and thread is not threading.current_thread():
            thread.join(timeout=5.0)
        self._lease_thread = None
        self._lease_stop = None

    # -- TCP front end ---------------------------------------------------------

    def serve_tcp(self, host: str = "127.0.0.1", port: int = DEFAULT_PORT,
                  ) -> tuple[str, int]:
        """Listen for application connections; returns the bound address.

        Pass ``port=0`` for an ephemeral port (tests).  Each accepted
        connection gets a :class:`TcpTransport` and a session; handling
        runs on the transports' reader threads, synchronized by the
        server's lock layout (see the module docstring).
        """
        if self._listener_socket is not None:
            raise ProtocolError("server already listening")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((host, port))
        listener.listen()
        self._stopping = False
        self._listener_socket = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True)
        self._accept_thread.start()
        return listener.getsockname()

    def stop(self) -> None:
        """Shut down in dependency order: monitors first, sessions last.

        The scheduler is drained and stopped, then the lease monitor is
        stopped *and joined* and the accept loop closed before any
        session state is dropped, so neither a scheduled batch nor a
        lease check can ever fire against a half-torn-down server.
        Session transports themselves stay open — clients own their
        connections.
        """
        self._stopping = True
        if self.scheduler is not None:
            self.scheduler.stop(flush=True)
            self.scheduler = None
        self.stop_lease_monitor()
        accept_thread = self._accept_thread
        if self._listener_socket is not None:
            # shutdown() before close(): merely closing the fd does not
            # wake a thread blocked in accept(2), so the join below
            # would burn its whole timeout.  Shutting the listener down
            # makes the blocked accept return immediately.
            try:
                self._listener_socket.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener_socket.close()
            except OSError:
                pass
            self._listener_socket = None
        if accept_thread is not None and accept_thread.is_alive() \
                and accept_thread is not threading.current_thread():
            accept_thread.join(timeout=5.0)
        self._accept_thread = None
        with self.sessions_lock:
            self._sessions_by_key.clear()
            self._leases.clear()
            self._push_generations.clear()

    def _accept_loop(self) -> None:
        while True:
            listener = self._listener_socket
            if self._stopping or listener is None:
                return
            try:
                sock, _addr = listener.accept()
            except OSError:
                if self._stopping or self._listener_socket is None:
                    # Orderly shutdown closed the listener under us.
                    return
                # A transient accept failure (EMFILE, ECONNABORTED, …)
                # must not kill the accept loop for the server's
                # lifetime: count it, back off briefly, keep serving.
                controller = self.controller
                controller.metrics.increment("server.accept_errors",
                                             controller.now)
                if self._accept_retry_seconds > 0:
                    time.sleep(self._accept_retry_seconds)
                continue
            self.attach(TcpTransport(sock))

    # -- variable pushing ----------------------------------------------------------

    def stage_updates(self, client_id: str, updates: dict[str, Any],
                      generation: int = 0) -> None:
        """Stage a batch under the flush lock (never races a flush)."""
        with self._flush_lock:
            self.buffer.stage_many(client_id, updates,
                                   generation=generation)

    def _on_reconfiguration(self, event: ReconfigurationEvent) -> None:
        updates: dict[str, Any] = {
            f"{event.bundle_name}.option": event.option_name,
        }
        for name, value in event.variable_assignment.items():
            updates[f"{event.bundle_name}.{name}"] = value
        for local_name, hostname in event.placements.items():
            updates[f"{event.bundle_name}.{local_name}.hostname"] = hostname
        for grant_key, megabytes in event.memory_grants.items():
            # grant_key is "<local_name>.memory"
            updates[f"{event.bundle_name}.{grant_key}"] = megabytes
        with self._flush_lock:
            self._push_seq += 1
            self.buffer.stage_many(event.app_key, updates,
                                   generation=self._push_seq)
        if self.auto_flush:
            self.flush_pending_vars()

    def flush_pending_vars(self) -> int:
        """The paper's ``flushPendingVars()``: drain staged updates.

        Batches for clients that are currently unreachable stay staged
        (they are within their lease; eviction discards them for good), so
        a reconfiguration that lands during a disconnect window is
        delivered when the client rejoins.

        Flushes are serialized and each delivery carries its batch's
        newest generation stamp; a batch older than what the client
        already received is dropped (``server.stale_pushes_dropped``)
        rather than rewinding the client's variables.
        """
        def ready(client_id: str) -> bool:
            with self.sessions_lock:
                session = self._sessions_by_key.get(client_id)
            return session is not None and not session.transport.closed

        def send(client_id: str, updates: dict[str, Any],
                 generation: int) -> None:
            with self.sessions_lock:
                session = self._sessions_by_key.get(client_id)
                delivered = self._push_generations.get(client_id, 0)
            if session is None:
                return
            if 0 < generation < delivered:
                controller = self.controller
                controller.metrics.increment("server.stale_pushes_dropped",
                                             controller.now)
                return
            tracer = self.controller.tracer
            with tracer.span("server.push", generation=generation,
                             client=client_id, variables=len(updates)):
                session.push_updates(updates, generation=generation)
            recorder = self.recorder
            if recorder is not None:
                recorder.record(EVENT_PUSH, client=client_id,
                                generation=generation,
                                variables=len(updates))
            if generation > delivered:
                with self.sessions_lock:
                    if generation > self._push_generations.get(client_id, 0):
                        self._push_generations[client_id] = generation

        with self._flush_lock:
            return self.buffer.flush(send, ready=ready,
                                     with_generation=True)

    def current_variable_value(self, instance: AppInstance,
                               name: str) -> Any:
        """Resolve a variable name against the app's chosen configurations."""
        for bundle_name, state in instance.bundles.items():
            chosen = state.chosen
            if chosen is None:
                continue
            if name == f"{bundle_name}.option":
                return chosen.option_name
            for var, value in chosen.variable_assignment.items():
                if name == f"{bundle_name}.{var}":
                    return value
            for local_name, hostname in chosen.assignment.placements.items():
                if name == f"{bundle_name}.{local_name}.hostname":
                    return hostname
            for grant_key, megabytes in \
                    chosen.allocation.memory_grants().items():
                if name == f"{bundle_name}.{grant_key}":
                    return megabytes
        return None
