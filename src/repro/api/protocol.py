"""Wire protocol between applications and the Harmony server.

The prototype in the paper is "a server that listens on a well-known port
and waits for connections from application processes".  Messages here are
JSON objects framed with a 4-byte big-endian length prefix; the same message
vocabulary flows over both the TCP transport and the in-process transport.

Client -> server message types (mirroring the Figure 5 API):

* ``register``       {app_name, use_interrupts, resume_key?}
* ``bundle_setup``   {rsl}
* ``add_variable``   {name, default, var_type}
* ``wait_for_update``{}
* ``report_metric``  {name, value}
* ``query_nodes``    {}
* ``status``         {prefix?, max_traces?}
* ``heartbeat``      {key?}
* ``end``            {}
* ``repl_hello``     {standby_id, last_seq, last_crc?, last_term?}
  (standby -> primary)
* ``repl_ack``       {standby_id, seq}          (standby -> primary)
* ``shard_lookup``   {app_name?, resume_key?}   (client -> arbiter)

Server -> client:

* ``registered``       {instance_id, key, resumed}
* ``bundle_ok``        {bundle_name, option, variables, placements}
* ``variable_added``   {name, value}
* ``variable_update``  {updates: {name: value}}
* ``node_list``        {nodes: [...], rsl}
* ``status_report``    {metrics, decision_traces, optimizer, server}
* ``heartbeat_ack``    {lease_expires_at?}
* ``lease_expired``    {message}
* ``ended``            {}
* ``error``            {message, code?}
* ``controller_moved`` {message, term, leader?}
* ``shard_moved``      {message, term, leader?}
* ``shard_map``        {shards: [...], assignments?}  (arbiter -> client)
* ``repl_records``     {term, frames: [str]}       (primary -> standby)
* ``repl_snapshot``    {term, last_seq, crc, state, reset?}
  (primary -> standby)

``register`` with a ``resume_key`` is a *rejoin*: if the named instance is
still registered (its lease has not expired), the server re-binds the new
connection to it instead of creating a duplicate; otherwise registration
proceeds fresh and ``registered.resumed`` is False.  ``heartbeat`` renews
the session lease; ``lease_expired`` is the server's answer to any message
from a session it has already evicted.

``error.code`` carries a machine-readable discriminator when one exists;
the only defined value is ``controller_recovering`` — the server is
replaying its durability log in read-only mode, and the client library
maps it to :class:`~repro.errors.ControllerRecoveringError` instead of a
generic failure.  :data:`MUTATING_TYPES` is the message set the read-only
mode refuses (queries, status, and heartbeats still flow).

The replication vocabulary rides the same codec.  A standby dials the
primary like any client and sends ``repl_hello`` with the last WAL
sequence number it holds, plus ``last_crc`` — the frame CRC of its
newest local record — when it has one; the primary serves the tail only
if that record is in its own history (log matching), and otherwise
answers with a ``repl_snapshot`` carrying ``reset: true``, which orders
the standby to discard its divergent log and adopt the snapshot
unconditionally.  On a match the primary answers with ``repl_records``
(each element of ``frames`` is one CRC-framed WAL line, exactly the
bytes the primary wrote to disk, so the standby re-verifies the checksum
end-to-end) and streams further appends as they happen, interleaving
``repl_snapshot`` offers when the standby is behind the compaction
horizon.  ``repl_ack`` reports the standby's durable high-water mark.

``controller_moved`` is the failover redirect: a standby (or a deposed
primary fenced by a higher term) refuses every :data:`MUTATING_TYPES`
request with it, carrying the refuser's ``term`` and, when the fencing
record knows it, a ``leader`` ``host:port`` hint.  Once a server has a
nonzero term it stamps ``term`` on *every* reply, so clients can spot a
stale primary.  See docs/replication.md.

``shard_moved`` is the federation redirect, modeled on
``controller_moved``: a shard that has handed a session to a sibling
answers that session's next request with it, ``leader`` carrying the
new shard's ``host:port``.  ``shard_lookup`` asks the root arbiter
which shard owns an ``app_name`` (or an exact ``resume_key``) before
connecting; the arbiter answers with ``shard_map`` listing every
shard's address plus the resolved ``leader``.  See docs/federation.md.
"""

from __future__ import annotations

import json
import struct
from typing import Any

from repro.errors import ProtocolError

__all__ = ["encode_message", "FrameDecoder", "make_message",
           "require_field", "CLIENT_TYPES", "SERVER_TYPES",
           "HEARTBEAT", "HEARTBEAT_ACK", "LEASE_EXPIRED",
           "STATUS", "STATUS_REPORT", "CONTROLLER_RECOVERING",
           "CONTROLLER_BUSY", "CONTROLLER_MOVED", "MUTATING_TYPES",
           "TRACE_CTX_FIELD", "REPL_HELLO", "REPL_ACK", "REPL_RECORDS",
           "REPL_SNAPSHOT", "SHARD_MOVED", "SHARD_LOOKUP", "SHARD_MAP"]

_HEADER = struct.Struct(">I")
MAX_FRAME_BYTES = 16 * 1024 * 1024

#: The session-liveness vocabulary (named so callers need no literals).
HEARTBEAT = "heartbeat"
HEARTBEAT_ACK = "heartbeat_ack"
LEASE_EXPIRED = "lease_expired"

#: The telemetry-query vocabulary.
STATUS = "status"
STATUS_REPORT = "status_report"

#: The replication vocabulary (standby -> primary rides the client
#: direction; the stream back rides the server direction).
REPL_HELLO = "repl_hello"
REPL_ACK = "repl_ack"
REPL_RECORDS = "repl_records"
REPL_SNAPSHOT = "repl_snapshot"

#: The failover redirect: "I am not the primary; go there."
CONTROLLER_MOVED = "controller_moved"

#: The federation vocabulary: a shard redirecting a handed-off session
#: ("your session lives there now"), and the arbiter's shard directory.
SHARD_MOVED = "shard_moved"
SHARD_LOOKUP = "shard_lookup"
SHARD_MAP = "shard_map"

CLIENT_TYPES = frozenset({
    "register", "bundle_setup", "add_variable", "wait_for_update",
    "report_metric", "query_nodes", STATUS, HEARTBEAT, "end",
    REPL_HELLO, REPL_ACK, SHARD_LOOKUP,
})
SERVER_TYPES = frozenset({
    "registered", "bundle_ok", "variable_added", "variable_update",
    "node_list", STATUS_REPORT, HEARTBEAT_ACK, LEASE_EXPIRED, "ended",
    "error", CONTROLLER_MOVED, REPL_RECORDS, REPL_SNAPSHOT,
    SHARD_MOVED, SHARD_MAP,
})

#: Error code on ``error`` replies sent while recovery is in flight.
CONTROLLER_RECOVERING = "controller_recovering"

#: Error code on ``error`` replies refused by admission backpressure:
#: the bounded pending-register queue is full.  Transient and retryable
#: — the client library maps it to
#: :class:`~repro.errors.ControllerBusyError` and retries with backoff.
CONTROLLER_BUSY = "controller_busy"

#: Requests that change controller state — refused (with
#: ``error.code=controller_recovering``) while the server is in the
#: degraded read-only mode during crash recovery.
MUTATING_TYPES = frozenset({
    "register", "bundle_setup", "report_metric", "end",
})

#: Name of the *optional* trace-propagation field a client may stamp on
#: any request: ``{"trace_id": str, "span_id": int, "sampled": bool}``
#: (see :class:`repro.obs.trace.TraceContext` and docs/wire-protocol.md).
#: Strictly additive and backward-compatible — receivers that do not
#: understand it (or receive garbage in it) ignore it.
TRACE_CTX_FIELD = "trace_ctx"


def make_message(msg_type: str, **fields: Any) -> dict[str, Any]:
    """Build a protocol message dict, validating the type tag."""
    if msg_type not in CLIENT_TYPES and msg_type not in SERVER_TYPES:
        raise ProtocolError(f"unknown message type {msg_type!r}")
    message = {"type": msg_type}
    message.update(fields)
    return message


def require_field(message: dict[str, Any], field: str) -> Any:
    """Fetch a mandatory field, raising :class:`ProtocolError` if absent."""
    if field not in message:
        raise ProtocolError(
            f"message {message.get('type', '?')!r} is missing "
            f"field {field!r}")
    return message[field]


def encode_message(message: dict[str, Any]) -> bytes:
    """Serialize a message to a length-prefixed JSON frame."""
    if "type" not in message:
        raise ProtocolError("message has no 'type' field")
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(payload)} bytes exceeds limit")
    return _HEADER.pack(len(payload)) + payload


class FrameDecoder:
    """Incremental decoder: feed bytes, pop complete messages.

    Handles partial frames across ``feed`` calls, so it can sit directly on
    a socket's ``recv`` loop.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[dict[str, Any]]:
        """Consume ``data``; return every now-complete message in order."""
        self._buffer.extend(data)
        messages: list[dict[str, Any]] = []
        while True:
            if len(self._buffer) < _HEADER.size:
                return messages
            (length,) = _HEADER.unpack_from(self._buffer, 0)
            if length > MAX_FRAME_BYTES:
                raise ProtocolError(
                    f"incoming frame of {length} bytes exceeds limit")
            if len(self._buffer) < _HEADER.size + length:
                return messages
            payload = bytes(self._buffer[_HEADER.size:_HEADER.size + length])
            del self._buffer[:_HEADER.size + length]
            try:
                message = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ProtocolError(f"malformed frame: {exc}") from exc
            if not isinstance(message, dict) or "type" not in message:
                raise ProtocolError(
                    "frame is not an object with a 'type' field")
            messages.append(message)

    def pending_bytes(self) -> int:
        return len(self._buffer)
