"""Retry, timeout, and backoff policy for client RPCs.

Every :class:`~repro.api.client.HarmonyClient` request goes through one
:class:`RetryPolicy`: the per-attempt timeout, the number of attempts, the
exponential backoff between them, and the heartbeat cadence all live here
instead of being scattered as magic numbers.  The policy object is immutable
and shared freely between clients.

The defaults match the old hardcoded behaviour (a single 30 s attempt) so
existing callers see no change unless they opt into retries.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ProtocolError

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How a client treats slow, lost, and failed requests.

    * ``request_timeout_seconds`` — how long one attempt waits for its
      response before raising
      :class:`~repro.errors.RequestTimeoutError`.
    * ``max_attempts`` — total tries per request (1 = never retry).
    * ``backoff_initial_seconds`` / ``backoff_multiplier`` /
      ``backoff_max_seconds`` — the delay before retry *n* is
      ``initial * multiplier**(n-1)``, capped at the maximum.
    * ``backoff_jitter`` — fraction of each delay that is randomized
      (full jitter).  ``0`` keeps the schedule deterministic; ``1``
      draws uniformly from ``[0, delay]``.  Jitter is what stops a
      failed-over client herd from retrying in lockstep against the
      new primary.
    * ``heartbeat_interval_seconds`` — cadence of
      :meth:`~repro.api.client.HarmonyClient.start_heartbeats`; keep it
      well under the server's lease so several beats can be lost before
      eviction.
    """

    request_timeout_seconds: float = 30.0
    max_attempts: int = 1
    backoff_initial_seconds: float = 0.1
    backoff_multiplier: float = 2.0
    backoff_max_seconds: float = 5.0
    backoff_jitter: float = 0.0
    heartbeat_interval_seconds: float = 5.0

    def __post_init__(self) -> None:
        if self.request_timeout_seconds <= 0:
            raise ProtocolError("request_timeout_seconds must be positive")
        if self.max_attempts < 1:
            raise ProtocolError("max_attempts must be at least 1")
        if self.backoff_initial_seconds < 0:
            raise ProtocolError("backoff_initial_seconds must be >= 0")
        if self.backoff_multiplier < 1:
            raise ProtocolError("backoff_multiplier must be >= 1")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ProtocolError("backoff_jitter must be in [0, 1]")
        if self.heartbeat_interval_seconds <= 0:
            raise ProtocolError("heartbeat_interval_seconds must be positive")

    def backoff_delay(self, retry_number: int) -> float:
        """Seconds to wait before retry ``retry_number`` (1-based).

        This is the *deterministic* schedule — the upper bound the
        jittered delay is drawn against.
        """
        if retry_number < 1:
            raise ProtocolError("retry_number is 1-based")
        delay = (self.backoff_initial_seconds
                 * self.backoff_multiplier ** (retry_number - 1))
        return min(delay, self.backoff_max_seconds)

    def jittered_delay(self, retry_number: int,
                       rng: random.Random | None = None) -> float:
        """The actual sleep before retry ``retry_number``: full jitter.

        The jittered fraction of the deterministic delay is replaced by
        a uniform draw over itself (AWS "full jitter"):
        ``delay*(1-jitter) + uniform(0, delay*jitter)``.  With
        ``backoff_jitter=0`` this is exactly :meth:`backoff_delay`; with
        ``1`` it is ``uniform(0, delay)`` — the spread that de-correlates
        a thundering herd of retrying clients.  Pass ``rng`` (a seeded
        :class:`random.Random`) for deterministic tests.
        """
        delay = self.backoff_delay(retry_number)
        if self.backoff_jitter == 0.0 or delay == 0.0:
            return delay
        draw = (rng or random).uniform(0.0, delay * self.backoff_jitter)
        return delay * (1.0 - self.backoff_jitter) + draw

    def delays(self) -> list[float]:
        """The full backoff schedule: one delay per allowed retry."""
        return [self.backoff_delay(n)
                for n in range(1, self.max_attempts)]

    @classmethod
    def aggressive(cls) -> "RetryPolicy":
        """A short-fuse profile for tests and low-latency links."""
        return cls(request_timeout_seconds=2.0, max_attempts=4,
                   backoff_initial_seconds=0.05, backoff_multiplier=2.0,
                   backoff_max_seconds=1.0,
                   heartbeat_interval_seconds=0.5)
