"""Asyncio transport front end for the Harmony server (10k connections).

The threaded TCP path (:meth:`HarmonyServer.serve_tcp`) spends one reader
thread per connection; at production connection counts that is the binding
ceiling long before the optimizer is.  :class:`AsyncHarmonyServer` replaces
the per-connection thread with a single event loop:

* **One event loop, one thread.**  ``serve()`` starts a dedicated loop
  thread; every socket is owned by that loop through an
  :class:`asyncio.Protocol` (:class:`HarmonyWireProtocol`).  The loop only
  ever frames bytes and schedules work — it never runs controller code.
* **Shared codec, byte-identical wire protocol.**  Framing is the same
  :class:`~repro.api.protocol.FrameDecoder` / ``encode_message`` pair the
  threaded path and :class:`~repro.api.transport.TcpTransport` use, so a
  client cannot tell the two servers apart and every fault/chaos/recovery
  suite runs unchanged against either (see the normative spec in
  ``docs/wire-protocol.md``).
* **Executor dispatch, batched.**  Decoded messages queue per connection
  and drain in arrival order; each drained batch crosses into a thread
  pool exactly once, so a burst of heartbeats costs one loop→thread hop
  instead of one per beat.  Controller-locked requests (``register``,
  ``bundle_setup``, ``end``) run on a separate *heavy* pool from
  heartbeats/status/metric traffic, mirroring the server's lock split: a
  slow optimization sweep can saturate the heavy pool without delaying
  another connection's heartbeat ACK (the event-loop-stall test pins this
  down).  Per-connection ordering is strict — one batch in flight at a
  time — exactly like the threaded reader.
* **Backpressure-aware writes.**  Each connection has a bounded write
  queue.  When a peer stops reading (or the loop is saturated) and the
  queue fills, sends fail with
  :class:`~repro.errors.ControllerBusyError` — the same retryable
  ``controller_busy`` refusal the admission pipeline uses — instead of
  buffering without bound.  Refused *replies* are dropped (the client
  retries); refused variable *pushes* are re-staged under the client's
  lease like any push to an unreachable client.  Error replies bypass the
  bound so the refusal itself can always leave the building.
* **Inbound backpressure.**  A connection whose queued inbound messages
  exceed ``max_inbox`` has its socket reading paused until the backlog
  drains — a client cannot wedge the loop by spraying frames faster than
  the executors drain them.

Everything behind the front end — sessions, locks, leases, the coalescing
scheduler, the journal — is the untouched :class:`HarmonyServer` machinery;
this module is purely the I/O layer.  Session handlers run on executor
threads under the same three-lock discipline as the threaded path.
"""

from __future__ import annotations

import asyncio
import collections
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable

from repro.api.protocol import FrameDecoder, encode_message
from repro.api.server import _CONTROLLER_LOCKED_TYPES, HarmonyServer
from repro.metrics.histogram import COUNT_BOUNDS
from repro.api.transport import Transport
from repro.errors import (
    ControllerBusyError,
    HarmonyError,
    ProtocolError,
    TransportError,
)

__all__ = ["AsyncHarmonyServer", "AsyncioTransport", "HarmonyWireProtocol"]


class AsyncioTransport(Transport):
    """The server-side :class:`Transport` endpoint for one asyncio socket.

    ``send`` is thread-safe: session handlers (executor threads) and the
    flush path (any thread) encode the frame, reserve a slot in the
    bounded write queue, and hand the bytes to the loop with
    ``call_soon_threadsafe``.  The slot is released when the bytes
    actually reach the socket buffer; while asyncio's flow control has
    writing paused (the peer stopped reading), frames are held on the
    loop side and keep their slots — so the bound covers the whole
    userspace backlog, not just the thread-to-loop handoff.

    A full queue surfaces as :class:`~repro.errors.ControllerBusyError`
    (retryable, the wire's ``controller_busy``), except for ``error``
    replies, which always pass: the refusal must be deliverable even
    when nothing else is.
    """

    def __init__(self, front: "AsyncHarmonyServer",
                 asyncio_transport: asyncio.Transport):
        self._front = front
        self._loop = front.loop
        self._transport = asyncio_transport
        self._receiver: Callable[[dict[str, Any]], None] | None = None
        self._backlog: list[dict[str, Any]] = []
        self._closed = False
        #: Frames reserved but not yet written (guarded by ``_mutex``).
        self._queued_writes = 0
        self._mutex = threading.Lock()
        #: Loop-thread-only state: frames held while asyncio flow control
        #: has writing paused.
        self._paused = False
        self._held: collections.deque[bytes] = collections.deque()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def queued_writes(self) -> int:
        """Frames accepted but not yet on the socket (tests, telemetry)."""
        with self._mutex:
            return self._queued_writes

    def send(self, message: dict[str, Any]) -> None:
        if self._closed:
            raise TransportError("send on closed transport")
        data = encode_message(message)
        # Error replies (including the controller_busy refusal itself)
        # jump the bound: a connection under backpressure must still be
        # able to say *why* it is refusing.
        priority = message.get("type") == "error"
        with self._mutex:
            if not priority and \
                    self._queued_writes >= self._front.max_write_queue:
                self._front.count("server.async.writes_refused")
                raise ControllerBusyError(
                    f"connection write queue is full "
                    f"({self._front.max_write_queue} frames pending); "
                    f"retry")
            self._queued_writes += 1
            depth = self._queued_writes
        self._front.write_depth_hist.observe(float(depth))
        try:
            self._loop.call_soon_threadsafe(self._write, data)
        except RuntimeError as exc:  # loop already closed (shutdown race)
            with self._mutex:
                self._queued_writes -= 1
            self._closed = True
            raise TransportError(f"event loop is gone: {exc}") from exc

    def _write(self, data: bytes) -> None:
        """Loop thread: write (or hold, while flow control is paused).

        Only an actually-closing socket drops the frame.  ``_closed``
        alone does not: it flips the moment ``close()`` is *requested*,
        possibly from another thread, while this callback may carry a
        frame that was accepted (and perhaps already acknowledged to a
        caller) before that request — loop callback ordering guarantees
        such frames run before ``_close_on_loop``, so honoring them
        preserves the accepted-implies-delivered contract of an orderly
        close.
        """
        if self._transport.is_closing():
            with self._mutex:
                self._queued_writes -= 1
            return
        if self._paused:
            self._held.append(data)  # keeps its queue slot until written
            return
        with self._mutex:
            self._queued_writes -= 1
        self._transport.write(data)

    def _pause_writing(self) -> None:
        self._paused = True

    def _resume_writing(self) -> None:
        self._paused = False
        while self._held and not self._paused:
            data = self._held.popleft()
            with self._mutex:
                self._queued_writes -= 1
            self._transport.write(data)

    def set_receiver(self,
                     receiver: Callable[[dict[str, Any]], None]) -> None:
        self._receiver = receiver
        backlog, self._backlog = self._backlog, []
        for message in backlog:
            receiver(message)

    def deliver(self, message: dict[str, Any]) -> None:
        """Run the receiver (executor thread; per-connection serialized)."""
        if self._receiver is None:
            self._backlog.append(message)
        else:
            self._receiver(message)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._loop.call_soon_threadsafe(self._close_on_loop)
        except RuntimeError:
            pass  # loop already gone; the socket dies with it

    def _close_on_loop(self) -> None:
        # An orderly goodbye: flush frames accepted before the close was
        # requested (asyncio's transport.close() then drains its own
        # buffer before FIN), so a crash-stop never swallows bytes the
        # server already took responsibility for.
        if not self._transport.is_closing():
            while self._held:
                with self._mutex:
                    self._queued_writes -= 1
                self._transport.write(self._held.popleft())
            self._transport.close()
        self._held.clear()

    def _mark_lost(self) -> None:
        """Loop thread: the peer vanished (connection_lost)."""
        self._closed = True
        self._held.clear()


class HarmonyWireProtocol(asyncio.Protocol):
    """Frames bytes for one connection and feeds the dispatch pipeline.

    ``data_received`` only decodes and enqueues; an at-most-one-in-flight
    drain task moves whole batches onto an executor, preserving arrival
    order per connection while different connections proceed in parallel.
    """

    def __init__(self, front: "AsyncHarmonyServer"):
        self.front = front
        self.decoder = FrameDecoder()
        self.harmony_transport: AsyncioTransport | None = None
        self.session = None
        self._inbox: collections.deque[dict[str, Any]] = collections.deque()
        self._dispatching = False
        self._reading_paused = False
        self._asyncio_transport: asyncio.Transport | None = None

    # -- asyncio.Protocol callbacks (loop thread) ---------------------------

    def connection_made(self, transport: asyncio.BaseTransport) -> None:
        assert isinstance(transport, asyncio.Transport)
        self._asyncio_transport = transport
        self.harmony_transport = AsyncioTransport(self.front, transport)
        self.front.track(self)
        # Adopting the transport creates the HarmonySession, which installs
        # its message handler as the transport receiver — the same
        # attach() every other transport goes through.
        self.session = self.front.server.attach(self.harmony_transport)
        self.front.count("server.async.connections")

    def connection_lost(self, exc: Exception | None) -> None:
        if self.harmony_transport is not None:
            self.harmony_transport._mark_lost()
        self.front.untrack(self)

    def pause_writing(self) -> None:
        if self.harmony_transport is not None:
            self.harmony_transport._pause_writing()

    def resume_writing(self) -> None:
        if self.harmony_transport is not None:
            self.harmony_transport._resume_writing()

    def data_received(self, data: bytes) -> None:
        try:
            messages = self.decoder.feed(data)
        except ProtocolError:
            # Malformed framing is unrecoverable mid-stream (the decoder
            # cannot resynchronize); drop the connection, exactly like
            # the threaded reader thread dying on the same input.
            self.front.count("server.async.framing_errors")
            self._asyncio_transport.close()
            return
        if not messages:
            return
        self._inbox.extend(messages)
        if len(self._inbox) > self.front.max_inbox \
                and not self._reading_paused:
            # Inbound backpressure: stop reading until the executors
            # catch up — the backlog is bounded by max_inbox plus one
            # recv buffer's worth of frames.
            self._reading_paused = True
            self._asyncio_transport.pause_reading()
        self._kick()

    # -- batched dispatch ----------------------------------------------------

    def _kick(self) -> None:
        if not self._dispatching:
            self._dispatching = True
            self.front.loop.create_task(self._drain())

    async def _drain(self) -> None:
        try:
            while self._inbox:
                batch = list(self._inbox)
                self._inbox.clear()
                if self._reading_paused:
                    self._reading_paused = False
                    self._asyncio_transport.resume_reading()
                # The whole batch crosses to a worker thread in one hop;
                # heartbeat floods amortize to one executor round trip.
                heavy = any(message.get("type") in _CONTROLLER_LOCKED_TYPES
                            for message in batch)
                pool = self.front.heavy_pool if heavy \
                    else self.front.light_pool
                self.front.note_batch(len(batch))
                await self.front.loop.run_in_executor(
                    pool, self._run_batch, batch)
        finally:
            self._dispatching = False
            if self._inbox:
                self._kick()  # raced a late data_received

    def _run_batch(self, batch: list[dict[str, Any]]) -> None:
        """Executor thread: dispatch a batch in order.

        ``HarmonySession._on_message`` already converts protocol and
        controller failures into ``error`` replies; a ``HarmonyError``
        or ``OSError`` that still escapes (a reply path failing on a
        half-dead socket) closes the connection, the same outcome as an
        exception killing a threaded reader.  Anything else is a server
        bug: ``_on_message`` has already flight-recorded it
        (``note_server_error``), so close the line and let it unwind
        loudly instead of swallowing an ``AttributeError`` as if it
        were a transport failure.
        """
        transport = self.harmony_transport
        for message in batch:
            if transport.closed:
                return
            try:
                transport.deliver(message)
            except (HarmonyError, OSError):
                self.front.count("server.async.dispatch_errors")
                transport.close()
                return
            except Exception:
                self.front.count("server.async.dispatch_errors")
                transport.close()
                raise


class AsyncHarmonyServer:
    """An asyncio front end serving a :class:`HarmonyServer` over TCP.

    Composition, not inheritance: the wrapped server keeps every
    responsibility it has under the threaded front end (sessions, leases,
    pushes, recovery mode, the scheduler); this object owns the event
    loop, the listening socket, and the executor pools.

    ::

        server = HarmonyServer(controller, lease_seconds=30.0)
        front = AsyncHarmonyServer(server)
        host, port = front.serve(port=0)
        ...
        front.stop()          # also stops the wrapped server

    ``max_write_queue`` bounds each connection's unsent frames (overflow
    is a retryable ``controller_busy``); ``max_inbox`` bounds queued
    inbound messages before the socket is paused; ``heavy_workers`` /
    ``light_workers`` size the two dispatch pools (controller-locked
    admissions vs everything else).
    """

    def __init__(self, server: HarmonyServer, *,
                 max_write_queue: int = 1024,
                 max_inbox: int = 1024,
                 heavy_workers: int = 4,
                 light_workers: int = 4,
                 loop_lag_period: float = 0.1):
        self.server = server
        self.max_write_queue = max_write_queue
        self.max_inbox = max_inbox
        #: How often the loop-lag ticker samples scheduling delay; 0
        #: disables the ticker entirely.
        self.loop_lag_period = loop_lag_period
        metrics = server.controller.metrics
        #: Always-on health distributions for the two loop-side backlogs
        #: a mean cannot show: how late the loop runs its timers, and how
        #: deep each connection's unsent-frame queue gets.
        self.loop_lag_hist = metrics.histogram(
            "server.async.loop_lag_seconds")
        self.write_depth_hist = metrics.histogram(
            "server.async.write_queue_depth", bounds=COUNT_BOUNDS)
        self.loop: asyncio.AbstractEventLoop | None = None
        self.heavy_pool = ThreadPoolExecutor(
            max_workers=heavy_workers,
            thread_name_prefix="harmony-aio-heavy")
        self.light_pool = ThreadPoolExecutor(
            max_workers=light_workers,
            thread_name_prefix="harmony-aio-light")
        self._thread: threading.Thread | None = None
        self._asyncio_server: asyncio.AbstractServer | None = None
        self._protocols: set[HarmonyWireProtocol] = set()
        self._lease_task: asyncio.Task | None = None
        self._lag_task: asyncio.Task | None = None
        self._stopped = False

    # -- telemetry ----------------------------------------------------------

    def count(self, name: str) -> None:
        controller = self.server.controller
        controller.metrics.increment(name, controller.now)

    def note_batch(self, size: int) -> None:
        """Record one dispatched batch and its size."""
        controller = self.server.controller
        controller.metrics.increment("server.async.batches",
                                     controller.now)
        controller.metrics.report("server.async.batch_messages",
                                  controller.now, float(size))

    # -- connection tracking (loop thread only) ------------------------------

    def track(self, protocol: HarmonyWireProtocol) -> None:
        self._protocols.add(protocol)

    def untrack(self, protocol: HarmonyWireProtocol) -> None:
        self._protocols.discard(protocol)

    @property
    def connection_count(self) -> int:
        return len(self._protocols)

    # -- lifecycle -----------------------------------------------------------

    def serve(self, host: str = "127.0.0.1", port: int = 0,
              ) -> tuple[str, int]:
        """Start the loop thread and listen; returns the bound address."""
        if self.loop is not None:
            raise ProtocolError("async server already serving")
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run_loop, name="harmony-aio-loop", daemon=True)
        self._thread.start()
        future = asyncio.run_coroutine_threadsafe(
            self._start(host, port), self.loop)
        return future.result(timeout=30.0)

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_forever()
        # Orderly loop retirement: cancel stragglers, then close.
        pending = asyncio.all_tasks(self.loop)
        for task in pending:
            task.cancel()
        if pending:
            self.loop.run_until_complete(
                asyncio.gather(*pending, return_exceptions=True))
        self.loop.close()

    async def _start(self, host: str, port: int) -> tuple[str, int]:
        self._asyncio_server = await self.loop.create_server(
            lambda: HarmonyWireProtocol(self), host, port)
        if self.loop_lag_period > 0:
            self._lag_task = self.loop.create_task(self._lag_ticker())
        sockname = self._asyncio_server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def _lag_ticker(self) -> None:
        """Sample how late the loop wakes from a fixed-period sleep.

        The excess over the requested period is scheduling delay — the
        single number that says "the event loop is saturated" before
        anything user-visible times out.  The sleep itself is the load:
        one timer per period, nothing else.
        """
        period = self.loop_lag_period
        while True:
            before = time.perf_counter()
            await asyncio.sleep(period)
            lag = time.perf_counter() - before - period
            self.loop_lag_hist.observe(max(0.0, lag))

    def start_lease_ticker(self, period_seconds: float | None = None,
                           ) -> None:
        """Run ``check_leases()`` periodically from the loop.

        The check itself (controller lock, eviction sweeps) runs on the
        heavy pool so a long eviction never stalls the loop; expiries
        within one period are batched into one check, like everything
        else here.  The threaded :meth:`HarmonyServer.start_lease_monitor`
        works too — this is the loop-native equivalent.
        """
        if self.server.lease_seconds is None:
            raise ProtocolError("server has no lease_seconds configured")
        if self.loop is None:
            raise ProtocolError("serve() first")
        period = period_seconds or self.server.lease_seconds / 3.0

        async def tick() -> None:
            while True:
                await asyncio.sleep(period)
                await self.loop.run_in_executor(
                    self.heavy_pool, self.server.check_leases)

        def install() -> None:
            self._lease_task = self.loop.create_task(tick())

        self.loop.call_soon_threadsafe(install)

    def stop(self) -> None:
        """Stop accepting, close connections, retire the loop, stop the
        wrapped server.  Idempotent."""
        if self._stopped:
            return
        self._stopped = True
        loop = self.loop
        if loop is not None and not loop.is_closed():
            try:
                asyncio.run_coroutine_threadsafe(
                    self._shutdown(), loop).result(timeout=10.0)
            except (TimeoutError, asyncio.CancelledError,
                    RuntimeError, OSError):
                # A wedged connection (timeout), a closing loop refusing
                # the coroutine (RuntimeError), a cancelled shutdown, or
                # a socket teardown error must not hang shutdown.  A
                # TypeError/AttributeError here is a bug — let it raise.
                pass
            loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None and self._thread.is_alive() \
                and self._thread is not threading.current_thread():
            self._thread.join(timeout=10.0)
        self._thread = None
        self.heavy_pool.shutdown(wait=True)
        self.light_pool.shutdown(wait=True)
        self.server.stop()

    async def _shutdown(self) -> None:
        if self._lag_task is not None:
            self._lag_task.cancel()
            self._lag_task = None
        if self._lease_task is not None:
            self._lease_task.cancel()
            self._lease_task = None
        if self._asyncio_server is not None:
            self._asyncio_server.close()
            await self._asyncio_server.wait_closed()
            self._asyncio_server = None
        for protocol in list(self._protocols):
            if protocol.harmony_transport is not None:
                protocol.harmony_transport._mark_lost()
            if protocol._asyncio_transport is not None:
                protocol._asyncio_transport.abort()
        self._protocols.clear()
