"""Deterministic fault injection for transports (the chaos harness).

:class:`FaultyTransport` wraps any :class:`~repro.api.transport.Transport`
and perturbs the message stream according to a :class:`FaultSchedule`:
messages can be **dropped**, **delayed** (held until
:meth:`FaultyTransport.release_delayed`), **duplicated**, or the link can
be **severed** outright (simulating a client crash or a cut cable).

Schedules are deterministic: :class:`SeededFaultSchedule` draws from a
seeded PRNG, so a chaos run replays identically for the same seed;
:class:`ScriptedFaultSchedule` spells out the action for specific message
indices.  Neither uses wall-clock time — delayed messages are released
explicitly, which keeps chaos tests single-threaded and reproducible.

The wrapper is symmetric: faults apply to outbound sends and, if the
schedule says so, to inbound deliveries, so either side of a connection
can be made lossy independently.

The wrapper is also thread-safe: over a real :class:`TcpTransport` (and
against the asyncio server front end) outbound sends run on the
application's threads while inbound deliveries arrive on the reader
thread, so the delay queue, the stats tally, and the sever transition are
guarded by a lock — a chaos schedule produces the same decisions whether
the link is in-process or a real socket.
"""

from __future__ import annotations

import enum
import random
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.api.transport import Transport
from repro.errors import TransportError
from repro.obs.flightrec import EVENT_FAULT

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.metrics.interface import MetricInterface
    from repro.obs.flightrec import FlightRecorder

__all__ = ["FaultAction", "FaultSchedule", "SeededFaultSchedule",
           "ScriptedFaultSchedule", "FaultStats", "FaultyTransport"]


class FaultAction(enum.Enum):
    """What the schedule tells the transport to do with one message."""

    DELIVER = "deliver"
    DROP = "drop"
    DELAY = "delay"
    DUPLICATE = "duplicate"
    SEVER = "sever"


class FaultSchedule:
    """Strategy interface: one decision per message that passes through.

    ``direction`` is ``"send"`` (outbound through the wrapper) or
    ``"recv"`` (inbound from the inner transport).
    """

    def decide(self, direction: str,
               message: dict[str, Any]) -> FaultAction:
        raise NotImplementedError


class SeededFaultSchedule(FaultSchedule):
    """Probabilistic faults from a seeded PRNG — reproducible run-to-run.

    Rates are per-message probabilities, tested in the order drop, delay,
    duplicate; their sum must not exceed 1.  ``sever_after`` kills the
    link once that many messages (in either direction) have been decided.
    ``directions`` restricts which sides are perturbed (default: both).
    """

    def __init__(self, seed: int, drop_rate: float = 0.0,
                 delay_rate: float = 0.0, duplicate_rate: float = 0.0,
                 sever_after: int | None = None,
                 directions: frozenset[str] = frozenset({"send", "recv"})):
        if drop_rate + delay_rate + duplicate_rate > 1.0:
            raise ValueError("fault rates must sum to at most 1")
        self.seed = seed
        self.drop_rate = drop_rate
        self.delay_rate = delay_rate
        self.duplicate_rate = duplicate_rate
        self.sever_after = sever_after
        self.directions = directions
        self._rng = random.Random(seed)
        self._decisions = 0

    def decide(self, direction: str,
               message: dict[str, Any]) -> FaultAction:
        if direction not in self.directions:
            return FaultAction.DELIVER
        self._decisions += 1
        if self.sever_after is not None \
                and self._decisions > self.sever_after:
            return FaultAction.SEVER
        # Always draw, so the random stream advances identically whatever
        # the rates — seeds stay comparable across configurations.
        draw = self._rng.random()
        if draw < self.drop_rate:
            return FaultAction.DROP
        if draw < self.drop_rate + self.delay_rate:
            return FaultAction.DELAY
        if draw < self.drop_rate + self.delay_rate + self.duplicate_rate:
            return FaultAction.DUPLICATE
        return FaultAction.DELIVER


class ScriptedFaultSchedule(FaultSchedule):
    """Explicit faults at given message indices (0-based, per direction).

    ``script`` maps ``(direction, index)`` to an action; everything else
    is delivered.  The most surgical tool for edge-case tests ("drop
    exactly the third update push").
    """

    def __init__(self, script: dict[tuple[str, int], FaultAction]):
        self.script = dict(script)
        self._counts = {"send": 0, "recv": 0}

    def decide(self, direction: str,
               message: dict[str, Any]) -> FaultAction:
        index = self._counts.get(direction, 0)
        self._counts[direction] = index + 1
        return self.script.get((direction, index), FaultAction.DELIVER)


@dataclass
class FaultStats:
    """What the wrapper actually did, for assertions and logs."""

    delivered: int = 0
    dropped: int = 0
    delayed: int = 0
    duplicated: int = 0
    severed: bool = False
    by_type: dict[str, int] = field(default_factory=dict)

    def note(self, message: dict[str, Any]) -> None:
        name = str(message.get("type", "?"))
        self.by_type[name] = self.by_type.get(name, 0) + 1

    def snapshot(self) -> dict[str, float]:
        """The tally as plain numbers (``severed`` as 0/1)."""
        return {"delivered": float(self.delivered),
                "dropped": float(self.dropped),
                "delayed": float(self.delayed),
                "duplicated": float(self.duplicated),
                "severed": 1.0 if self.severed else 0.0}

    def publish(self, metrics: "MetricInterface", time: float = 0.0,
                prefix: str = "faults.transport") -> None:
        """Report the tally into a metric interface as ``<prefix>.*``.

        Chaos tests assert drop/delay/duplicate counts through the same
        telemetry path as production counters; a :class:`FaultyTransport`
        constructed with ``metrics=`` republishes after every fault
        decision.
        """
        from repro.obs.instrument import publish_fault_stats

        publish_fault_stats(self, metrics, time=time, prefix=prefix)


class FaultyTransport(Transport):
    """A transport wrapper that injects schedule-driven faults.

    Wrap the endpoint whose *link* should misbehave::

        client_end, server_end = connected_pair()
        lossy = FaultyTransport(client_end,
                                SeededFaultSchedule(seed=7, drop_rate=0.2))
        app = HarmonyClient(lossy, retry_policy=RetryPolicy.aggressive())

    Delayed messages accumulate (in order, per direction) until
    :meth:`release_delayed` hands them on.  :meth:`sever` closes both the
    wrapper and the inner transport; subsequent sends raise
    :class:`~repro.errors.TransportError`, and in-flight inbound messages
    are discarded — exactly what a crashed peer looks like.
    """

    def __init__(self, inner: Transport, schedule: FaultSchedule,
                 metrics: "MetricInterface | None" = None,
                 metric_prefix: str = "faults.transport",
                 recorder: "FlightRecorder | None" = None,
                 stats: FaultStats | None = None):
        self.inner = inner
        self.schedule = schedule
        #: ``stats`` may be an adopted tally (see :meth:`redial`): the
        #: healed replacement keeps counting into the same cumulative
        #: series instead of silently resetting them.
        self.stats = stats if stats is not None else FaultStats()
        #: Optional metric interface: the stats tally is republished under
        #: ``metric_prefix`` after every decision, timestamped by a
        #: monotonically increasing decision counter (chaos runs have no
        #: shared clock).
        self.metrics = metrics
        self.metric_prefix = metric_prefix
        #: Optional flight recorder: every injected fault leaves a
        #: ``fault_injected`` breadcrumb, so a chaos dump interleaves the
        #: injections with the server's reactions on one timeline.
        self.recorder = recorder
        self._decision_count = 0
        self._receiver: Callable[[dict[str, Any]], None] | None = None
        self._backlog: list[dict[str, Any]] = []
        self._delayed: list[tuple[str, dict[str, Any]]] = []
        #: Serializes schedule decisions, the delay queue, the stats
        #: tally, and sever: sends (app threads) and inbound deliveries
        #: (a TCP reader thread or the asyncio loop's dispatch workers)
        #: race on real links.
        self._mutex = threading.Lock()
        inner.set_receiver(self._on_inbound)

    def _publish_stats(self) -> None:
        if self.metrics is None:
            return
        self._decision_count += 1
        self.stats.publish(self.metrics, time=float(self._decision_count),
                           prefix=self.metric_prefix)

    def _note_fault(self, direction: str, action: FaultAction,
                    message: dict[str, Any]) -> None:
        if self.recorder is not None:
            self.recorder.record(EVENT_FAULT, direction=direction,
                                 action=action.value,
                                 rpc=str(message.get("type", "?")))

    @property
    def closed(self) -> bool:
        return self.stats.severed or self.inner.closed

    # -- outbound -----------------------------------------------------------

    def set_send_timeout(self, timeout: float | None) -> None:
        self.inner.set_send_timeout(timeout)

    def send(self, message: dict[str, Any]) -> None:
        with self._mutex:
            if self.closed:
                raise TransportError("send on severed transport")
            action = self.schedule.decide("send", message)
            if action is not FaultAction.DELIVER:
                self._note_fault("send", action, message)
            if action is FaultAction.SEVER:
                self._sever_locked()
            elif action is FaultAction.DROP:
                self.stats.dropped += 1
                self.stats.note(message)
                self._publish_stats()
                return
            elif action is FaultAction.DELAY:
                self.stats.delayed += 1
                self.stats.note(message)
                self._delayed.append(("send", message))
                self._publish_stats()
                return
            else:
                if action is FaultAction.DUPLICATE:
                    self.stats.duplicated += 1
                self.stats.delivered += 1
                self._publish_stats()
        # Deliveries happen outside the lock: an in-process peer handles
        # the message inline and its reply re-enters ``_on_inbound``.
        if action is FaultAction.SEVER:
            self.inner.close()
            raise TransportError("link severed by fault schedule")
        if action is FaultAction.DUPLICATE:
            self.inner.send(message)
        self.inner.send(message)

    # -- inbound ------------------------------------------------------------

    def _on_inbound(self, message: dict[str, Any]) -> None:
        with self._mutex:
            if self.stats.severed:
                return
            action = self.schedule.decide("recv", message)
            if action is not FaultAction.DELIVER:
                self._note_fault("recv", action, message)
            if action is FaultAction.SEVER:
                self._sever_locked()
            elif action is FaultAction.DROP:
                self.stats.dropped += 1
                self.stats.note(message)
                self._publish_stats()
                return
            elif action is FaultAction.DELAY:
                self.stats.delayed += 1
                self.stats.note(message)
                self._delayed.append(("recv", message))
                self._publish_stats()
                return
            else:
                if action is FaultAction.DUPLICATE:
                    self.stats.duplicated += 1
                self.stats.delivered += 1
                self._publish_stats()
        if action is FaultAction.SEVER:
            self.inner.close()
            return
        if action is FaultAction.DUPLICATE:
            self._deliver(message)
        self._deliver(message)

    def _deliver(self, message: dict[str, Any]) -> None:
        if self._receiver is None:
            self._backlog.append(message)
        else:
            self._receiver(message)

    def set_receiver(self,
                     receiver: Callable[[dict[str, Any]], None]) -> None:
        self._receiver = receiver
        backlog, self._backlog = self._backlog, []
        for message in backlog:
            receiver(message)

    # -- fault controls ------------------------------------------------------

    def release_delayed(self) -> int:
        """Deliver every held message in arrival order; returns the count.

        Messages held at sever time stay lost, like any in-flight frame.
        """
        with self._mutex:
            if self.stats.severed:
                self._delayed.clear()
                return 0
            held, self._delayed = self._delayed, []
        for direction, message in held:
            if direction == "send":
                self.inner.send(message)
            else:
                self._deliver(message)
        return len(held)

    def pending_delayed(self) -> int:
        with self._mutex:
            return len(self._delayed)

    def _sever_locked(self) -> None:
        """Mark the link dead (caller holds ``_mutex`` and closes inner)."""
        self.stats.severed = True
        self._delayed.clear()
        self._publish_stats()

    def sever(self) -> None:
        """Cut the link for good (simulates a crash mid-session)."""
        with self._mutex:
            if self.stats.severed:
                return
            self._sever_locked()
        self.inner.close()

    def close(self) -> None:
        """A *clean* close (not counted as a fault)."""
        self.inner.close()

    # -- reconnecting --------------------------------------------------------

    @property
    def can_redial(self) -> bool:
        """Whether the wrapped endpoint knows the address it dialed."""
        return bool(getattr(self.inner, "can_redial", False))

    def redial(self) -> "FaultyTransport":
        """A *healed* replacement connection to the same server.

        Composes with :class:`~repro.api.client.HarmonyClient`'s
        transparent reconnect: the fresh connection comes back wrapped in
        a new :class:`FaultyTransport` whose schedule never faults — a
        reconnect heals the link rather than inheriting the old schedule
        (a schedule with ``sever_after`` would otherwise kill the new
        link on its first frame) — but the wrapper *keeps* this one's
        stats tally, metric hook, and flight recorder, so the cumulative
        ``faults.transport.*`` series survive the heal instead of
        silently freezing at their pre-reconnect values.  Re-assign
        ``.schedule`` on the result to keep perturbing the replacement.
        """
        fresh = self.inner.redial()
        # The replacement link is alive: clear the sever marker before
        # the healed wrapper adopts the shared tally.
        self.stats.severed = False
        healed = FaultyTransport(fresh, ScriptedFaultSchedule({}),
                                 metrics=self.metrics,
                                 metric_prefix=self.metric_prefix,
                                 recorder=self.recorder,
                                 stats=self.stats)
        # Metric timestamps are the running decision count; the healed
        # wrapper continues the timeline (a reset would rewind the
        # published series, which time-series append rejects).
        healed._decision_count = self._decision_count
        return healed
