"""Harmony variables: the knobs the controller turns inside applications.

From the paper's Section 5: applications declare variables with
``harmony_add_variable``; "New values for Harmony variables are buffered
until a flushPendingVars() call is made.  This call sends all pending
changes to the application processes.  Inside the application, an I/O event
handler function is called when the Harmony process sends variable updates.
The updates are then applied to the Harmony variables.  The application
process must periodically check the values of these variables and take
appropriate action."

Client side, :class:`HarmonyVariable` holds the live value the application
polls.  Server side, :class:`PendingVariableBuffer` accumulates per-client
changes until flushed.
"""

from __future__ import annotations

import enum
from typing import Any, Callable

from repro.errors import ProtocolError

__all__ = ["VariableType", "HarmonyVariable", "VariableTable",
           "PendingVariableBuffer"]


class VariableType(enum.Enum):
    """Declared type of a Harmony variable."""

    INT = "int"
    FLOAT = "float"
    STRING = "string"

    def coerce(self, value: Any) -> Any:
        """Convert ``value`` to this type, raising on mismatch."""
        try:
            if self is VariableType.INT:
                return int(value)
            if self is VariableType.FLOAT:
                return float(value)
            return str(value)
        except (TypeError, ValueError) as exc:
            raise ProtocolError(
                f"cannot coerce {value!r} to {self.value}") from exc


class HarmonyVariable:
    """One application-side tunable value.

    The paper's C API returns a pointer the application dereferences; the
    Python analogue is this object's :attr:`value`.  ``changed`` is set when
    the server updates the variable and cleared when the application calls
    :meth:`consume` — the polling pattern for phase-boundary adaptation.
    """

    def __init__(self, name: str, default: Any,
                 var_type: VariableType = VariableType.FLOAT):
        self.name = name
        self.var_type = var_type
        self._value = var_type.coerce(default)
        self._changed = False

    @property
    def value(self) -> Any:
        return self._value

    @property
    def changed(self) -> bool:
        """True when an update arrived since the last :meth:`consume`."""
        return self._changed

    def consume(self) -> Any:
        """Read the value and acknowledge the change flag."""
        self._changed = False
        return self._value

    def apply_update(self, value: Any) -> None:
        """Server-pushed assignment (applications should not call this)."""
        self._value = self.var_type.coerce(value)
        self._changed = True

    def __repr__(self) -> str:
        return (f"HarmonyVariable({self.name!r}, {self._value!r}, "
                f"{self.var_type.value})")


class VariableTable:
    """The client library's registry of declared variables."""

    def __init__(self) -> None:
        self._variables: dict[str, HarmonyVariable] = {}
        self._on_update: list[Callable[[dict[str, Any]], None]] = []

    def declare(self, name: str, default: Any,
                var_type: VariableType = VariableType.FLOAT,
                ) -> HarmonyVariable:
        if name in self._variables:
            raise ProtocolError(f"variable {name!r} already declared")
        variable = HarmonyVariable(name, default, var_type)
        self._variables[name] = variable
        return variable

    def get(self, name: str) -> HarmonyVariable:
        if name not in self._variables:
            raise ProtocolError(f"variable {name!r} not declared")
        return self._variables[name]

    def exists(self, name: str) -> bool:
        return name in self._variables

    def names(self) -> list[str]:
        return sorted(self._variables)

    def apply_updates(self, updates: dict[str, Any]) -> list[str]:
        """Apply a server batch; returns the names actually changed.

        Unknown names are ignored (the server may push resource variables
        the application chose not to declare) — but observers still see the
        full batch.
        """
        applied: list[str] = []
        for name, value in updates.items():
            variable = self._variables.get(name)
            if variable is not None:
                variable.apply_update(value)
                applied.append(name)
        for observer in list(self._on_update):
            observer(dict(updates))
        return applied

    def on_update(self, observer: Callable[[dict[str, Any]], None],
                  ) -> Callable[[], None]:
        """Register the application's I/O-event-handler analogue."""
        self._on_update.append(observer)

        def unsubscribe() -> None:
            if observer in self._on_update:
                self._on_update.remove(observer)

        return unsubscribe


class PendingVariableBuffer:
    """Server-side buffer of un-flushed variable changes, per client.

    Matches the paper's ``flushPendingVars()`` contract: successive
    ``stage`` calls for the same variable coalesce to the newest value;
    :meth:`flush` drains the buffer in one update message per client.

    ``max_per_client`` (optional) bounds each client's staged batch: a
    client that stays unreachable for many reconfiguration waves cannot
    grow its held batch without limit.  When staging a *new* name would
    exceed the cap, the oldest staged names are evicted (re-staging an
    existing name refreshes both its value and its recency, so what is
    dropped really is the stalest entry) and ``on_evict(client_id,
    dropped)`` reports how many entries were lost.

    >>> drops = []
    >>> buffer = PendingVariableBuffer(max_per_client=2,
    ...                                on_evict=lambda c, n: drops.append((c, n)))
    >>> buffer.stage("app", "a", 1)
    >>> buffer.stage("app", "b", 2)
    >>> buffer.stage("app", "a", 3)   # refresh: "b" is now oldest
    >>> buffer.stage("app", "c", 4)   # cap hit: evicts "b"
    >>> sorted(buffer.pending_for("app"))
    ['a', 'c']
    >>> drops
    [('app', 1)]
    """

    def __init__(self, max_per_client: int | None = None,
                 on_evict: Callable[[str, int], None] | None = None):
        if max_per_client is not None and max_per_client < 1:
            raise ProtocolError("max_per_client must be >= 1")
        self.max_per_client = max_per_client
        self.on_evict = on_evict
        #: Total entries ever evicted by the per-client cap.
        self.evicted_total = 0
        self._pending: dict[str, dict[str, Any]] = {}
        #: Highest generation staged per client (delivery-order stamps:
        #: the server drops a batch older than what the client already
        #: received rather than applying updates out of order).
        self._generations: dict[str, int] = {}

    def stage(self, client_id: str, name: str, value: Any,
              generation: int = 0) -> None:
        held = self._pending.setdefault(client_id, {})
        # Re-staging refreshes recency: dict insertion order is the
        # eviction order, so move the name to the newest end.
        held.pop(name, None)
        held[name] = value
        self._enforce_cap(client_id, held)
        if generation > self._generations.get(client_id, 0):
            self._generations[client_id] = generation

    def _enforce_cap(self, client_id: str, held: dict[str, Any]) -> None:
        if self.max_per_client is None or len(held) <= self.max_per_client:
            return
        dropped = 0
        while len(held) > self.max_per_client:
            oldest = next(iter(held))
            del held[oldest]
            dropped += 1
        self.evicted_total += dropped
        if self.on_evict is not None:
            self.on_evict(client_id, dropped)

    def stage_many(self, client_id: str, updates: dict[str, Any],
                   generation: int = 0) -> None:
        for name, value in updates.items():
            self.stage(client_id, name, value, generation=generation)

    def pending_for(self, client_id: str) -> dict[str, Any]:
        return dict(self._pending.get(client_id, {}))

    def generation_for(self, client_id: str) -> int:
        """The newest generation staged into this client's batch."""
        return self._generations.get(client_id, 0)

    def flush(self, send: Callable[[str, dict[str, Any]], None],
              ready: Callable[[str], bool] | None = None,
              with_generation: bool = False) -> int:
        """Send every client its coalesced batch; returns batches sent.

        ``ready`` (optional) gates delivery per client: a client that is
        not ready — say, disconnected but within its lease — keeps its
        batch staged, still coalescing with later changes, until a flush
        finds it ready again or :meth:`discard` drops it.  This is what
        makes updates produced during a disconnect window survive until
        the client rejoins.

        ``with_generation`` invokes ``send(client_id, updates,
        generation)`` with the batch's newest staged generation, for
        callers that order deliveries.
        """
        pending, self._pending = self._pending, {}
        generations, self._generations = self._generations, {}
        sent = 0
        for client_id, updates in pending.items():
            if not updates:
                continue
            generation = generations.get(client_id, 0)
            if ready is not None and not ready(client_id):
                # Re-stage under anything newly staged by `send` callbacks.
                held = self._pending.setdefault(client_id, {})
                for name, value in updates.items():
                    held.setdefault(name, value)
                self._enforce_cap(client_id, held)
                if generation > self._generations.get(client_id, 0):
                    self._generations[client_id] = generation
                continue
            if with_generation:
                send(client_id, updates, generation)
            else:
                send(client_id, updates)
            sent += 1
        return sent

    def discard(self, client_id: str) -> None:
        self._pending.pop(client_id, None)
        self._generations.pop(client_id, None)
