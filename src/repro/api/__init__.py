"""The application <-> Harmony interface (paper Figures 5 and 6).

Client library (:mod:`repro.api.client`), server (:mod:`repro.api.server`),
Harmony variables with buffered flush (:mod:`repro.api.variables`), and two
transports — in-process for simulated experiments, TCP for the real
prototype architecture.
"""

from repro.api.aio import (
    AsyncHarmonyServer,
    AsyncioTransport,
    HarmonyWireProtocol,
)
from repro.api.client import (
    HarmonyClient,
    harmony_add_variable,
    harmony_bundle_setup,
    harmony_end,
    harmony_startup,
    harmony_wait_for_update,
    set_default_client,
)
from repro.api.faults import (
    FaultAction,
    FaultSchedule,
    FaultStats,
    FaultyTransport,
    ScriptedFaultSchedule,
    SeededFaultSchedule,
)
from repro.api.protocol import (
    CONTROLLER_MOVED,
    HEARTBEAT,
    HEARTBEAT_ACK,
    LEASE_EXPIRED,
    REPL_ACK,
    REPL_HELLO,
    REPL_RECORDS,
    REPL_SNAPSHOT,
    FrameDecoder,
    encode_message,
    make_message,
)
from repro.api.retry import RetryPolicy
from repro.api.server import DEFAULT_PORT, HarmonyServer, HarmonySession
from repro.api.transport import (
    InProcessTransport,
    TcpTransport,
    Transport,
    connected_pair,
)
from repro.api.variables import (
    HarmonyVariable,
    PendingVariableBuffer,
    VariableTable,
    VariableType,
)

__all__ = [
    "HarmonyClient", "set_default_client",
    "harmony_startup", "harmony_bundle_setup", "harmony_add_variable",
    "harmony_wait_for_update", "harmony_end",
    "HarmonyServer", "HarmonySession", "DEFAULT_PORT",
    "AsyncHarmonyServer", "AsyncioTransport", "HarmonyWireProtocol",
    "Transport", "InProcessTransport", "TcpTransport", "connected_pair",
    "HarmonyVariable", "VariableTable", "VariableType",
    "PendingVariableBuffer",
    "RetryPolicy",
    "FaultAction", "FaultSchedule", "SeededFaultSchedule",
    "ScriptedFaultSchedule", "FaultStats", "FaultyTransport",
    "encode_message", "FrameDecoder", "make_message",
    "HEARTBEAT", "HEARTBEAT_ACK", "LEASE_EXPIRED",
    "CONTROLLER_MOVED", "REPL_HELLO", "REPL_ACK", "REPL_RECORDS",
    "REPL_SNAPSHOT",
]
