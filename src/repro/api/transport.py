"""Transports carrying protocol messages between client library and server.

Two implementations with identical semantics:

* :class:`InProcessTransport` — a synchronously-dispatched pair of message
  endpoints.  Used by the simulated experiments (everything runs in one
  thread on the simulated clock) and by most tests.
* :class:`TcpTransport` — a real socket with a reader thread, speaking the
  length-prefixed JSON framing of :mod:`repro.api.protocol`.  This is the
  paper's prototype architecture: the Harmony process listens on a
  well-known port; inside the application an I/O event handler applies
  variable updates as they arrive.

The framing codec itself (``encode_message`` + :class:`FrameDecoder`)
lives in :mod:`repro.api.protocol` and is shared with the server's asyncio
front end (:mod:`repro.api.aio`), so the bytes on the wire are identical
whichever side is threaded — ``docs/wire-protocol.md`` is the normative
spec.  A :class:`TcpTransport` client talks to either server unchanged.
"""

from __future__ import annotations

import errno
import socket
import struct
import threading
from typing import Any, Callable

from repro.api.protocol import FrameDecoder, encode_message
from repro.errors import ProtocolError, TransportError

__all__ = ["Transport", "InProcessTransport", "TcpTransport",
           "connected_pair"]

Receiver = Callable[[dict[str, Any]], None]


class Transport:
    """Interface: send messages, receive via callback, close."""

    def send(self, message: dict[str, Any]) -> None:
        raise NotImplementedError

    def set_send_timeout(self, timeout: float | None) -> None:
        """Bound how long :meth:`send` may block (best effort).

        The default is a no-op: in-process delivery cannot stall, and
        the asyncio endpoint is already non-blocking behind a bounded
        write queue.  :class:`TcpTransport` implements a real bound so
        one peer that stopped reading cannot wedge the sending thread
        (the replication primary arms this on every standby link).
        """

    def set_receiver(self, receiver: Receiver) -> None:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    @property
    def closed(self) -> bool:
        raise NotImplementedError


class InProcessTransport(Transport):
    """One endpoint of an in-memory connection.

    Messages sent before the peer installs a receiver are queued and
    delivered on installation, so connection setup has no ordering hazard.
    Delivery is synchronous: ``send`` runs the peer's receiver inline, which
    matches the single-threaded discrete-event experiments.
    """

    def __init__(self) -> None:
        self._peer: "InProcessTransport | None" = None
        self._receiver: Receiver | None = None
        self._backlog: list[dict[str, Any]] = []
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def send(self, message: dict[str, Any]) -> None:
        if self._closed:
            raise TransportError("send on closed transport")
        if self._peer is None:
            raise TransportError("transport has no peer")
        # Round-trip through the codec so in-process runs exercise the same
        # serialization constraints as TCP runs.
        encode_message(message)
        self._peer._deliver(message)

    def _deliver(self, message: dict[str, Any]) -> None:
        if self._closed:
            return
        if self._receiver is None:
            self._backlog.append(message)
        else:
            self._receiver(message)

    def set_receiver(self, receiver: Receiver) -> None:
        self._receiver = receiver
        backlog, self._backlog = self._backlog, []
        for message in backlog:
            receiver(message)

    def close(self) -> None:
        self._closed = True


def connected_pair() -> tuple[InProcessTransport, InProcessTransport]:
    """A connected (client_end, server_end) in-process transport pair."""
    client_end = InProcessTransport()
    server_end = InProcessTransport()
    client_end._peer = server_end
    server_end._peer = client_end
    return client_end, server_end


class TcpTransport(Transport):
    """A socket endpoint with a background reader thread."""

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._decoder = FrameDecoder()
        self._receiver: Receiver | None = None
        self._backlog: list[dict[str, Any]] = []
        self._send_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._send_timeout: float | None = None
        self._closed = False
        self._address: tuple[str, int] | None = None
        self._connect_timeout: float | None = None
        self._reader = threading.Thread(target=self._read_loop, daemon=True)
        self._reader.start()

    @classmethod
    def connect(cls, host: str, port: int,
                timeout: float | None = 10.0) -> "TcpTransport":
        try:
            sock = socket.create_connection((host, port), timeout=timeout)
            sock.settimeout(None)
        except OSError as exc:
            raise TransportError(
                f"cannot connect to {host}:{port}: {exc}") from exc
        transport = cls(sock)
        transport._address = (host, port)
        transport._connect_timeout = timeout
        return transport

    @property
    def can_redial(self) -> bool:
        """Whether this endpoint knows the address it was dialed to."""
        return self._address is not None

    def redial(self) -> "TcpTransport":
        """A fresh connection to the same server (the reconnect path).

        The old endpoint is closed first; the caller re-installs its
        receiver on the returned transport and replays its session (see
        :meth:`HarmonyClient.rejoin`).  Only endpoints created by
        :meth:`connect` know their address; accepted server-side sockets
        raise :class:`~repro.errors.TransportError`.
        """
        if self._address is None:
            raise TransportError(
                "cannot redial a transport that was not dialed")
        self.close()
        host, port = self._address
        return TcpTransport.connect(host, port,
                                    timeout=self._connect_timeout)

    @property
    def closed(self) -> bool:
        return self._closed

    def set_send_timeout(self, timeout: float | None) -> None:
        """Bound blocking sends with the kernel ``SO_SNDTIMEO`` option.

        A peer that stopped reading eventually fills both socket
        buffers and ``sendall`` would block the sending thread
        indefinitely.  ``SO_SNDTIMEO`` makes the kernel abort the
        syscall with ``EAGAIN`` once no progress was possible for
        ``timeout`` seconds; only the send direction is affected, so
        the reader thread's ``recv`` keeps blocking as before.
        """
        self._send_timeout = timeout
        value = 0.0 if timeout is None else max(timeout, 1e-3)
        sec = int(value)
        usec = int(round((value - sec) * 1_000_000))
        try:
            self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDTIMEO,
                                  struct.pack("ll", sec, usec))
        except OSError as exc:
            raise TransportError(
                f"cannot arm send timeout: {exc}") from exc

    def send(self, message: dict[str, Any]) -> None:
        if self._closed:
            raise TransportError("send on closed transport")
        data = encode_message(message)
        try:
            with self._send_lock:
                self._sock.sendall(data)
        except (OSError, ValueError) as exc:
            self.close()
            if (isinstance(exc, OSError)
                    and exc.errno in (errno.EAGAIN, errno.EWOULDBLOCK)
                    and self._send_timeout is not None):
                raise TransportError(
                    f"send timed out after {self._send_timeout:.1f}s "
                    f"(peer not reading)") from exc
            raise TransportError(f"send failed: {exc}") from exc

    def set_receiver(self, receiver: Receiver) -> None:
        with self._state_lock:
            self._receiver = receiver
            backlog, self._backlog = self._backlog, []
        for message in backlog:
            receiver(message)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    def _read_loop(self) -> None:
        try:
            while not self._closed:
                data = self._sock.recv(65536)
                if not data:
                    break
                for message in self._decoder.feed(data):
                    self._dispatch(message)
        except (OSError, TransportError, ProtocolError):
            # A dead socket or a garbled frame ends the connection; a
            # receiver callback's own bug must NOT be eaten here — it
            # propagates and kills the reader thread loudly.
            pass
        finally:
            self._closed = True

    def _dispatch(self, message: dict[str, Any]) -> None:
        with self._state_lock:
            receiver = self._receiver
            if receiver is None:
                self._backlog.append(message)
                return
        receiver(message)
