"""Parser for the Harmony RSL surface syntax.

Builds nested :class:`RslList` structures out of the token stream produced by
:mod:`repro.rsl.tokens`.  The result mirrors TCL semantics: a *script* is a
sequence of *commands*, and each command is a flat sequence of *words*, where
a word is either a string or a nested list (from ``{ ... }``).

The parser is purely syntactic.  Interpreting a command as, say, a
``harmonyBundle`` declaration is the job of :mod:`repro.rsl.builder`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

from repro.errors import RslSyntaxError
from repro.rsl.tokens import Token, TokenType, tokenize

__all__ = ["RslWord", "RslList", "RslNode", "parse_script", "parse_list",
           "format_node"]


@dataclass(frozen=True)
class RslWord:
    """A leaf word in an RSL structure (always stored as its source string)."""

    text: str
    line: int = 0
    column: int = 0

    def __str__(self) -> str:
        return self.text


@dataclass(frozen=True)
class RslList:
    """A ``{ ... }``-delimited (or top-level command) sequence of nodes."""

    items: tuple["RslNode", ...] = field(default_factory=tuple)
    line: int = 0
    column: int = 0

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator["RslNode"]:
        return iter(self.items)

    def __getitem__(self, index: int) -> "RslNode":
        return self.items[index]

    def head_word(self) -> str | None:
        """Return the first item's text if it is a word, else ``None``."""
        if self.items and isinstance(self.items[0], RslWord):
            return self.items[0].text
        return None


RslNode = Union[RslWord, RslList]


class _TokenCursor:
    """Single-token lookahead over the token stream."""

    def __init__(self, tokens: Iterator[Token]):
        self._tokens = tokens
        self._current = next(tokens)

    @property
    def current(self) -> Token:
        return self._current

    def advance(self) -> Token:
        token = self._current
        if token.type is not TokenType.EOF:
            self._current = next(self._tokens)
        return token


def parse_script(text: str) -> list[RslList]:
    """Parse an RSL script into a list of commands.

    Each command is an :class:`RslList` whose items are the command's words.
    Empty commands (blank lines, comment-only lines) are dropped.

    >>> cmds = parse_script("harmonyNode alpha {speed 1.5}")
    >>> cmds[0].head_word()
    'harmonyNode'
    """
    cursor = _TokenCursor(tokenize(text))
    commands: list[RslList] = []
    while cursor.current.type is not TokenType.EOF:
        if cursor.current.type is TokenType.COMMAND_END:
            cursor.advance()
            continue
        commands.append(_parse_command(cursor))
    return commands


def parse_list(text: str) -> RslList:
    """Parse ``text`` as a single list of words (no command separators).

    Useful for parsing the *body* of a tag whose value is itself RSL, e.g. a
    bundle definition string handed to ``harmony_bundle_setup``.
    """
    commands = parse_script(text)
    if not commands:
        return RslList()
    if len(commands) == 1:
        return commands[0]
    raise RslSyntaxError(
        f"expected a single RSL list, found {len(commands)} commands",
        commands[1].line, commands[1].column)


def _parse_command(cursor: _TokenCursor) -> RslList:
    start = cursor.current
    items: list[RslNode] = []
    while True:
        token = cursor.current
        if token.type in (TokenType.EOF, TokenType.COMMAND_END):
            if token.type is TokenType.COMMAND_END:
                cursor.advance()
            break
        if token.type is TokenType.CLOSE_BRACE:
            raise RslSyntaxError("unmatched '}'", token.line, token.column)
        items.append(_parse_node(cursor))
    return RslList(tuple(items), start.line, start.column)


def _parse_node(cursor: _TokenCursor) -> RslNode:
    token = cursor.current
    if token.type is TokenType.WORD:
        cursor.advance()
        return RslWord(token.value, token.line, token.column)
    if token.type is TokenType.OPEN_BRACE:
        return _parse_braced(cursor)
    raise RslSyntaxError(
        f"unexpected token {token.value!r}", token.line, token.column)


def _parse_braced(cursor: _TokenCursor) -> RslList:
    open_token = cursor.advance()  # consume '{'
    items: list[RslNode] = []
    while True:
        token = cursor.current
        if token.type is TokenType.EOF:
            raise RslSyntaxError(
                "unterminated '{'", open_token.line, open_token.column)
        if token.type is TokenType.CLOSE_BRACE:
            cursor.advance()
            break
        if token.type is TokenType.COMMAND_END:
            # Newlines inside braces are just whitespace for our list subset.
            cursor.advance()
            continue
        items.append(_parse_node(cursor))
    return RslList(tuple(items), open_token.line, open_token.column)


def format_node(node: RslNode) -> str:
    """Render a parsed node back to RSL text.

    Round-trips through :func:`parse_list`: formatting then reparsing yields
    an equal structure (source positions aside).
    """
    if isinstance(node, RslWord):
        return _format_word(node.text)
    return "{" + " ".join(format_node(item) for item in node.items) + "}"


def _format_word(text: str) -> str:
    if text == "":
        return '""'
    if any(ch in text for ch in " \t\n;{}\""):
        escaped = text.replace("\\", "\\\\").replace('"', '\\"')
        escaped = escaped.replace("\n", "\\n").replace("\t", "\\t")
        return f'"{escaped}"'
    return text
