"""Static diagnostics for Harmony RSL bundles.

The builder rejects malformed RSL outright; this module goes further and
flags bundles that are *valid but suspicious* — the kinds of specification
mistakes that make the controller silently choose badly:

* ``unknown-variable``      — an expression references a name that is
  neither a declared variable nor a resource attribute of the option;
* ``unused-variable``       — a declared ``variable`` that no expression
  reads (its domain multiplies the search space for nothing);
* ``duplicate-option-shape``— two options whose resource demands are
  identical in every configuration (the controller can never distinguish
  them);
* ``zero-resources``        — an option demanding no CPU seconds anywhere
  (predicted response 0: it will always win);
* ``orphan-node``           — a declared node with no CPU, no memory, and
  no link touching it;
* ``non-positive-domain``   — a variable whose domain includes values ≤ 0;
* ``replicate-variable-without-domain`` — ``replicate`` references a name
  that is not a declared variable (it will fail at instantiation time);
* ``performance-domain-mismatch`` — the explicit performance curve does
  not cover the variable domain it is parameterized on (the controller
  will extrapolate).

Use :func:`lint_bundle` to get :class:`Diagnostic` records; each carries a
stable ``code`` for filtering and a human-readable message.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RslError
from repro.rsl.model import Bundle, TuningOption

__all__ = ["Diagnostic", "lint_bundle", "LINT_CODES"]

LINT_CODES = frozenset({
    "unknown-variable",
    "unused-variable",
    "duplicate-option-shape",
    "zero-resources",
    "orphan-node",
    "non-positive-domain",
    "replicate-variable-without-domain",
    "performance-domain-mismatch",
})


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding."""

    code: str
    option: str | None
    message: str

    def __str__(self) -> str:
        scope = f"option {self.option!r}: " if self.option else ""
        return f"[{self.code}] {scope}{self.message}"


def lint_bundle(bundle: Bundle) -> list[Diagnostic]:
    """Run every check against ``bundle``; returns findings in a stable
    order (option order, then check order)."""
    findings: list[Diagnostic] = []
    for option in bundle.options:
        findings.extend(_lint_option(option))
    findings.extend(_lint_duplicate_shapes(bundle))
    return findings


def _option_vocabulary(option: TuningOption) -> set[str]:
    """Names an expression may legally reference inside this option."""
    names = {spec.name for spec in option.variables}
    for node in option.nodes:
        names.add(f"{node.name}.memory")
        names.add(f"{node.name}.seconds")
    return names


def _referenced_names(option: TuningOption) -> set[str]:
    names: set[str] = set()
    for node in option.nodes:
        for quantity in (node.seconds, node.memory, node.replicate):
            if quantity is not None:
                names |= quantity.free_variables()
    for link in option.links:
        names |= link.megabytes.free_variables()
    if option.communication is not None:
        names |= option.communication.megabytes.free_variables()
    if option.friction is not None:
        names |= option.friction.seconds.free_variables()
    return names


def _lint_option(option: TuningOption) -> list[Diagnostic]:
    findings: list[Diagnostic] = []
    vocabulary = _option_vocabulary(option)
    referenced = _referenced_names(option)

    for name in sorted(referenced - vocabulary):
        findings.append(Diagnostic(
            "unknown-variable", option.name,
            f"expression references {name!r}, which is neither a declared "
            f"variable nor a <node>.memory/<node>.seconds attribute"))

    variable_names = {spec.name for spec in option.variables}
    for name in sorted(variable_names - referenced):
        findings.append(Diagnostic(
            "unused-variable", option.name,
            f"variable {name!r} is declared but no expression reads it; "
            f"its {len(option.variable_named(name).values)}-value domain "
            f"only inflates the search space"))

    for spec in option.variables:
        bad = [value for value in spec.values if value <= 0]
        if bad:
            findings.append(Diagnostic(
                "non-positive-domain", option.name,
                f"variable {spec.name!r} domain contains non-positive "
                f"values {bad}"))

    for node in option.nodes:
        replicate_refs = node.replicate.free_variables()
        for name in sorted(replicate_refs - variable_names):
            findings.append(Diagnostic(
                "replicate-variable-without-domain", option.name,
                f"node {node.name!r} replicates by {name!r}, which is not "
                f"a declared variable of this option"))

    linked = {endpoint for link in option.links
              for endpoint in link.endpoints()}
    for node in option.nodes:
        if node.seconds is None and node.memory is None \
                and node.name not in linked:
            findings.append(Diagnostic(
                "orphan-node", option.name,
                f"node {node.name!r} demands no CPU, no memory, and no "
                f"link touches it"))

    if _total_seconds_always_zero(option):
        findings.append(Diagnostic(
            "zero-resources", option.name,
            "no configuration of this option demands any CPU seconds; "
            "the default model will predict it infinitely fast"))

    if option.performance is not None and option.performance.points \
            and option.performance.parameter in variable_names:
        spec = option.variable_named(option.performance.parameter)
        xs = [point.x for point in option.performance.points]
        uncovered = [value for value in spec.values
                     if not (min(xs) <= value <= max(xs))]
        if uncovered:
            findings.append(Diagnostic(
                "performance-domain-mismatch", option.name,
                f"performance curve spans [{min(xs):g}, {max(xs):g}] but "
                f"variable {spec.name!r} also takes {uncovered}; those "
                f"configurations will be extrapolated"))

    return findings


def _instantiate(option, assignment):
    # Imported lazily: repro.allocation depends on repro.rsl, so a
    # top-level import here would be circular.
    from repro.allocation.instantiate import instantiate_option
    return instantiate_option(option, assignment)


def _total_seconds_always_zero(option: TuningOption) -> bool:
    try:
        for assignment in option.variable_assignments():
            demands = _instantiate(option, assignment)
            if demands.total_cpu_seconds() > 0:
                return False
    except RslError:
        return False  # other checks cover unresolvable expressions
    return True


def _lint_duplicate_shapes(bundle: Bundle) -> list[Diagnostic]:
    findings: list[Diagnostic] = []
    shapes: dict[tuple, str] = {}
    for option in bundle.options:
        try:
            shape = tuple(sorted(
                (demand.local_name, demand.hostname_pattern,
                 demand.seconds, demand.memory_min_mb)
                for assignment in option.variable_assignments()
                for demand in _instantiate(option, assignment).nodes))
        except RslError:
            continue
        if shape in shapes:
            findings.append(Diagnostic(
                "duplicate-option-shape", option.name,
                f"identical resource demands to option "
                f"{shapes[shape]!r}; the controller cannot distinguish "
                f"them"))
        else:
            shapes[shape] = option.name
    return findings
