"""Serialize model objects back to RSL text.

Round-trip property: ``build_bundle(unparse_bundle(b))`` equals ``b`` for
every bundle the builder can produce.  The property-based tests in
``tests/rsl/test_roundtrip.py`` exercise exactly this.
"""

from __future__ import annotations

from repro.rsl.model import (
    Bundle,
    NodeAdvertisement,
    NodeRequirement,
    PerformanceSpec,
    Quantity,
    TuningOption,
)

__all__ = ["unparse_bundle", "unparse_option", "unparse_advertisement",
           "pretty_bundle"]


def unparse_bundle(bundle: Bundle) -> str:
    """Render a bundle as a single-line ``harmonyBundle`` command."""
    app = bundle.app_name
    if bundle.declared_instance is not None:
        app = f"{app}:{bundle.declared_instance}"
    options = " ".join(unparse_option(option) for option in bundle.options)
    return f"harmonyBundle {app} {bundle.bundle_name} {{{options}}}"


def pretty_bundle(bundle: Bundle, indent: int = 4) -> str:
    """Render a bundle in the paper's multi-line layout.

    One option per block, one tag per line — the canonical formatting for
    ``harmony-repro format``.  Round-trips through the builder exactly like
    :func:`unparse_bundle`.
    """
    pad = " " * indent
    app = bundle.app_name
    if bundle.declared_instance is not None:
        app = f"{app}:{bundle.declared_instance}"
    lines = [f"harmonyBundle {app} {bundle.bundle_name} {{"]
    for option in bundle.options:
        option_text = unparse_option(option)
        # Split "{name {tag ...} {tag ...}}" into one tag per line.
        body = option_text[1:-1]
        name, _, rest = body.partition(" ")
        lines.append(f"{pad}{{{name}")
        for tag_text in _split_top_level(rest):
            lines.append(f"{pad * 2}{tag_text}")
        lines[-1] += "}"
    lines[-1] += "}"
    return "\n".join(lines) + "\n"


def _split_top_level(text: str) -> list[str]:
    """Split a brace-list body into its top-level ``{...}`` items."""
    items: list[str] = []
    depth = 0
    start = None
    for index, char in enumerate(text):
        if char == "{":
            if depth == 0:
                start = index
            depth += 1
        elif char == "}":
            depth -= 1
            if depth == 0 and start is not None:
                items.append(text[start:index + 1])
                start = None
    return items


def unparse_option(option: TuningOption) -> str:
    parts: list[str] = [option.name]
    for variable in option.variables:
        values = " ".join(_num(v) for v in variable.values)
        text = f"{{variable {variable.name} {{{values}}}"
        if variable.default is not None:
            text += f" {_num(variable.default)}"
        parts.append(text + "}")
    for node in option.nodes:
        parts.append(_unparse_node(node))
    for link in option.links:
        parts.append(
            f"{{link {link.endpoint_a} {link.endpoint_b} "
            f"{_quantity(link.megabytes)}}}")
    if option.communication is not None:
        parts.append(
            f"{{communication {_quantity(option.communication.megabytes)}}}")
    if option.performance is not None:
        parts.append(_unparse_performance(option.performance))
    if option.granularity is not None:
        parts.append(
            f"{{granularity {_num(option.granularity.min_interval_seconds)}}}")
    if option.friction is not None:
        parts.append(f"{{friction {_quantity(option.friction.seconds)}}}")
    return "{" + " ".join(parts) + "}"


def unparse_advertisement(advert: NodeAdvertisement) -> str:
    parts = [f"harmonyNode {advert.hostname}",
             f"{{speed {_num(advert.speed)}}}"]
    if advert.memory != float("inf"):
        parts.append(f"{{memory {_num(advert.memory)}}}")
    if advert.os is not None:
        parts.append(f"{{os {advert.os}}}")
    for key in sorted(advert.attributes):
        parts.append(f"{{{key} {advert.attributes[key]}}}")
    return " ".join(parts)


def _unparse_node(node: NodeRequirement) -> str:
    parts = [f"node {node.name}"]
    if node.hostname != "*":
        parts.append(f"{{hostname {node.hostname}}}")
    if node.os is not None:
        parts.append(f"{{os {node.os}}}")
    if node.seconds is not None:
        parts.append(f"{{seconds {_quantity(node.seconds)}}}")
    if node.memory is not None:
        parts.append(f"{{memory {_quantity(node.memory)}}}")
    if not (node.replicate.constraint is not None
            and node.replicate.constraint.is_exact()
            and node.replicate.constraint.minimum == 1):
        parts.append(f"{{replicate {_quantity(node.replicate)}}}")
    for key in sorted(node.attributes):
        parts.append(f"{{{key} {node.attributes[key]}}}")
    return "{" + " ".join(parts) + "}"


def _unparse_performance(spec: PerformanceSpec) -> str:
    parts = ["performance"]
    if spec.parameter is not None:
        parts.append(spec.parameter)
    if spec.expression is not None and not spec.points:
        parts.append("{" + spec.expression.source + "}")
    for point in spec.points:
        parts.append(f"{{{_num(point.x)} {_num(point.seconds)}}}")
    return "{" + " ".join(parts) + "}"


def _quantity(quantity: Quantity) -> str:
    return quantity.describe()


def _num(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)
