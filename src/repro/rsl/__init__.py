"""The Harmony Resource Specification Language (RSL).

A from-scratch implementation of the TCL-hosted specification language from
Section 3 of *Exposing Application Alternatives* (ICDCS 1999): a tokenizer
and list parser for the TCL brace syntax, a parametric expression evaluator,
interval constraints (``>= 32``), the Table 1 tag registry, and a builder
that turns RSL text into :class:`Bundle`/:class:`NodeAdvertisement` model
objects.

Typical use::

    from repro.rsl import build_bundle

    bundle = build_bundle('''
        harmonyBundle DBclient:1 where {
            {QS {node server {hostname db.example} {seconds 42} {memory 20}}
                {node client {os linux} {seconds 1} {memory 2}}
                {link client server 2}}
            {DS {node server {hostname db.example} {seconds 1} {memory 20}}
                {node client {os linux} {memory >=32} {seconds 9}}
                {link client server
                    {44 + (client.memory > 24 ? 24 : client.memory) - 17}}}}
    ''')
"""

from repro.rsl.builder import (
    build_bundle,
    build_bundle_command,
    build_node_command,
    build_quantity,
    build_script,
)
from repro.rsl.constraints import Constraint, parse_constraint
from repro.rsl.lint import LINT_CODES, Diagnostic, lint_bundle
from repro.rsl.expressions import (
    Environment,
    Expression,
    MapEnvironment,
    parse_expression,
)
from repro.rsl.model import (
    Bundle,
    CommunicationRequirement,
    FrictionSpec,
    GranularitySpec,
    LinkRequirement,
    NodeAdvertisement,
    NodeRequirement,
    PerformancePoint,
    PerformanceSpec,
    Quantity,
    TuningOption,
    VariableSpec,
)
from repro.rsl.parser import RslList, RslWord, format_node, parse_list, parse_script
from repro.rsl.tags import TAG_REGISTRY, TagContext, TagInfo, lookup_tag, tags_for_context
from repro.rsl.tokens import Token, TokenType, tokenize
from repro.rsl.unparse import (
    pretty_bundle,
    unparse_advertisement,
    unparse_bundle,
    unparse_option,
)

__all__ = [
    "Bundle", "TuningOption", "NodeRequirement", "LinkRequirement",
    "CommunicationRequirement", "PerformanceSpec", "PerformancePoint",
    "GranularitySpec", "VariableSpec", "FrictionSpec", "NodeAdvertisement",
    "Quantity", "Constraint", "Expression", "Environment", "MapEnvironment",
    "parse_expression", "parse_constraint",
    "build_script", "build_bundle", "build_bundle_command",
    "build_node_command", "build_quantity",
    "parse_script", "parse_list", "format_node", "RslList", "RslWord",
    "tokenize", "Token", "TokenType",
    "TAG_REGISTRY", "TagInfo", "TagContext", "lookup_tag", "tags_for_context",
    "unparse_bundle", "unparse_option", "unparse_advertisement",
    "pretty_bundle",
    "lint_bundle", "Diagnostic", "LINT_CODES",
]
