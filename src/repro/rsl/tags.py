"""Registry of the primary Harmony RSL tags (the paper's Table 1).

The registry is consulted by the builder (to dispatch tag handlers) and by
the validator (to reject unknown tags with a helpful message).  It is also
what the Table 1 conformance benchmark prints.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["TagContext", "TagInfo", "TAG_REGISTRY", "lookup_tag",
           "tags_for_context"]


class TagContext(enum.Enum):
    """Where a tag may legally appear."""

    SCRIPT = "script"      # top-level command (harmonyBundle, harmonyNode)
    OPTION = "option"      # inside a tuning option body
    NODE = "node"          # attribute of a node requirement
    ADVERT = "advert"      # attribute of a harmonyNode advertisement


@dataclass(frozen=True)
class TagInfo:
    """One row of the paper's Table 1 (plus contexts, for validation)."""

    name: str
    purpose: str
    contexts: frozenset[TagContext]


def _tag(name: str, purpose: str, *contexts: TagContext) -> TagInfo:
    return TagInfo(name=name, purpose=purpose, contexts=frozenset(contexts))


#: The primary tags, verbatim from Table 1 of the paper, plus the attribute
#: tags the paper's examples use inside node requirements (hostname, os,
#: seconds, memory, replicate) and the ``friction`` cost the prose requires.
TAG_REGISTRY: dict[str, TagInfo] = {tag.name: tag for tag in [
    _tag("harmonyBundle", "Application bundle.", TagContext.SCRIPT),
    _tag("node",
         "Characteristics of desired node (e.g., CPU speed, memory, OS, "
         "etc.)",
         TagContext.OPTION),
    _tag("link", "Specifies required bandwidth between two nodes.",
         TagContext.OPTION),
    _tag("communication",
         "Alternate form of bandwidth specification. Gives total "
         "communication requirements of application, usually parameterized "
         "by the resources allocated by Harmony (i.e., a function of the "
         "number of nodes).",
         TagContext.OPTION),
    _tag("performance",
         "Override Harmony's default prediction function for that "
         "application.",
         TagContext.OPTION),
    _tag("granularity",
         "Rate at which the application can change between options.",
         TagContext.OPTION),
    _tag("variable",
         "Allows a particular resource (usually a node specification) to be "
         "instantiated by Harmony a variable number of times.",
         TagContext.OPTION),
    _tag("harmonyNode", "Resource availability.", TagContext.SCRIPT),
    _tag("speed",
         "Speed of node relative to reference node (400 MHz Pentium II).",
         TagContext.ADVERT),
    # Attribute tags used by the paper's Figures 2 and 3 inside node
    # requirements and advertisements:
    _tag("hostname", "Required or advertised host name ('*' matches any).",
         TagContext.NODE, TagContext.ADVERT),
    _tag("os", "Required or advertised operating system.",
         TagContext.NODE, TagContext.ADVERT),
    _tag("seconds",
         "Total expected seconds of computation on the reference machine.",
         TagContext.NODE),
    _tag("memory", "Minimum memory needed (MB); '>=' makes it elastic.",
         TagContext.NODE, TagContext.ADVERT),
    _tag("replicate",
         "Match this node definition against N distinct nodes.",
         TagContext.NODE),
    # Frictional cost: required by Section 3 ('we need to express the
    # frictional cost of switching from one option to another').
    _tag("friction",
         "Cost (reference-machine seconds) of switching into this option.",
         TagContext.OPTION),
]}


def lookup_tag(name: str) -> TagInfo | None:
    """Return the registry entry for ``name`` or ``None`` if unknown."""
    return TAG_REGISTRY.get(name)


def tags_for_context(context: TagContext) -> list[TagInfo]:
    """All tags legal in ``context``, in registry order."""
    return [tag for tag in TAG_REGISTRY.values() if context in tag.contexts]
