"""Value constraints attached to RSL resource tags.

The paper's Figure 3 qualifies the data-shipping client with ``memory >= 32``:
32 MB is the minimum, but Harmony may profitably allocate more.  This module
models such constraints as intervals over the reals.

A constraint is written in RSL as either:

* a bare number — an exact requirement (``{memory 20}``),
* a comparison prefix — ``>=``, ``>``, ``<=``, ``<`` followed by a number
  (``{memory >=32}`` or ``{memory >= 32}``),
* an explicit range — ``{memory 32..128}``,
* an arbitrary expression — evaluated lazily against the allocation
  environment (handled by the builder, not here).
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass

from repro.errors import RslSemanticError

__all__ = ["Constraint", "parse_constraint"]


@dataclass(frozen=True)
class Constraint:
    """A closed/open interval of acceptable values for a resource quantity.

    ``minimum`` is the smallest acceptable allocation and ``maximum`` the
    largest (``inf`` when unbounded).  ``elastic`` is True when the
    application can profitably use more than the minimum — exactly the
    ``>=`` case the paper highlights: the controller may then treat the
    quantity as a tunable dimension.
    """

    minimum: float
    maximum: float = math.inf
    elastic: bool = False

    def __post_init__(self) -> None:
        if self.minimum > self.maximum:
            raise RslSemanticError(
                f"constraint minimum {self.minimum} exceeds maximum "
                f"{self.maximum}")

    @classmethod
    def exact(cls, value: float) -> "Constraint":
        """A requirement for precisely ``value``."""
        return cls(minimum=value, maximum=value, elastic=False)

    @classmethod
    def at_least(cls, value: float) -> "Constraint":
        """A ``>=`` requirement — elastic upward."""
        return cls(minimum=value, maximum=math.inf, elastic=True)

    @classmethod
    def between(cls, low: float, high: float) -> "Constraint":
        """A bounded elastic range."""
        return cls(minimum=low, maximum=high, elastic=True)

    def satisfied_by(self, value: float) -> bool:
        """Whether an allocation of ``value`` meets this constraint."""
        return self.minimum <= value <= self.maximum

    def clamp(self, value: float) -> float:
        """Project ``value`` onto the acceptable interval."""
        return min(max(value, self.minimum), self.maximum)

    def is_exact(self) -> bool:
        return self.minimum == self.maximum

    def describe(self) -> str:
        """Human/RSL-facing rendering."""
        if self.is_exact():
            return _fmt(self.minimum)
        if math.isinf(self.maximum):
            return f">={_fmt(self.minimum)}"
        return f"{_fmt(self.minimum)}..{_fmt(self.maximum)}"


def _fmt(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


_RANGE_RE = re.compile(r"^(?P<low>-?\d+(?:\.\d+)?)\.\.(?P<high>-?\d+(?:\.\d+)?)$")
_CMP_RE = re.compile(r"^(?P<op>>=|<=|>|<)\s*(?P<value>-?\d+(?:\.\d+)?)$")
_NUMBER_RE = re.compile(r"^-?\d+(?:\.\d+)?$")


def parse_constraint(text: str) -> Constraint | None:
    """Parse constraint syntax, returning ``None`` if ``text`` is not one.

    A ``None`` return tells the builder to treat the text as a parametric
    expression instead.

    >>> parse_constraint(">= 32")
    Constraint(minimum=32.0, maximum=inf, elastic=True)
    >>> parse_constraint("20").is_exact()
    True
    >>> parse_constraint("a + b") is None
    True
    """
    text = text.strip()
    match = _NUMBER_RE.match(text)
    if match:
        return Constraint.exact(float(text))
    match = _CMP_RE.match(text)
    if match:
        value = float(match.group("value"))
        op = match.group("op")
        if op == ">=":
            return Constraint.at_least(value)
        if op == ">":
            # Treat as >= the next representable step for integral resources.
            return Constraint.at_least(math.nextafter(value, math.inf))
        if op == "<=":
            return Constraint(minimum=0.0, maximum=value, elastic=True)
        return Constraint(minimum=0.0,
                          maximum=math.nextafter(value, -math.inf),
                          elastic=True)
    match = _RANGE_RE.match(text)
    if match:
        return Constraint.between(float(match.group("low")),
                                  float(match.group("high")))
    return None
