"""Semantic model of Harmony RSL declarations.

The builder (:mod:`repro.rsl.builder`) turns parsed RSL lists into the
classes here.  These are what the rest of the system consumes: the matcher
reads :class:`NodeRequirement` and :class:`LinkRequirement`, the prediction
package reads :class:`PerformanceSpec`, and the controller walks
:class:`Bundle`/:class:`TuningOption` to enumerate the configuration space.

Terminology follows the paper:

* a **bundle** is a set of mutually exclusive configuration alternatives;
* each alternative is a **tuning option**;
* options may declare **variables** (the ``variable`` tag) whose values span
  an additional axis — e.g. Bag's ``workerNodes in {1 2 4 8}``;
* quantities (seconds, memory, bandwidth) are **parametric**: constants,
  interval constraints (``>= 32``), or expressions over allocated resources.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.errors import RslSemanticError
from repro.rsl.constraints import Constraint
from repro.rsl.expressions import Environment, Expression, MapEnvironment

__all__ = [
    "Quantity",
    "NodeRequirement",
    "LinkRequirement",
    "CommunicationRequirement",
    "PerformancePoint",
    "PerformanceSpec",
    "GranularitySpec",
    "VariableSpec",
    "FrictionSpec",
    "TuningOption",
    "Bundle",
    "NodeAdvertisement",
]


@dataclass(frozen=True)
class Quantity:
    """A resource amount: a constraint, a parametric expression, or both.

    Exactly one of ``constraint``/``expression`` is set.  Constraints cover
    constants (``20``) and elastic intervals (``>= 32``); expressions cover
    parametric amounts (``2400 / workerNodes``).
    """

    constraint: Constraint | None = None
    expression: Expression | None = None

    def __post_init__(self) -> None:
        if (self.constraint is None) == (self.expression is None):
            raise RslSemanticError(
                "Quantity requires exactly one of constraint or expression")

    @classmethod
    def of(cls, value: float) -> "Quantity":
        """An exact constant quantity."""
        return cls(constraint=Constraint.exact(value))

    @classmethod
    def parametric(cls, expression: Expression) -> "Quantity":
        return cls(expression=expression)

    @property
    def elastic(self) -> bool:
        """True when the controller may choose the allocated amount."""
        return self.constraint is not None and self.constraint.elastic

    def minimum(self, env: Environment | Mapping[str, float] | None = None,
                ) -> float:
        """Smallest acceptable amount given ``env`` for parametric values."""
        if self.constraint is not None:
            return self.constraint.minimum
        return self.value(env)

    def value(self, env: Environment | Mapping[str, float] | None = None,
              ) -> float:
        """The concrete amount.

        For an exact constraint this is the constant.  For an elastic
        constraint it is the minimum (the default allocation before the
        controller decides to give more).  For an expression it evaluates
        against ``env``.
        """
        if self.constraint is not None:
            return self.constraint.minimum
        assert self.expression is not None
        return self.expression.evaluate(_as_env(env))

    def free_variables(self) -> frozenset[str]:
        if self.expression is not None:
            return self.expression.free_variables()
        return frozenset()

    def describe(self) -> str:
        if self.constraint is not None:
            return self.constraint.describe()
        assert self.expression is not None
        return "{" + self.expression.source + "}"


def _as_env(env: Environment | Mapping[str, float] | None) -> Environment:
    if env is None:
        return MapEnvironment()
    if isinstance(env, Mapping):
        return MapEnvironment(env)
    return env


@dataclass(frozen=True)
class NodeRequirement:
    """One ``node`` tag: a machine the option needs.

    ``name`` is the option-local resource name (``server``, ``client``,
    ``worker``) used in the namespace and referenced by links.  ``replicate``
    asks the matcher to instantiate this definition N times; it may be an
    expression over option variables (Bag replicates its worker node
    ``workerNodes`` times).
    """

    name: str
    hostname: str = "*"
    os: str | None = None
    seconds: Quantity | None = None
    memory: Quantity | None = None
    replicate: Quantity = field(default_factory=lambda: Quantity.of(1))
    attributes: Mapping[str, str] = field(default_factory=dict)

    def replica_count(self, env: Environment | Mapping[str, float] | None = None,
                      ) -> int:
        count = self.replicate.value(env)
        if count < 1 or count != int(count):
            raise RslSemanticError(
                f"node {self.name!r}: replicate must be a positive integer, "
                f"got {count}")
        return int(count)

    def replica_names(self, env: Environment | Mapping[str, float] | None = None,
                      ) -> list[str]:
        """Names of the instantiated replicas.

        A single instance keeps the bare name; replicas get ``name[i]``.
        """
        count = self.replica_count(env)
        if count == 1:
            return [self.name]
        return [f"{self.name}[{i}]" for i in range(count)]


@dataclass(frozen=True)
class LinkRequirement:
    """One ``link`` tag: total bytes (MB) moved between two named nodes."""

    endpoint_a: str
    endpoint_b: str
    megabytes: Quantity

    def endpoints(self) -> tuple[str, str]:
        return (self.endpoint_a, self.endpoint_b)


@dataclass(frozen=True)
class CommunicationRequirement:
    """The ``communication`` tag: whole-application traffic (MB).

    Used when specific endpoints are not given; the paper's semantics is that
    communication is then general and all nodes must be fully connected.
    Usually parameterized by allocated resources, e.g. Bag's quadratic
    ``0.5 * workerNodes * workerNodes``.
    """

    megabytes: Quantity


@dataclass(frozen=True)
class PerformancePoint:
    """One user-supplied (resource amount, runtime seconds) data point."""

    x: float
    seconds: float


@dataclass(frozen=True)
class PerformanceSpec:
    """The ``performance`` tag: an explicit response-time model.

    Either a list of data points that Harmony interpolates with a piecewise
    linear curve (the paper's stated behaviour), or an expression evaluated
    against the allocation environment.  ``parameter`` names the x-axis
    (defaults to the node count variable when one exists).
    """

    points: tuple[PerformancePoint, ...] = ()
    expression: Expression | None = None
    parameter: str | None = None

    def __post_init__(self) -> None:
        if not self.points and self.expression is None:
            raise RslSemanticError(
                "performance tag needs data points or an expression")
        if self.points:
            xs = [p.x for p in self.points]
            if sorted(xs) != xs or len(set(xs)) != len(xs):
                raise RslSemanticError(
                    "performance data points must have strictly increasing x")


@dataclass(frozen=True)
class GranularitySpec:
    """The ``granularity`` tag: minimum seconds between option switches."""

    min_interval_seconds: float

    def __post_init__(self) -> None:
        if self.min_interval_seconds < 0:
            raise RslSemanticError("granularity must be non-negative")


@dataclass(frozen=True)
class VariableSpec:
    """The ``variable`` tag: a named tuning axis with a discrete domain.

    The paper's Bag example declares ``workerNodes`` over {1, 2, 4, 8} and
    then parameterizes other tags on it.
    """

    name: str
    values: tuple[float, ...]
    default: float | None = None

    def __post_init__(self) -> None:
        if not self.values:
            raise RslSemanticError(
                f"variable {self.name!r} has an empty domain")
        if self.default is not None and self.default not in self.values:
            raise RslSemanticError(
                f"variable {self.name!r}: default {self.default} is not in "
                f"its domain {self.values}")

    def default_value(self) -> float:
        return self.default if self.default is not None else self.values[0]


@dataclass(frozen=True)
class FrictionSpec:
    """The frictional cost of switching *into* an option (seconds).

    The paper requires the interface to express the cost of reconfiguration
    (data re-layout, index rebuilds, process migration) so the controller can
    weigh it against projected gains.
    """

    seconds: Quantity

    def cost(self, env: Environment | Mapping[str, float] | None = None,
             ) -> float:
        return self.seconds.value(env)


@dataclass(frozen=True)
class TuningOption:
    """One mutually-exclusive alternative inside a bundle."""

    name: str
    nodes: tuple[NodeRequirement, ...] = ()
    links: tuple[LinkRequirement, ...] = ()
    communication: CommunicationRequirement | None = None
    performance: PerformanceSpec | None = None
    granularity: GranularitySpec | None = None
    variables: tuple[VariableSpec, ...] = ()
    friction: FrictionSpec | None = None

    def node_named(self, name: str) -> NodeRequirement:
        for node in self.nodes:
            if node.name == name:
                return node
        raise RslSemanticError(
            f"option {self.name!r} has no node named {name!r}")

    def variable_named(self, name: str) -> VariableSpec | None:
        for variable in self.variables:
            if variable.name == name:
                return variable
        return None

    def variable_assignments(self) -> Iterator[dict[str, float]]:
        """Iterate the cartesian product of all variable domains.

        With no variables, yields a single empty assignment, so callers can
        treat every option uniformly as a set of *configurations*.
        """
        def rec(index: int, bound: dict[str, float]) -> Iterator[dict[str, float]]:
            if index == len(self.variables):
                yield dict(bound)
                return
            spec = self.variables[index]
            for value in spec.values:
                bound[spec.name] = value
                yield from rec(index + 1, bound)
            del bound[spec.name]

        yield from rec(0, {})

    def configuration_count(self) -> int:
        count = 1
        for variable in self.variables:
            count *= len(variable.values)
        return count


@dataclass(frozen=True)
class Bundle:
    """A named set of mutually exclusive tuning options for one application.

    ``app_name`` and ``declared_instance`` come from the ``App:instance``
    syntax in ``harmonyBundle App:1 where {...}``; Harmony assigns its own
    runtime instance id when the application registers.
    """

    app_name: str
    bundle_name: str
    options: tuple[TuningOption, ...]
    declared_instance: int | None = None

    def __post_init__(self) -> None:
        if not self.options:
            raise RslSemanticError(
                f"bundle {self.bundle_name!r} declares no options")
        names = [option.name for option in self.options]
        if len(set(names)) != len(names):
            raise RslSemanticError(
                f"bundle {self.bundle_name!r} has duplicate option names")

    def option_named(self, name: str) -> TuningOption:
        for option in self.options:
            if option.name == name:
                return option
        raise RslSemanticError(
            f"bundle {self.bundle_name!r} has no option named {name!r}")

    def option_names(self) -> list[str]:
        return [option.name for option in self.options]

    def configuration_count(self) -> int:
        """Total number of concrete configurations across all options."""
        return sum(option.configuration_count() for option in self.options)


@dataclass(frozen=True)
class NodeAdvertisement:
    """A ``harmonyNode`` declaration: one machine's published capacity.

    ``speed`` is relative to the paper's reference machine (a 400 MHz
    Pentium II); ``memory`` is in MB.
    """

    hostname: str
    speed: float = 1.0
    memory: float = math.inf
    os: str | None = None
    attributes: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.speed <= 0:
            raise RslSemanticError(
                f"node {self.hostname!r}: speed must be positive")
        if self.memory < 0:
            raise RslSemanticError(
                f"node {self.hostname!r}: memory must be non-negative")
