"""Semantic analysis: parsed RSL lists -> model objects.

This is the layer at which the paper's Figures 2 and 3 become
:class:`~repro.rsl.model.Bundle` values.  The accepted shape of a bundle
declaration is::

    harmonyBundle App:1 bundleName {
        {optionName
            {node <name> {hostname h} {os linux} {seconds Q} {memory Q}
                         {replicate Q}}
            {link <a> <b> Q}
            {communication Q}
            {performance {x seconds} {x seconds} ...}
            {granularity seconds}
            {variable name {v1 v2 ...} [default]}
            {friction Q}}
        ...}

where ``Q`` (a *quantity*) is a bare number (``42``), an interval constraint
(``>=32``), or a braced parametric expression
(``{44 + (client.memory > 24 ? 24 : client.memory) - 17}``).

Resource advertisements use::

    harmonyNode hostname {speed 1.5} {memory 256} {os linux}
"""

from __future__ import annotations

from repro.errors import RslSemanticError
from repro.rsl.constraints import parse_constraint
from repro.rsl.expressions import parse_expression
from repro.rsl.model import (
    Bundle,
    CommunicationRequirement,
    FrictionSpec,
    GranularitySpec,
    LinkRequirement,
    NodeAdvertisement,
    NodeRequirement,
    PerformancePoint,
    PerformanceSpec,
    Quantity,
    TuningOption,
    VariableSpec,
)
from repro.rsl.parser import RslList, RslNode, RslWord, parse_script

__all__ = ["build_script", "build_bundle", "build_bundle_command",
           "build_node_command", "build_quantity"]


def build_script(text: str) -> list[Bundle | NodeAdvertisement]:
    """Build every ``harmonyBundle``/``harmonyNode`` command in ``text``."""
    results: list[Bundle | NodeAdvertisement] = []
    for command in parse_script(text):
        head = command.head_word()
        if head == "harmonyBundle":
            results.append(build_bundle_command(command))
        elif head == "harmonyNode":
            results.append(build_node_command(command))
        else:
            raise RslSemanticError(
                f"unknown top-level command {head!r} "
                f"(line {command.line})")
    return results


def build_bundle(text: str) -> Bundle:
    """Build exactly one bundle from ``text`` (convenience for the API)."""
    results = build_script(text)
    bundles = [r for r in results if isinstance(r, Bundle)]
    if len(bundles) != 1 or len(results) != 1:
        raise RslSemanticError(
            f"expected exactly one harmonyBundle command, found "
            f"{len(results)} commands ({len(bundles)} bundles)")
    return bundles[0]


# --------------------------------------------------------------------------
# harmonyBundle
# --------------------------------------------------------------------------

def build_bundle_command(command: RslList) -> Bundle:
    if len(command) != 4:
        raise RslSemanticError(
            "harmonyBundle requires: harmonyBundle App[:inst] bundleName "
            f"{{options}} (line {command.line})")
    app_word = _require_word(command[1], "application name")
    bundle_name = _require_word(command[2], "bundle name")
    options_list = _require_list(command[3], "options list")

    app_name, declared_instance = _split_app_name(app_word)
    options = tuple(_build_option(item) for item in options_list)
    return Bundle(app_name=app_name, bundle_name=bundle_name,
                  options=options, declared_instance=declared_instance)


def _split_app_name(word: str) -> tuple[str, int | None]:
    if ":" not in word:
        return word, None
    name, _, instance = word.partition(":")
    if not name:
        raise RslSemanticError(f"empty application name in {word!r}")
    try:
        return name, int(instance)
    except ValueError:
        raise RslSemanticError(
            f"non-integer instance id in {word!r}") from None


def _build_option(node: RslNode) -> TuningOption:
    body = _require_list(node, "tuning option")
    if len(body) < 1:
        raise RslSemanticError(
            f"empty tuning option (line {getattr(node, 'line', '?')})")
    name = _require_word(body[0], "option name")

    nodes: list[NodeRequirement] = []
    links: list[LinkRequirement] = []
    variables: list[VariableSpec] = []
    communication: CommunicationRequirement | None = None
    performance: PerformanceSpec | None = None
    granularity: GranularitySpec | None = None
    friction: FrictionSpec | None = None

    for item in body.items[1:]:
        entry = _require_list(item, f"tag inside option {name!r}")
        tag = entry.head_word()
        if tag == "node":
            nodes.append(_build_node_requirement(entry))
        elif tag == "link":
            links.append(_build_link(entry))
        elif tag == "communication":
            communication = _single_assignment(
                communication, "communication", name,
                _build_communication(entry))
        elif tag == "performance":
            performance = _single_assignment(
                performance, "performance", name, _build_performance(entry))
        elif tag == "granularity":
            granularity = _single_assignment(
                granularity, "granularity", name, _build_granularity(entry))
        elif tag == "variable":
            variables.append(_build_variable(entry))
        elif tag == "friction":
            friction = _single_assignment(
                friction, "friction", name, _build_friction(entry))
        else:
            raise RslSemanticError(
                f"unknown tag {tag!r} in option {name!r} "
                f"(line {entry.line})")

    option = TuningOption(
        name=name, nodes=tuple(nodes), links=tuple(links),
        communication=communication, performance=performance,
        granularity=granularity, variables=tuple(variables),
        friction=friction)
    _check_link_endpoints(option)
    return option


def _single_assignment(current, tag: str, option: str, value):
    if current is not None:
        raise RslSemanticError(
            f"option {option!r} declares {tag!r} more than once")
    return value


def _check_link_endpoints(option: TuningOption) -> None:
    node_names = {node.name for node in option.nodes}
    for link in option.links:
        for endpoint in link.endpoints():
            if endpoint not in node_names:
                raise RslSemanticError(
                    f"option {option.name!r}: link endpoint {endpoint!r} "
                    f"names no declared node (nodes: {sorted(node_names)})")


def _build_node_requirement(entry: RslList) -> NodeRequirement:
    if len(entry) < 2:
        raise RslSemanticError(
            f"node tag needs a name (line {entry.line})")
    name = _require_word(entry[1], "node name")

    hostname = "*"
    os_name: str | None = None
    seconds: Quantity | None = None
    memory: Quantity | None = None
    replicate = Quantity.of(1)
    attributes: dict[str, str] = {}

    for item in entry.items[2:]:
        attr = _require_list(item, f"attribute of node {name!r}")
        if len(attr) != 2:
            raise RslSemanticError(
                f"node attribute must be {{name value}} "
                f"(node {name!r}, line {attr.line})")
        key = _require_word(attr[0], "attribute name")
        value_node = attr[1]
        if key == "hostname":
            hostname = _require_word(value_node, "hostname")
        elif key == "os":
            os_name = _require_word(value_node, "os")
        elif key == "seconds":
            seconds = build_quantity(value_node, f"node {name!r} seconds")
        elif key == "memory":
            memory = build_quantity(value_node, f"node {name!r} memory")
        elif key == "replicate":
            replicate = build_quantity(value_node,
                                       f"node {name!r} replicate")
        else:
            attributes[key] = _flatten_text(value_node)

    return NodeRequirement(name=name, hostname=hostname, os=os_name,
                           seconds=seconds, memory=memory,
                           replicate=replicate, attributes=attributes)


def _build_link(entry: RslList) -> LinkRequirement:
    if len(entry) != 4:
        raise RslSemanticError(
            f"link tag must be {{link a b megabytes}} (line {entry.line})")
    return LinkRequirement(
        endpoint_a=_require_word(entry[1], "link endpoint"),
        endpoint_b=_require_word(entry[2], "link endpoint"),
        megabytes=build_quantity(entry[3], "link megabytes"))


def _build_communication(entry: RslList) -> CommunicationRequirement:
    if len(entry) != 2:
        raise RslSemanticError(
            f"communication tag must be {{communication megabytes}} "
            f"(line {entry.line})")
    return CommunicationRequirement(
        megabytes=build_quantity(entry[1], "communication megabytes"))


def _build_performance(entry: RslList) -> PerformanceSpec:
    """Either interpolation points or a closed-form expression.

    ``{performance [param] {x seconds} {x seconds} ...}`` — data points
    Harmony interpolates piecewise-linearly; or
    ``{performance {<expression>}}`` — the paper's "explicit specification
    might include either an expression or a function": a formula over the
    option's variables evaluated directly.
    """
    items = list(entry.items[1:])
    if not items:
        raise RslSemanticError(
            f"performance tag needs data points or an expression "
            f"(line {entry.line})")

    parameter: str | None = None
    if isinstance(items[0], RslWord):
        parameter = items[0].text
        items = items[1:]
        if not items:
            raise RslSemanticError(
                f"performance tag needs data points after the parameter "
                f"name (line {entry.line})")

    if len(items) == 1 and isinstance(items[0], RslList) \
            and not _looks_like_point(items[0]):
        text = _flatten_text(items[0])
        try:
            expression = parse_expression(text)
        except Exception as exc:
            raise RslSemanticError(
                f"performance expression {text!r} does not parse "
                f"({exc})") from exc
        return PerformanceSpec(expression=expression, parameter=parameter)

    points: list[PerformancePoint] = []
    for item in items:
        pair = _require_list(item, "performance data point")
        if len(pair) != 2:
            raise RslSemanticError(
                f"performance data point must be {{x seconds}} "
                f"(line {pair.line})")
        points.append(PerformancePoint(
            x=_require_number(pair[0], "performance x"),
            seconds=_require_number(pair[1], "performance seconds")))
    points.sort(key=lambda p: p.x)
    return PerformanceSpec(points=tuple(points), parameter=parameter)


def _looks_like_point(item: RslList) -> bool:
    """A two-word all-numeric list is an (x, seconds) data point."""
    if len(item) != 2:
        return False
    for node in item.items:
        if not isinstance(node, RslWord):
            return False
        try:
            float(node.text)
        except ValueError:
            return False
    return True


def _build_granularity(entry: RslList) -> GranularitySpec:
    if len(entry) != 2:
        raise RslSemanticError(
            f"granularity tag must be {{granularity seconds}} "
            f"(line {entry.line})")
    return GranularitySpec(
        min_interval_seconds=_require_number(entry[1], "granularity"))


def _build_variable(entry: RslList) -> VariableSpec:
    if len(entry) not in (3, 4):
        raise RslSemanticError(
            f"variable tag must be {{variable name {{values}} [default]}} "
            f"(line {entry.line})")
    name = _require_word(entry[1], "variable name")
    values_list = _require_list(entry[2], f"domain of variable {name!r}")
    values = tuple(_require_number(item, f"value of variable {name!r}")
                   for item in values_list)
    default: float | None = None
    if len(entry) == 4:
        default = _require_number(entry[3],
                                  f"default of variable {name!r}")
    return VariableSpec(name=name, values=values, default=default)


def _build_friction(entry: RslList) -> FrictionSpec:
    if len(entry) != 2:
        raise RslSemanticError(
            f"friction tag must be {{friction seconds}} (line {entry.line})")
    return FrictionSpec(seconds=build_quantity(entry[1], "friction seconds"))


# --------------------------------------------------------------------------
# harmonyNode
# --------------------------------------------------------------------------

def build_node_command(command: RslList) -> NodeAdvertisement:
    if len(command) < 2:
        raise RslSemanticError(
            f"harmonyNode requires a hostname (line {command.line})")
    hostname = _require_word(command[1], "hostname")

    speed = 1.0
    memory = float("inf")
    os_name: str | None = None
    attributes: dict[str, str] = {}

    for item in command.items[2:]:
        attr = _require_list(item, f"attribute of harmonyNode {hostname!r}")
        if len(attr) != 2:
            raise RslSemanticError(
                f"harmonyNode attribute must be {{name value}} "
                f"(line {attr.line})")
        key = _require_word(attr[0], "attribute name")
        if key == "speed":
            speed = _require_number(attr[1], "speed")
        elif key == "memory":
            memory = _require_number(attr[1], "memory")
        elif key == "os":
            os_name = _require_word(attr[1], "os")
        else:
            attributes[key] = _flatten_text(attr[1])

    return NodeAdvertisement(hostname=hostname, speed=speed, memory=memory,
                             os=os_name, attributes=attributes)


# --------------------------------------------------------------------------
# Quantities and low-level helpers
# --------------------------------------------------------------------------

def build_quantity(node: RslNode, context: str) -> Quantity:
    """Build a quantity from a word (number/constraint) or braced expression.

    Words that are neither numbers nor constraints are parsed as expressions,
    so a bare variable reference (``{replicate workerNodes}``) works too.
    """
    if isinstance(node, RslWord):
        constraint = parse_constraint(node.text)
        if constraint is not None:
            return Quantity(constraint=constraint)
        try:
            return Quantity.parametric(parse_expression(node.text))
        except Exception as exc:
            raise RslSemanticError(
                f"{context}: {node.text!r} is neither a constraint nor an "
                f"expression ({exc})") from exc
    text = _flatten_text(node)
    constraint = parse_constraint(text)
    if constraint is not None:
        return Quantity(constraint=constraint)
    try:
        return Quantity.parametric(parse_expression(text))
    except Exception as exc:
        raise RslSemanticError(
            f"{context}: cannot parse expression {text!r} ({exc})") from exc


def _flatten_text(node: RslNode) -> str:
    """Render a node to flat text, joining list items with spaces."""
    if isinstance(node, RslWord):
        return node.text
    return " ".join(_flatten_text(item) for item in node.items)


def _require_word(node: RslNode, what: str) -> str:
    if not isinstance(node, RslWord):
        raise RslSemanticError(
            f"expected a word for {what}, found a list "
            f"(line {node.line})")
    return node.text


def _require_list(node: RslNode, what: str) -> RslList:
    if not isinstance(node, RslList):
        raise RslSemanticError(
            f"expected a braced list for {what}, found word "
            f"{node.text!r} (line {node.line})")
    return node


def _require_number(node: RslNode, what: str) -> float:
    text = _require_word(node, what)
    try:
        return float(text)
    except ValueError:
        raise RslSemanticError(
            f"{what}: expected a number, found {text!r}") from None
