"""Tokenizer for the Harmony RSL.

The RSL is hosted on a TCL-style surface syntax (the paper implements it
directly in TCL).  The grammar we need is the TCL *list* subset:

* whitespace separates words,
* ``{ ... }`` groups words into a nested list; braces nest and nothing inside
  is substituted,
* ``" ... "`` produces a single word that may contain whitespace,
* newlines and ``;`` end a command at the top level,
* ``#`` at the start of a command introduces a comment to end of line.

The tokenizer produces a flat stream of :class:`Token` objects; the parser in
:mod:`repro.rsl.parser` builds nested lists from them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from repro.errors import RslSyntaxError

__all__ = ["TokenType", "Token", "tokenize"]


class TokenType(enum.Enum):
    """Lexical categories of RSL tokens."""

    WORD = "word"            # bare word: harmonyBundle, 42, client.memory
    OPEN_BRACE = "{"         # start of a nested list
    CLOSE_BRACE = "}"        # end of a nested list
    COMMAND_END = ";"        # newline or semicolon at command level
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """One lexical token with its 1-based source position."""

    type: TokenType
    value: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.value!r}, {self.line}:{self.column})"


_WHITESPACE = " \t\r"
_WORD_TERMINATORS = _WHITESPACE + "\n;{}"


class _Scanner:
    """Character-level cursor with line/column tracking."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.line = 1
        self.column = 1

    def peek(self) -> str:
        if self.pos >= len(self.text):
            return ""
        return self.text[self.pos]

    def advance(self) -> str:
        ch = self.text[self.pos]
        self.pos += 1
        if ch == "\n":
            self.line += 1
            self.column = 1
        else:
            self.column += 1
        return ch

    def at_end(self) -> bool:
        return self.pos >= len(self.text)


def tokenize(text: str) -> Iterator[Token]:
    """Yield the token stream for ``text``, ending with an EOF token.

    Raises:
        RslSyntaxError: on an unterminated quoted string or a stray close
            brace is *not* raised here — brace balancing is the parser's job;
            the tokenizer only rejects malformed quoting.
    """
    scanner = _Scanner(text)
    at_command_start = True

    while not scanner.at_end():
        ch = scanner.peek()
        line, column = scanner.line, scanner.column

        if ch in _WHITESPACE:
            scanner.advance()
            continue

        if ch == "\\" and scanner.pos + 1 < len(scanner.text) \
                and scanner.text[scanner.pos + 1] == "\n":
            # Backslash-newline is a line continuation in TCL.
            scanner.advance()
            scanner.advance()
            continue

        if ch in "\n;":
            scanner.advance()
            if not at_command_start:
                yield Token(TokenType.COMMAND_END, ch, line, column)
            at_command_start = True
            continue

        if ch == "#" and at_command_start:
            while not scanner.at_end() and scanner.peek() != "\n":
                scanner.advance()
            continue

        at_command_start = False

        if ch == "{":
            scanner.advance()
            yield Token(TokenType.OPEN_BRACE, "{", line, column)
            continue

        if ch == "}":
            scanner.advance()
            yield Token(TokenType.CLOSE_BRACE, "}", line, column)
            continue

        if ch == '"':
            yield _scan_quoted(scanner, line, column)
            continue

        yield _scan_word(scanner, line, column)

    yield Token(TokenType.EOF, "", scanner.line, scanner.column)


def _scan_quoted(scanner: _Scanner, line: int, column: int) -> Token:
    """Consume a double-quoted word, handling backslash escapes."""
    scanner.advance()  # opening quote
    chars: list[str] = []
    while True:
        if scanner.at_end():
            raise RslSyntaxError("unterminated quoted string", line, column)
        ch = scanner.advance()
        if ch == '"':
            break
        if ch == "\\" and not scanner.at_end():
            escaped = scanner.advance()
            chars.append({"n": "\n", "t": "\t"}.get(escaped, escaped))
            continue
        chars.append(ch)
    return Token(TokenType.WORD, "".join(chars), line, column)


def _scan_word(scanner: _Scanner, line: int, column: int) -> Token:
    """Consume a bare word up to whitespace, newline, ``;`` or a brace."""
    chars: list[str] = []
    while not scanner.at_end() and scanner.peek() not in _WORD_TERMINATORS:
        chars.append(scanner.advance())
    return Token(TokenType.WORD, "".join(chars), line, column)
