"""Parametric expression language used inside RSL tags.

The paper parameterizes resource requirements with TCL expressions, e.g. the
data-shipping link bandwidth in Figure 3::

    44 + (client.memory > 24 ? 24 : client.memory) - 17

and Bag's per-worker CPU time ``2400 / workerNodes``.  This module provides a
self-contained recursive-descent parser and evaluator for that expression
dialect:

* numeric literals (int and float),
* dotted identifiers resolved against an environment (``client.memory``),
* ``+ - * / %`` and unary minus, ``**`` for exponentiation,
* comparisons ``< <= > >= == !=``,
* boolean ``&& || !``,
* C/TCL ternary ``cond ? a : b``,
* parentheses and a small function library (``min``, ``max``, ``abs``,
  ``ceil``, ``floor``, ``round``, ``sqrt``, ``log``, ``log2``, ``pow``).

Expressions are parsed once into an AST (:class:`Expression`) and can then be
evaluated repeatedly against different environments; the controller does this
while exploring candidate allocations.  :meth:`Expression.free_variables`
exposes the dotted names an expression depends on, which the controller uses
to discover parameterizations such as "bandwidth depends on client.memory".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Mapping, Protocol

from repro.errors import ExpressionError

__all__ = ["Expression", "parse_expression", "Environment", "MapEnvironment"]

Number = float


class Environment(Protocol):
    """Resolves dotted identifiers to numeric values during evaluation."""

    def lookup(self, name: str) -> Number:
        """Return the value bound to ``name`` or raise :class:`KeyError`."""
        ...  # pragma: no cover - protocol


class MapEnvironment:
    """Environment backed by a plain mapping, for tests and simple callers."""

    def __init__(self, values: Mapping[str, Number] | None = None):
        self._values = dict(values or {})

    def lookup(self, name: str) -> Number:
        if name not in self._values:
            raise KeyError(name)
        return float(self._values[name])

    def bind(self, name: str, value: Number) -> "MapEnvironment":
        """Return a copy of this environment with ``name`` (re)bound."""
        child = MapEnvironment(self._values)
        child._values[name] = value
        return child


_FUNCTIONS: dict[str, Callable[..., Number]] = {
    "min": min,
    "max": max,
    "abs": abs,
    "ceil": math.ceil,
    "floor": math.floor,
    "round": round,
    "sqrt": math.sqrt,
    "log": math.log,
    "log2": math.log2,
    "pow": math.pow,
}


class _Node:
    """AST node base. Subclasses implement eval/free_variables/unparse."""

    def eval(self, env: Environment) -> Number:
        raise NotImplementedError

    def free_variables(self) -> frozenset[str]:
        raise NotImplementedError

    def unparse(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class _Literal(_Node):
    value: Number

    def eval(self, env: Environment) -> Number:
        return self.value

    def free_variables(self) -> frozenset[str]:
        return frozenset()

    def unparse(self) -> str:
        if self.value == int(self.value):
            return str(int(self.value))
        return repr(self.value)


@dataclass(frozen=True)
class _Name(_Node):
    name: str

    def eval(self, env: Environment) -> Number:
        try:
            return float(env.lookup(self.name))
        except KeyError:
            raise ExpressionError(f"unbound variable {self.name!r}") from None

    def free_variables(self) -> frozenset[str]:
        return frozenset({self.name})

    def unparse(self) -> str:
        return self.name


@dataclass(frozen=True)
class _Unary(_Node):
    op: str
    operand: _Node

    def eval(self, env: Environment) -> Number:
        value = self.operand.eval(env)
        if self.op == "-":
            return -value
        if self.op == "!":
            return 0.0 if value else 1.0
        raise ExpressionError(f"unknown unary operator {self.op!r}")

    def free_variables(self) -> frozenset[str]:
        return self.operand.free_variables()

    def unparse(self) -> str:
        return f"{self.op}({self.operand.unparse()})"


_BINARY_OPS: dict[str, Callable[[Number, Number], Number]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "%": lambda a, b: math.fmod(a, b),
    "**": lambda a, b: a ** b,
    "<": lambda a, b: 1.0 if a < b else 0.0,
    "<=": lambda a, b: 1.0 if a <= b else 0.0,
    ">": lambda a, b: 1.0 if a > b else 0.0,
    ">=": lambda a, b: 1.0 if a >= b else 0.0,
    "==": lambda a, b: 1.0 if a == b else 0.0,
    "!=": lambda a, b: 1.0 if a != b else 0.0,
}


@dataclass(frozen=True)
class _Binary(_Node):
    op: str
    left: _Node
    right: _Node

    def eval(self, env: Environment) -> Number:
        left = self.left.eval(env)
        if self.op == "&&":
            return self.right.eval(env) if left else 0.0
        if self.op == "||":
            return left if left else self.right.eval(env)
        right = self.right.eval(env)
        if self.op in ("/", "%") and right == 0:
            raise ExpressionError(
                f"division by zero in {self.unparse()!r}")
        return _BINARY_OPS[self.op](left, right)

    def free_variables(self) -> frozenset[str]:
        return self.left.free_variables() | self.right.free_variables()

    def unparse(self) -> str:
        return f"({self.left.unparse()} {self.op} {self.right.unparse()})"


@dataclass(frozen=True)
class _Ternary(_Node):
    condition: _Node
    if_true: _Node
    if_false: _Node

    def eval(self, env: Environment) -> Number:
        branch = self.if_true if self.condition.eval(env) else self.if_false
        return branch.eval(env)

    def free_variables(self) -> frozenset[str]:
        return (self.condition.free_variables()
                | self.if_true.free_variables()
                | self.if_false.free_variables())

    def unparse(self) -> str:
        return (f"({self.condition.unparse()} ? {self.if_true.unparse()}"
                f" : {self.if_false.unparse()})")


@dataclass(frozen=True)
class _Call(_Node):
    func: str
    args: tuple[_Node, ...]

    def eval(self, env: Environment) -> Number:
        values = [arg.eval(env) for arg in self.args]
        try:
            return float(_FUNCTIONS[self.func](*values))
        except (ValueError, TypeError) as exc:
            raise ExpressionError(
                f"error calling {self.func}: {exc}") from exc

    def free_variables(self) -> frozenset[str]:
        names: frozenset[str] = frozenset()
        for arg in self.args:
            names |= arg.free_variables()
        return names

    def unparse(self) -> str:
        return f"{self.func}({', '.join(a.unparse() for a in self.args)})"


class Expression:
    """A parsed parametric expression.

    Instances are immutable and hashable on their source text; parse once,
    evaluate many times.
    """

    def __init__(self, source: str, root: _Node):
        self._source = source
        self._root = root

    @property
    def source(self) -> str:
        """The original expression text."""
        return self._source

    def evaluate(self, env: Environment | Mapping[str, Number] | None = None,
                 ) -> Number:
        """Evaluate against ``env`` (an Environment, mapping, or nothing)."""
        if env is None:
            env = MapEnvironment()
        elif isinstance(env, Mapping):
            env = MapEnvironment(env)
        return self._root.eval(env)

    def free_variables(self) -> frozenset[str]:
        """Dotted identifiers this expression reads from the environment."""
        return self._root.free_variables()

    def is_constant(self) -> bool:
        """True when evaluation needs no environment at all."""
        return not self.free_variables()

    def unparse(self) -> str:
        """Canonical (fully parenthesized) rendering of the expression."""
        return self._root.unparse()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Expression) and other._source == self._source

    def __hash__(self) -> int:
        return hash(self._source)

    def __repr__(self) -> str:
        return f"Expression({self._source!r})"


# --------------------------------------------------------------------------
# Lexing and recursive-descent parsing
# --------------------------------------------------------------------------

_MULTICHAR_OPS = ("**", "<=", ">=", "==", "!=", "&&", "||")
_SINGLE_OPS = "+-*/%<>!?:(),"


def _lex(source: str) -> list[str]:
    tokens: list[str] = []
    i = 0
    while i < len(source):
        ch = source[i]
        if ch.isspace():
            i += 1
            continue
        two = source[i:i + 2]
        if two in _MULTICHAR_OPS:
            tokens.append(two)
            i += 2
            continue
        if ch in _SINGLE_OPS or ch in "=&|":
            if ch in "=&|":
                raise ExpressionError(
                    f"unexpected character {ch!r} in expression {source!r}")
            tokens.append(ch)
            i += 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < len(source)
                            and source[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < len(source) and (source[j].isdigit()
                                       or (source[j] == "." and not seen_dot)):
                if source[j] == ".":
                    # A dot followed by a letter means an identifier like
                    # "1.memory" is malformed; digits only after the dot.
                    if j + 1 < len(source) and not source[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            # scientific notation
            if j < len(source) and source[j] in "eE":
                k = j + 1
                if k < len(source) and source[k] in "+-":
                    k += 1
                if k < len(source) and source[k].isdigit():
                    while k < len(source) and source[k].isdigit():
                        k += 1
                    j = k
            tokens.append(source[i:j])
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < len(source) and (source[j].isalnum()
                                       or source[j] in "._"):
                j += 1
            tokens.append(source[i:j])
            i = j
            continue
        raise ExpressionError(
            f"unexpected character {ch!r} in expression {source!r}")
    return tokens


class _Parser:
    """Precedence-climbing parser: ternary > or > and > cmp > add > mul > unary."""

    def __init__(self, source: str):
        self.source = source
        self.tokens = _lex(source)
        self.pos = 0

    def peek(self) -> str | None:
        if self.pos < len(self.tokens):
            return self.tokens[self.pos]
        return None

    def take(self) -> str:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect(self, token: str) -> None:
        if self.peek() != token:
            raise ExpressionError(
                f"expected {token!r} in expression {self.source!r}, "
                f"found {self.peek()!r}")
        self.take()

    def parse(self) -> _Node:
        node = self.ternary()
        if self.peek() is not None:
            raise ExpressionError(
                f"trailing input {self.peek()!r} in expression "
                f"{self.source!r}")
        return node

    def ternary(self) -> _Node:
        condition = self.logical_or()
        if self.peek() == "?":
            self.take()
            if_true = self.ternary()
            self.expect(":")
            if_false = self.ternary()
            return _Ternary(condition, if_true, if_false)
        return condition

    def logical_or(self) -> _Node:
        node = self.logical_and()
        while self.peek() == "||":
            self.take()
            node = _Binary("||", node, self.logical_and())
        return node

    def logical_and(self) -> _Node:
        node = self.comparison()
        while self.peek() == "&&":
            self.take()
            node = _Binary("&&", node, self.comparison())
        return node

    def comparison(self) -> _Node:
        node = self.additive()
        while self.peek() in ("<", "<=", ">", ">=", "==", "!="):
            op = self.take()
            node = _Binary(op, node, self.additive())
        return node

    def additive(self) -> _Node:
        node = self.multiplicative()
        while self.peek() in ("+", "-"):
            op = self.take()
            node = _Binary(op, node, self.multiplicative())
        return node

    def multiplicative(self) -> _Node:
        node = self.power()
        while self.peek() in ("*", "/", "%"):
            op = self.take()
            node = _Binary(op, node, self.power())
        return node

    def power(self) -> _Node:
        node = self.unary()
        if self.peek() == "**":
            self.take()
            # right associative
            return _Binary("**", node, self.power())
        return node

    def unary(self) -> _Node:
        if self.peek() in ("-", "!"):
            op = self.take()
            return _Unary(op, self.unary())
        if self.peek() == "+":
            self.take()
            return self.unary()
        return self.primary()

    def primary(self) -> _Node:
        token = self.peek()
        if token is None:
            raise ExpressionError(
                f"unexpected end of expression {self.source!r}")
        if token == "(":
            self.take()
            node = self.ternary()
            self.expect(")")
            return node
        self.take()
        if token[0].isdigit() or token[0] == ".":
            try:
                return _Literal(float(token))
            except ValueError:
                raise ExpressionError(
                    f"bad numeric literal {token!r} in {self.source!r}"
                ) from None
        if token in _FUNCTIONS and self.peek() == "(":
            self.take()
            args: list[_Node] = []
            if self.peek() != ")":
                args.append(self.ternary())
                while self.peek() == ",":
                    self.take()
                    args.append(self.ternary())
            self.expect(")")
            return _Call(token, tuple(args))
        if token[0].isalpha() or token[0] == "_":
            return _Name(token)
        raise ExpressionError(
            f"unexpected token {token!r} in expression {self.source!r}")


def parse_expression(source: str) -> Expression:
    """Parse ``source`` into an :class:`Expression`.

    >>> expr = parse_expression("44 + (m > 24 ? 24 : m) - 17")
    >>> expr.evaluate({"m": 32})
    51.0
    >>> expr.evaluate({"m": 20})
    47.0
    """
    source = source.strip()
    if not source:
        raise ExpressionError("empty expression")
    return Expression(source, _Parser(source).parse())
