"""Exporting experiment results for plotting and papers.

The experiment harnesses return rich result objects; this module renders
them to interchange formats:

* CSV for the raw time series (one row per query/iteration), ready for any
  plotting tool;
* Markdown tables for the phase/frame summaries EXPERIMENTS.md quotes;
* a one-call :func:`write_database_report` / :func:`write_parallel_report`
  that drops all artifacts for one run into a directory.

Everything is plain text; no plotting dependencies.
"""

from __future__ import annotations

import csv
import io
import pathlib

from repro.apps.database.experiment import DatabaseExperimentResult
from repro.apps.parallel_experiment import ParallelExperimentResult
from repro.controller.controller import DecisionRecord

__all__ = [
    "response_series_csv",
    "iteration_series_csv",
    "decisions_csv",
    "phases_markdown",
    "frames_markdown",
    "write_database_report",
    "write_parallel_report",
]


def response_series_csv(result: DatabaseExperimentResult) -> str:
    """``client,time_s,response_s`` rows for every completed query."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["client", "time_s", "response_s"])
    for client, series in sorted(result.response_series.items()):
        for time, response in series:
            writer.writerow([client, f"{time:.3f}", f"{response:.4f}"])
    return buffer.getvalue()


def iteration_series_csv(result: ParallelExperimentResult) -> str:
    """``app,start_s,elapsed_s,workers`` rows for every iteration."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["app", "start_s", "elapsed_s", "workers"])
    for app, series in sorted(result.iteration_series.items()):
        for start, elapsed, workers in series:
            writer.writerow([app, f"{start:.3f}", f"{elapsed:.3f}",
                             workers])
    return buffer.getvalue()


def decisions_csv(decisions: list[DecisionRecord]) -> str:
    """The controller decision log as CSV."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["time_s", "app", "bundle", "old", "new", "reason",
                     "objective_before", "objective_after"])
    for record in decisions:
        writer.writerow([
            f"{record.time:.3f}", record.app_key, record.bundle_name,
            record.old_configuration or "", record.new_configuration,
            record.reason,
            _finite(record.objective_before),
            _finite(record.objective_after)])
    return buffer.getvalue()


def _finite(value: float) -> str:
    return f"{value:.4f}" if value == value and value not in (
        float("inf"), float("-inf")) else ""


def phases_markdown(result: DatabaseExperimentResult) -> str:
    """The Figure 7 phase summary as a Markdown table."""
    lines = ["| phase | t range (s) | clients | option | "
             "mean response per client (s) |",
             "|---|---|---|---|---|"]
    for phase in result.phases:
        means = ", ".join(
            f"{client}={seconds:.1f}"
            for client, seconds in sorted(
                phase.mean_response_by_client.items()))
        lines.append(
            f"| {phase.phase_index} "
            f"| [{phase.start_time:.0f}, {phase.end_time:.0f}) "
            f"| {phase.active_clients} "
            f"| {phase.dominant_option} "
            f"| {means} |")
    if result.switch_time is not None:
        lines.append("")
        lines.append(f"Switch to data shipping at t = "
                     f"{result.switch_time:.0f} s.")
    return "\n".join(lines) + "\n"


def frames_markdown(result: ParallelExperimentResult) -> str:
    """The Figure 4 frame summary as a Markdown table."""
    lines = ["| frame | t range (s) | apps | partition | "
             "mean iteration per app (s) |",
             "|---|---|---|---|---|"]
    for frame in result.frames:
        iterations = ", ".join(
            f"{app}={seconds:.0f}"
            for app, seconds in sorted(
                frame.mean_iteration_seconds.items()))
        partition = "+".join(str(n) for n in frame.partition())
        lines.append(
            f"| {frame.frame_index} "
            f"| [{frame.start_time:.0f}, {frame.end_time:.0f}) "
            f"| {frame.active_apps} "
            f"| {partition} "
            f"| {iterations} |")
    return "\n".join(lines) + "\n"


def write_database_report(result: DatabaseExperimentResult,
                          directory: str | pathlib.Path) -> list[pathlib.Path]:
    """Write response CSV, decisions CSV, and phase table to ``directory``."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    artifacts = {
        "responses.csv": response_series_csv(result),
        "decisions.csv": decisions_csv(result.decisions),
        "phases.md": phases_markdown(result),
    }
    paths = []
    for name, content in artifacts.items():
        path = directory / name
        path.write_text(content)
        paths.append(path)
    return paths


def write_parallel_report(result: ParallelExperimentResult,
                          directory: str | pathlib.Path) -> list[pathlib.Path]:
    """Write iteration CSV, decisions CSV, and frame table to ``directory``."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    artifacts = {
        "iterations.csv": iteration_series_csv(result),
        "decisions.csv": decisions_csv(result.decisions),
        "frames.md": frames_markdown(result),
    }
    paths = []
    for name, content in artifacts.items():
        path = directory / name
        path.write_text(content)
        paths.append(path)
    return paths
