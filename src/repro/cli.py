"""Command-line interface for the Harmony reproduction.

Installed as ``harmony-repro`` (or run as ``python -m repro.cli``):

* ``harmony-repro check FILE.rsl``  — parse, build, and lint an RSL file;
  exits non-zero on syntax/semantic errors (lint findings are warnings
  unless ``--strict``);
* ``harmony-repro tags``            — print the paper's Table 1 tag set;
* ``harmony-repro fig7 [...]``      — run the Section 6 database
  experiment and print the Figure 7 phases;
* ``harmony-repro fig4 [...]``      — run the Figure 4 repartitioning
  experiment;
* ``harmony-repro metrics [...]``   — run the Figure 7 experiment and dump
  its telemetry (Prometheus text or JSON snapshot);
* ``harmony-repro trace [...]``     — run the Figure 7 experiment and
  explain each reconfiguration (decision traces, optional JSONL dumps);
* ``harmony-repro serve [...]``     — start a real TCP Harmony server over
  a cluster described by ``harmonyNode`` declarations (``--dir`` makes it
  a durable, replicating primary; ``--standby-of`` a hot standby;
  ``--shards N`` a sharded federation under a root arbiter);
* ``harmony-repro shards [...]``    — ask a federation arbiter which
  shard owns an application (the ``shard_lookup`` request);
* ``harmony-repro promote [...]``   — promote a standby's durability
  directory to primary (term-fenced);
* ``harmony-repro replication [...]`` — query a running server's
  replication role, term, and standby lag;
* ``harmony-repro checkpoint [...]`` — journal a demo workload into a
  durability directory (optionally crashing mid-write to leave a torn
  tail for ``restore`` to repair);
* ``harmony-repro restore [...]``   — rebuild a controller from a
  durability directory and print the recovery report;
* ``harmony-repro health [...]``    — score the runtime health histograms
  against SLO thresholds (local demo workload or a running server);
* ``harmony-repro flightrec [...]`` — run a seeded chaos scenario and
  dump the server's flight-recorder timeline as JSON lines.
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import Sequence

from repro.errors import HarmonyError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="harmony-repro",
        description="Reproduction of 'Exposing Application Alternatives' "
                    "(ICDCS 1999) — the Active Harmony tuning interface.")
    subparsers = parser.add_subparsers(dest="command", required=True)

    check = subparsers.add_parser(
        "check", help="parse, build, and lint an RSL file")
    check.add_argument("file", help="path to an RSL script")
    check.add_argument("--strict", action="store_true",
                       help="treat lint findings as errors")

    subparsers.add_parser("tags", help="print the Table 1 tag registry")

    fmt = subparsers.add_parser(
        "format", help="canonically reformat an RSL file (to stdout)")
    fmt.add_argument("file", help="path to an RSL script")

    fig7 = subparsers.add_parser(
        "fig7", help="run the Section 6 database experiment (Figure 7)")
    _add_fig7_options(fig7)

    fig4 = subparsers.add_parser(
        "fig4", help="run the repartitioning experiment (Figure 4)")
    fig4.add_argument("--apps", type=int, default=3)

    metrics = subparsers.add_parser(
        "metrics", help="run the Figure 7 experiment and export its "
                        "telemetry")
    _add_fig7_options(metrics)
    metrics.add_argument("--format", choices=("prometheus", "json"),
                         default="prometheus")
    metrics.add_argument("--prefix", default=None,
                         help="only export metric names with this prefix")

    trace = subparsers.add_parser(
        "trace", help="run the Figure 7 experiment and explain every "
                      "reconfiguration decision")
    _add_fig7_options(trace)
    trace.add_argument("--max", type=int, default=10,
                       help="print at most this many traces (newest last)")
    trace.add_argument("--jsonl", default=None, metavar="PATH",
                       help="also write decision traces as JSON lines")
    trace.add_argument("--spans", default=None, metavar="PATH",
                       help="also write timing spans as JSON lines")

    serve = subparsers.add_parser(
        "serve", help="start a TCP Harmony server (the Section 5 "
                      "prototype)")
    serve.add_argument("--nodes", required=True,
                       help="RSL file of harmonyNode declarations "
                            "describing the cluster")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0)
    serve.add_argument("--bandwidth", type=float, default=40.0,
                       help="full-mesh link bandwidth, MB/s")
    serve.add_argument("--transport", choices=("threaded", "asyncio"),
                       default="threaded",
                       help="TCP front end: one reader thread per "
                            "connection, or one asyncio event loop for "
                            "every socket (same wire protocol)")
    serve.add_argument("--once", action="store_true",
                       help="bind, print the address, and exit "
                            "(for scripting/tests)")
    serve.add_argument("--dir", default=None, metavar="PATH",
                       help="durability directory: journal every state "
                            "change (required for replication roles)")
    serve.add_argument("--standby-of", default=None, metavar="HOST:PORT",
                       help="run as a hot standby following the primary "
                            "at HOST:PORT (serves reads, redirects "
                            "mutations; requires --dir)")
    serve.add_argument("--standby-id", default="standby",
                       help="this standby's stable identity in the "
                            "replication stream and fencing record")
    serve.add_argument("--fencing", default=None, metavar="PATH",
                       help="shared fencing-record file deciding which "
                            "server may serve as primary")
    serve.add_argument("--lease-seconds", type=float, default=30.0,
                       help="primary lease duration on the fencing "
                            "record")
    serve.add_argument("--shards", type=int, default=0, metavar="N",
                       help="federation mode: shard sessions across N "
                            "controller workers (each a full server over "
                            "its own cluster replica, on an ephemeral "
                            "port) under a root arbiter bound on "
                            "--host/--port that answers shard_lookup; "
                            "with --dir each shard journals under "
                            "DIR/shard-<i>")
    serve.add_argument("--rebalance-seconds", type=float, default=5.0,
                       help="federation rebalancer period; 0 disables "
                            "the background rebalancer")

    shards = subparsers.add_parser(
        "shards", help="ask a federation arbiter which shard owns an "
                       "application (shard_lookup)")
    shards.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="the arbiter's address (printed by "
                             "serve --shards)")
    shards.add_argument("--app", default=None,
                        help="resolve the shard owning this application "
                             "name")
    shards.add_argument("--resume-key", default=None, metavar="KEY",
                        help="resolve the shard owning this session key "
                             "(explicit handoff assignments win over "
                             "the hash)")

    promote = subparsers.add_parser(
        "promote", help="promote a standby's durability directory to "
                        "primary (term-fenced)")
    promote.add_argument("--dir", required=True,
                         help="the standby's durability directory")
    promote.add_argument("--fencing", default=None, metavar="PATH",
                         help="shared fencing-record file (promotion is "
                              "refused while the primary's lease is "
                              "live)")
    promote.add_argument("--standby-id", default="standby",
                         help="identity to acquire the fencing lease as")
    promote.add_argument("--lease-seconds", type=float, default=30.0)

    repl = subparsers.add_parser(
        "replication", help="query a running server's replication role, "
                            "term, and standby lag")
    repl.add_argument("--connect", required=True, metavar="HOST:PORT")

    checkpoint = subparsers.add_parser(
        "checkpoint", help="journal a demo workload (WAL + snapshots) "
                           "into a durability directory")
    checkpoint.add_argument("--dir", required=True,
                            help="durability directory (created if absent)")
    checkpoint.add_argument("--apps", type=int, default=4,
                            help="how many applications to register")
    checkpoint.add_argument("--snapshot-every", type=int, default=8,
                            help="snapshot cadence in WAL records "
                                 "(0 disables snapshots)")
    checkpoint.add_argument("--kill-after", type=int, default=None,
                            metavar="N",
                            help="simulate a crash with a torn write on "
                                 "the Nth WAL append (0-based)")

    restore = subparsers.add_parser(
        "restore", help="rebuild a controller from a durability "
                        "directory and print the recovery report")
    restore.add_argument("--dir", required=True,
                         help="durability directory written by checkpoint")

    health = subparsers.add_parser(
        "health", help="evaluate runtime health histograms against the "
                       "SLO thresholds")
    health.add_argument("--connect", default=None, metavar="HOST:PORT",
                        help="score a running server's STATUS payload "
                             "instead of running the local demo workload")
    health.add_argument("--strict", action="store_true",
                        help="exit non-zero if any SLO is breached")

    flightrec = subparsers.add_parser(
        "flightrec", help="run a seeded chaos scenario and dump the "
                          "server's flight recorder")
    flightrec.add_argument("--seed", type=int, default=7,
                           help="fault-schedule seed (same seed, same "
                                "fault sequence)")
    flightrec.add_argument("--out", default=None, metavar="PATH",
                           help="write the flight-recorder ring as JSON "
                                "lines")
    return parser


def _add_fig7_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--policy", choices=("rule", "model"),
                        default="rule")
    parser.add_argument("--tuples", type=int, default=10_000)
    parser.add_argument("--clients", type=int, default=3)


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "check": _cmd_check,
        "tags": _cmd_tags,
        "format": _cmd_format,
        "fig7": _cmd_fig7,
        "fig4": _cmd_fig4,
        "metrics": _cmd_metrics,
        "trace": _cmd_trace,
        "serve": _cmd_serve,
        "shards": _cmd_shards,
        "promote": _cmd_promote,
        "replication": _cmd_replication,
        "checkpoint": _cmd_checkpoint,
        "restore": _cmd_restore,
        "health": _cmd_health,
        "flightrec": _cmd_flightrec,
    }[args.command]
    try:
        return handler(args)
    except HarmonyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.rsl import Bundle, build_script, lint_bundle

    with open(args.file, encoding="utf-8") as handle:
        text = handle.read()
    results = build_script(text)
    bundles = [r for r in results if isinstance(r, Bundle)]
    adverts = len(results) - len(bundles)
    print(f"{args.file}: {len(bundles)} bundle(s), "
          f"{adverts} node advertisement(s)")

    findings = 0
    for bundle in bundles:
        configurations = bundle.configuration_count()
        print(f"  harmonyBundle {bundle.app_name} {bundle.bundle_name}: "
              f"{len(bundle.options)} option(s), "
              f"{configurations} configuration(s)")
        for finding in lint_bundle(bundle):
            findings += 1
            print(f"    warning: {finding}")
    if findings:
        print(f"{findings} lint finding(s)")
        if args.strict:
            return 2
    else:
        print("no lint findings")
    return 0


def _cmd_format(args: argparse.Namespace) -> int:
    from repro.rsl import (
        Bundle,
        build_script,
        pretty_bundle,
        unparse_advertisement,
    )

    with open(args.file, encoding="utf-8") as handle:
        results = build_script(handle.read())
    chunks = []
    for result in results:
        if isinstance(result, Bundle):
            chunks.append(pretty_bundle(result))
        else:
            chunks.append(unparse_advertisement(result) + "\n")
    print("".join(chunks), end="")
    return 0


def _cmd_tags(_args: argparse.Namespace) -> int:
    from repro.rsl.tags import TAG_REGISTRY

    width = max(len(name) for name in TAG_REGISTRY)
    print(f"{'Tag'.ljust(width)}  Purpose")
    for name, info in TAG_REGISTRY.items():
        print(f"{name.ljust(width)}  {info.purpose}")
    return 0


def _cmd_fig7(args: argparse.Namespace) -> int:
    result = _run_fig7_experiment(args)
    print(f"{result.queries_total} queries; switch at "
          f"t={result.switch_time}")
    for phase in result.phases:
        means = ", ".join(f"{c}={v:.1f}s" for c, v in sorted(
            phase.mean_response_by_client.items()))
        print(f"  [{phase.start_time:5.0f},{phase.end_time:5.0f}) "
              f"{phase.active_clients} client(s) "
              f"{phase.dominant_option}: {means}")
    return 0


def _run_fig7_experiment(args: argparse.Namespace, trace: bool = False):
    from repro.apps.database import (
        DatabaseExperimentConfig,
        run_database_experiment,
    )

    return run_database_experiment(DatabaseExperimentConfig(
        tuple_count=args.tuples, policy=args.policy,
        client_count=args.clients,
        total_duration_seconds=200.0 * (args.clients + 1),
        trace=trace))


def _cmd_metrics(args: argparse.Namespace) -> int:
    import json

    from repro.obs.export import json_snapshot, prometheus_text

    result = _run_fig7_experiment(args)
    if args.format == "prometheus":
        print(prometheus_text(result.metrics, prefix=args.prefix), end="")
    else:
        print(json.dumps(json_snapshot(result.metrics, prefix=args.prefix),
                         indent=2, sort_keys=True))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.export import decision_traces_to_jsonl, spans_to_jsonl

    result = _run_fig7_experiment(args, trace=args.spans is not None)
    traces = result.decision_traces
    shown = traces[-args.max:] if args.max and args.max > 0 else traces
    print(f"{len(traces)} decision trace(s); showing {len(shown)}")
    for trace in shown:
        print(f"\n[t={trace.time:.1f}s] {trace.app_key} "
              f"bundle={trace.bundle_name} trigger={trace.trigger!r}")
        print(f"  objective {trace.objective_before:.6g}s -> "
              f"{trace.objective_after:.6g}s; "
              f"chose {trace.chosen_option!r}")
        for candidate in trace.candidates:
            marker = "*" if candidate.chosen else " "
            reason = ("chosen" if candidate.chosen
                      else f"rejected: {candidate.rejection_reason}")
            print(f"  {marker} {candidate.option_name:>4}  "
                  f"predicted={candidate.predicted_seconds:.6g}s  "
                  f"friction={candidate.friction_cost_seconds:.6g}s  "
                  f"{reason}")
            if candidate.detail:
                print(f"        {candidate.detail}")
    if args.jsonl:
        with open(args.jsonl, "w", encoding="utf-8") as handle:
            handle.write(decision_traces_to_jsonl(traces))
        print(f"\nwrote {len(traces)} trace(s) to {args.jsonl}")
    if args.spans:
        with open(args.spans, "w", encoding="utf-8") as handle:
            handle.write(spans_to_jsonl(result.spans))
        print(f"wrote {len(result.spans)} span(s) to {args.spans}")
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    from repro.apps.parallel_experiment import (
        ParallelExperimentConfig,
        run_parallel_experiment,
    )

    result = run_parallel_experiment(ParallelExperimentConfig(
        app_count=args.apps,
        total_duration_seconds=1500.0 * (args.apps + 1)))
    for frame in result.frames:
        partition = "+".join(str(n) for n in frame.partition())
        print(f"  frame {frame.frame_index} "
              f"({frame.active_apps} app(s)): {partition}")
    return 0


def _build_serve_cluster(args: argparse.Namespace):
    """One cluster replica from the ``--nodes`` RSL (None if empty)."""
    from repro.cluster import Cluster
    from repro.rsl import NodeAdvertisement, build_script

    with open(args.nodes, encoding="utf-8") as handle:
        results = build_script(handle.read())
    adverts = [r for r in results if isinstance(r, NodeAdvertisement)]
    if not adverts:
        return None

    cluster = Cluster()
    for advert in adverts:
        memory = advert.memory if not math.isinf(advert.memory) else 1024.0
        cluster.add_node(advert.hostname, speed=advert.speed,
                         memory_mb=memory, os=advert.os or "linux",
                         attributes=dict(advert.attributes))
    hostnames = cluster.hostnames()
    for index, host_a in enumerate(hostnames):
        for host_b in hostnames[index + 1:]:
            cluster.add_link(host_a, host_b, args.bandwidth)
    return cluster


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.api import HarmonyServer
    from repro.controller import AdaptationController

    cluster = _build_serve_cluster(args)
    if cluster is None:
        print("error: no harmonyNode declarations found",
              file=sys.stderr)
        return 1
    hostnames = cluster.hostnames()

    if args.shards:
        if args.standby_of or args.fencing:
            print("error: --shards is mutually exclusive with "
                  "--standby-of/--fencing (shards journal per-directory; "
                  "see docs/federation.md)", file=sys.stderr)
            return 1
        return _serve_federation(args)

    if args.standby_of and not args.dir:
        print("error: --standby-of requires --dir", file=sys.stderr)
        return 1
    fencing = None
    if args.fencing:
        from repro.persistence import FencingStore

        fencing = FencingStore(args.fencing)

    standby = None
    if args.standby_of:
        from repro.api.transport import TcpTransport
        from repro.persistence import ReplicationStandby

        server_box: dict[str, HarmonyServer] = {}

        def adopt(controller: AdaptationController) -> None:
            bound = server_box.get("server")
            if bound is not None:
                bound.adopt_controller(controller)

        def surface_stream_error(message: dict) -> None:
            print(f"replication stream error from primary: "
                  f"{message.get('message') or message.get('type')}",
                  file=sys.stderr)

        standby = ReplicationStandby(
            args.dir, args.standby_id, fencing=fencing,
            lease_seconds=args.lease_seconds, on_controller=adopt,
            on_stream_error=surface_stream_error)
        # Serve read-only status from a placeholder controller until the
        # replica has caught up enough to build the real one.
        controller = standby.controller or AdaptationController(cluster)
        server = HarmonyServer(controller, standby=True,
                               failover_targets=[args.standby_of])
        server_box["server"] = server
        primary_host, _, primary_port = args.standby_of.rpartition(":")
        standby.follow(TcpTransport.connect(primary_host or "127.0.0.1",
                                            int(primary_port)))
    else:
        controller = AdaptationController(cluster)
        if args.dir:
            from repro.persistence import DurabilityJournal

            DurabilityJournal(args.dir).attach(controller)
        server = HarmonyServer(controller)

    if args.transport == "asyncio":
        from repro.api import AsyncHarmonyServer

        front = AsyncHarmonyServer(server)
        host, port = front.serve(args.host, args.port)
    else:
        front = server
        host, port = server.serve_tcp(args.host, args.port)
    role = "standby" if args.standby_of else "server"
    if args.dir and not args.standby_of:
        role = server.enable_replication(
            fencing=fencing, lease_seconds=args.lease_seconds,
            address=f"{host}:{port}")
    print(f"Harmony {role} on {host}:{port} ({args.transport}) managing "
          f"{len(hostnames)} node(s): {', '.join(hostnames)}")
    if args.standby_of:
        print(f"following primary at {args.standby_of} "
              f"as {args.standby_id!r}")
    if args.once:
        if standby is not None:
            standby.close()
        front.stop()
        return 0
    try:
        import time
        while True:  # pragma: no cover - interactive loop
            time.sleep(1.0)
    except KeyboardInterrupt:  # pragma: no cover
        if standby is not None:
            standby.close()
        front.stop()
    return 0


def _serve_federation(args: argparse.Namespace) -> int:
    """``serve --shards N``: N controller workers under a root arbiter.

    The arbiter binds on ``--host``/``--port`` and answers
    ``shard_lookup``; every shard gets its own cluster replica (a fresh
    build of the ``--nodes`` RSL) and an ephemeral port.  With ``--dir``,
    shard *i* journals under ``DIR/shard-i`` using the ordinary
    WAL/snapshot stack.
    """
    from repro.controller import AdaptationController
    from repro.controller.federation import Federation

    def controller_factory(_index: int) -> AdaptationController:
        return AdaptationController(_build_serve_cluster(args))

    federation = Federation(controller_factory, args.shards,
                            directory=args.dir,
                            lease_seconds=args.lease_seconds)
    fronts = []

    def start(server):
        port = args.port if server is federation.arbiter_server else 0
        if args.transport == "asyncio":
            from repro.api import AsyncHarmonyServer

            front = AsyncHarmonyServer(server)
            fronts.append(front)
            return front.serve(args.host, port)
        fronts.append(server)
        return server.serve_tcp(args.host, port)

    arbiter_address = federation.serve(start)
    hostnames = federation.shards[0].controller.cluster.hostnames()
    print(f"Harmony federation arbiter on {arbiter_address} "
          f"({args.transport}); {args.shards} shard(s), each managing "
          f"{len(hostnames)} node(s)")
    for shard in federation.shards:
        journal = f" journal={shard.journal_dir}" if shard.journal_dir \
            else ""
        print(f"  shard {shard.index} on {shard.address}{journal}")
    cross = sorted(federation.arbiter.cross_shard_hosts)
    if cross:
        print(f"  cross-shard (arbiter-owned) hosts: {', '.join(cross)}")
    if args.rebalance_seconds > 0 and not args.once:
        federation.start_rebalancer(period_seconds=args.rebalance_seconds)
    if args.once:
        federation.stop()
        for front in fronts:
            front.stop()
        return 0
    try:
        import time
        while True:  # pragma: no cover - interactive loop
            time.sleep(1.0)
    except KeyboardInterrupt:  # pragma: no cover
        federation.stop()
        for front in fronts:
            front.stop()
    return 0


def _cmd_shards(args: argparse.Namespace) -> int:
    from repro.api import HarmonyClient
    from repro.api.transport import TcpTransport

    if not args.app and not args.resume_key:
        print("error: shards needs --app or --resume-key to resolve",
              file=sys.stderr)
        return 1
    host, _, port = args.connect.rpartition(":")
    client = HarmonyClient(TcpTransport.connect(host or "127.0.0.1",
                                                int(port)))
    try:
        reply = client.locate_shard(app_name=args.app,
                                    resume_key=args.resume_key)
    finally:
        client.transport.close()
    shards = reply.get("shards", [])
    leader = reply.get("leader")
    print(f"{args.connect}: {len(shards)} shard(s)")
    for entry in shards:
        marker = "*" if entry.get("address") == leader else " "
        print(f"  {marker} shard {entry.get('index')}: "
              f"{entry.get('address')}")
    if leader:
        target = args.resume_key or args.app
        print(f"{target!r} is owned by {leader}")
    return 0


def _cmd_promote(args: argparse.Namespace) -> int:
    from repro.persistence import ReplicationStandby

    fencing = None
    if args.fencing:
        from repro.persistence import FencingStore

        fencing = FencingStore(args.fencing)
    standby = ReplicationStandby(args.dir, args.standby_id,
                                 fencing=fencing,
                                 lease_seconds=args.lease_seconds)
    controller = standby.promote()
    status = standby.status()
    print(f"{args.dir}: promoted {args.standby_id!r} to primary at "
          f"term {status['term']} (last_seq {status['last_seq']})")
    print(f"{len(controller.registry)} application(s); "
          f"objective {controller.current_objective():.6g}s")
    controller.journal.close()
    return 0


def _cmd_replication(args: argparse.Namespace) -> int:
    from repro.api import HarmonyClient
    from repro.api.transport import TcpTransport

    host, _, port = args.connect.rpartition(":")
    client = HarmonyClient(TcpTransport.connect(host or "127.0.0.1",
                                                int(port)))
    replication = client.query_status()["replication"]
    client.transport.close()
    print(f"{args.connect}: role={replication.get('role', '?')} "
          f"term={replication.get('term', 0)} "
          f"last_seq={replication.get('last_seq', 0)}")
    standbys = replication.get("standbys", [])
    if not standbys:
        print("  no connected standbys")
    for entry in standbys:
        print(f"  standby {entry.get('standby_id', '?')}: "
              f"acked_seq={entry.get('acked_seq', 0)} "
              f"lag={entry.get('lag_records', 0)} record(s)")
    return 0


_DEMO_RSL = """
harmonyBundle {name} where {{
    {{small {{node worker {{os linux}} {{seconds 5}} {{memory 16}}}}}}
    {{big {{node worker {{os linux}} {{seconds 3}} {{memory 64}}}}}}}}
"""


def _cmd_checkpoint(args: argparse.Namespace) -> int:
    from repro.cluster import Cluster
    from repro.controller import AdaptationController
    from repro.persistence import (
        CrashPoint,
        DurabilityJournal,
        ScriptedCrashSchedule,
        SimulatedCrash,
        snapshot_files,
    )

    schedule = None
    if args.kill_after is not None:
        schedule = ScriptedCrashSchedule(
            {args.kill_after: CrashPoint.TORN_APPEND})

    controller = AdaptationController(
        Cluster.full_mesh(["n0", "n1", "n2", "n3"], memory_mb=256))
    journal = DurabilityJournal(args.dir,
                                snapshot_every=args.snapshot_every,
                                crash_schedule=schedule)
    journal.attach(controller)
    crashed = False
    try:
        for index in range(args.apps):
            instance = controller.register_app(f"app{index}")
            controller.setup_bundle(instance,
                                    _DEMO_RSL.format(name=f"app{index}"))
        controller.handle_node_failure("n0")
        controller.handle_node_restored("n0")
        controller.configure_stranded()
    except SimulatedCrash as crash:
        crashed = True
        print(f"simulated crash: torn write on WAL append "
              f"#{crash.append_index} — run restore to repair")
    journal.close()

    print(f"{args.dir}: {journal.wal.append_count} append(s), "
          f"{journal.wal.bytes_written} byte(s), "
          f"{len(snapshot_files(args.dir))} snapshot(s)")
    if not crashed:
        print(f"{len(controller.registry)} application(s) journaled; "
              f"objective {controller.current_objective():.6g}s")
    return 0


def _cmd_restore(args: argparse.Namespace) -> int:
    from repro.controller import AdaptationController

    controller = AdaptationController.restore(args.dir)
    report = controller.last_recovery
    snapshot = (f"snapshot seq {report.snapshot_seq}"
                if report.snapshot_path else "no snapshot (genesis)")
    print(f"{args.dir}: restored from {snapshot} + "
          f"{report.records_replayed} replayed record(s) "
          f"in {report.recovery_seconds:.3f}s")
    if report.skipped_snapshots:
        print(f"  skipped {len(report.skipped_snapshots)} "
              f"corrupt snapshot(s)")
    retried = controller.configure_stranded()
    if retried:
        print(f"  reconfigured {retried} stranded bundle(s)")
    print(f"{len(controller.registry)} application(s); "
          f"objective {controller.current_objective():.6g}s")
    for instance in controller.registry.instances():
        if not instance.bundles:
            print(f"  {instance.key}: no bundles (registration survived "
                  f"the crash; the bundle record did not)")
        for bundle_name, state in sorted(instance.bundles.items()):
            if state.chosen is None:
                print(f"  {instance.key} {bundle_name}: unconfigured")
            else:
                hosts = ",".join(sorted(
                    state.chosen.assignment.hostnames()))
                print(f"  {instance.key} {bundle_name}: "
                      f"{state.chosen.option_name} on {hosts}")
    controller.journal.close()
    return 0


_CHAOS_RSL = """
harmonyBundle DBclient where {{
    {{QS {{node server {{hostname server0}} {{seconds 9}} {{memory 20}}}}
        {{node client {{hostname {host}}} {{seconds 1}} {{memory 2}}}}
        {{link client server 2}}}}
    {{DS {{node server {{hostname server0}} {{seconds 1}} {{memory 20}}}}
        {{node client {{hostname {host}}} {{memory >=32}} {{seconds 18}}}}
        {{link client server 51}}}}}}
"""


def _run_chaos_demo(seed: int | None):
    """Drive a small seeded-chaos cohort against a local TCP server.

    Three database clients join over real sockets; one link is wrapped
    in a seeded fault schedule (drops on the send side, healed by the
    client's retry loop), metric reports feed the coalescing scheduler,
    and the whole run is observed by the always-on samplers: lock
    wait/hold, scheduler batch latency and backlog, and the flight
    recorder.  Returns the controller (server stopped) — its metric
    interface holds the histograms, its ``flight_recorder`` the event
    ring.  Deterministic for a given seed (``None`` injects no faults).
    """
    from repro.api import (
        FaultyTransport,
        HarmonyClient,
        HarmonyServer,
        RetryPolicy,
        SeededFaultSchedule,
        VariableType,
    )
    from repro.api.transport import TcpTransport
    from repro.cluster import Cluster
    from repro.controller import AdaptationController, ClientCountRulePolicy

    policy = ClientCountRulePolicy(
        app_name="DBclient", bundle_name="where", threshold=3,
        below_option="QS", at_or_above_option="DS")
    cluster = Cluster.star("server0", ["c1", "c2", "c3"], memory_mb=128)
    controller = AdaptationController(cluster, policy=policy)
    server = HarmonyServer(controller)
    host, port = server.serve_tcp("127.0.0.1", 0)
    server.start_scheduler(coalesce_window=0.02, max_delay=0.2)
    retry = RetryPolicy(request_timeout_seconds=2.0, max_attempts=6,
                        backoff_initial_seconds=0.05)
    clients = []
    try:
        for client_host in ("c1", "c2", "c3"):
            transport = TcpTransport.connect(host, port)
            if seed is not None and client_host == "c2":
                # Perturb exactly one link: outbound drops only, so a
                # timed-out request never has a late reply in flight.
                transport = FaultyTransport(
                    transport,
                    SeededFaultSchedule(seed=seed, drop_rate=0.3,
                                        directions=frozenset({"send"})),
                    metrics=controller.metrics,
                    recorder=controller.flight_recorder)
            client = HarmonyClient(transport, retry_policy=retry)
            client.startup("DBclient")
            client.bundle_setup(_CHAOS_RSL.format(host=client_host))
            client.add_variable("where.option", "??", VariableType.STRING)
            clients.append(client)
        # A burst of metric reports: coalesces into scheduler batches.
        for round_index in range(3):
            for index, client in enumerate(clients):
                client.report_metric("latency_ms",
                                     10.0 + index + round_index)
        generation = server.scheduler.request("cli:flush")
        server.scheduler.wait_for_generation(generation, timeout=10.0)
        for client in clients:
            client.end()
    finally:
        server.stop()
    return controller


def _cmd_health(args: argparse.Namespace) -> int:
    from repro.obs.health import evaluate_health, format_health

    if args.connect:
        from repro.api import HarmonyClient
        from repro.api.transport import TcpTransport

        host, _, port = args.connect.rpartition(":")
        client = HarmonyClient(TcpTransport.connect(host or "127.0.0.1",
                                                    int(port)))
        histograms = client.query_status()["histograms"]
        client.transport.close()
        print(f"{args.connect}: {len(histograms)} histogram(s)")
    else:
        controller = _run_chaos_demo(seed=None)
        histograms = {name: hist.snapshot()
                      for name, hist in controller.metrics.histograms()}
        print(f"local demo workload: {len(histograms)} histogram(s)")
    results = evaluate_health(histograms)
    print(format_health(results))
    breaches = [r for r in results if r.breached]
    if breaches:
        print(f"{len(breaches)} SLO breach(es)")
        return 2 if args.strict else 0
    print("all SLOs within thresholds")
    return 0


def _cmd_flightrec(args: argparse.Namespace) -> int:
    controller = _run_chaos_demo(seed=args.seed)
    recorder = controller.flight_recorder
    counts = recorder.counts()
    print(f"seed {args.seed}: {len(recorder)} event(s) in the ring "
          f"({recorder.events_recorded} recorded)")
    for kind in sorted(counts):
        print(f"  {kind:>20}: {counts[kind]}")
    if args.out:
        recorder.dump(args.out)
        print(f"wrote {len(recorder)} event(s) to {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
