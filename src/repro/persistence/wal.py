"""Append-only write-ahead log with framed, checksummed JSON records.

One record per line::

    <length:8 hex> <crc32:8 hex> <payload JSON>\\n

``length`` is the byte count of the UTF-8 payload, ``crc32`` its checksum
(:func:`zlib.crc32`).  The payload itself carries a contiguous sequence
number, the simulation timestamp, the event kind, and the event data::

    {"seq": 7, "t": 12.5, "kind": "apply", "data": {...}}

The framing makes corruption *classifiable* on open:

* a bad final record with nothing valid after it is a **torn tail** — the
  normal artifact of a crash mid-append — and is truncated away;
* a bad record **followed by** a well-formed one, or a gap in the
  sequence numbers, means the middle of the log rotted: recovery must not
  guess, so :class:`~repro.errors.WalCorruptionError` is raised.

Appends are a single ``write()`` of the full frame followed by ``flush``
and (policy-permitting) ``fsync`` — the strongest atomicity a regular
file offers.  Compaction (after a snapshot) rewrites the retained suffix
to a temporary file and atomically renames it into place.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from typing import Any, Iterable

from repro.errors import WalCorruptionError
from repro.persistence.crash import CrashPoint, CrashSchedule, SimulatedCrash

__all__ = ["WalRecord", "WriteAheadLog", "scan_wal", "encode_record",
           "decode_frame"]

#: ``fsync`` policies: "always" syncs every append (durable against power
#: loss), "never" leaves flushing to the OS (tests, benchmarks).
FSYNC_POLICIES = ("always", "never")

_HEADER_LEN = 18  # "xxxxxxxx xxxxxxxx "


@dataclass(frozen=True)
class WalRecord:
    """One decoded log record."""

    seq: int
    time: float
    kind: str
    data: dict[str, Any]


def encode_record(record: WalRecord) -> bytes:
    """Frame one record as a length- and checksum-prefixed line."""
    payload = json.dumps(
        {"seq": record.seq, "t": record.time, "kind": record.kind,
         "data": record.data},
        sort_keys=True, separators=(",", ":")).encode("utf-8")
    header = f"{len(payload):08x} {zlib.crc32(payload):08x} "
    return header.encode("ascii") + payload + b"\n"


def _decode_line(line: bytes) -> WalRecord | None:
    """Decode one framed line; ``None`` when the frame does not verify."""
    if len(line) < _HEADER_LEN + 2:  # header + "{}" at minimum
        return None
    header, payload = line[:_HEADER_LEN], line[_HEADER_LEN:]
    try:
        length = int(header[0:8], 16)
        crc = int(header[9:17], 16)
    except ValueError:
        return None
    if header[8:9] != b" " or header[17:18] != b" ":
        return None
    if len(payload) != length or zlib.crc32(payload) != crc:
        return None
    try:
        body = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(body, dict) or not isinstance(body.get("data"), dict):
        return None
    try:
        return WalRecord(seq=int(body["seq"]), time=float(body["t"]),
                         kind=str(body["kind"]), data=body["data"])
    except (KeyError, TypeError, ValueError):
        return None


def decode_frame(line: bytes) -> WalRecord | None:
    """Decode one framed line (sans newline); ``None`` if it fails to verify.

    This is the replication receive path: a standby re-runs the same
    length/CRC verification over the exact bytes the primary wrote, so a
    frame damaged anywhere between the primary's disk and the standby's
    is rejected rather than applied.
    """
    return _decode_line(line)


def scan_wal(path: str) -> tuple[list[WalRecord], int]:
    """Validate a log file; returns ``(records, valid_byte_count)``.

    ``valid_byte_count`` is the offset up to which the file verified —
    anything beyond it is a torn tail the caller may truncate.  Raises
    :class:`~repro.errors.WalCorruptionError` for mid-file damage (a bad
    record with valid records after it) or sequence-number gaps, which a
    crash cannot produce and truncation cannot fix.
    """
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except FileNotFoundError:
        return [], 0

    records: list[WalRecord] = []
    offset = 0
    valid_bytes = 0
    lines = raw.split(b"\n")
    # split() leaves a trailing "" when the file ends with a newline; a
    # non-empty final element is an unterminated (torn) last line.
    for index, line in enumerate(lines):
        is_last = index == len(lines) - 1
        if is_last and line == b"":
            break
        record = None if is_last else _decode_line(line)
        if not is_last and record is None:
            # A bad record mid-file: torn tail only if *nothing* after it
            # verifies; otherwise the log rotted and cannot be trusted.
            for later in lines[index + 1:]:
                if later and _decode_line(later) is not None:
                    raise WalCorruptionError(
                        f"{path}: corrupt record at byte {offset} with "
                        f"valid records after it")
            break
        if is_last:
            break  # unterminated final line: torn tail
        expected = records[-1].seq + 1 if records else record.seq
        if record.seq != expected:
            raise WalCorruptionError(
                f"{path}: sequence gap — expected seq {expected}, "
                f"found {record.seq}")
        records.append(record)
        offset += len(line) + 1
        valid_bytes = offset
    return records, valid_bytes


class WriteAheadLog:
    """The append/replay handle over one log file.

    ``fsync`` selects the durability policy (see :data:`FSYNC_POLICIES`).
    ``crash_schedule`` injects :class:`SimulatedCrash` at append
    boundaries for the recovery tests.  Opening an existing file
    validates it (:func:`scan_wal`) and truncates any torn tail in place.
    """

    def __init__(self, path: str, fsync: str = "always",
                 crash_schedule: CrashSchedule | None = None):
        if fsync not in FSYNC_POLICIES:
            raise ValueError(f"unknown fsync policy {fsync!r}")
        self.path = path
        self.fsync = fsync
        self.crash_schedule = crash_schedule
        self._crashed: SimulatedCrash | None = None
        self.append_count = 0
        self.bytes_written = 0
        existing, valid_bytes = scan_wal(path)
        self._records: list[WalRecord] = existing
        # Sequence numbers survive compaction: the next seq continues
        # from the highest ever appended, not from what is still on disk.
        self._last_seq = existing[-1].seq if existing else 0
        try:
            size = os.path.getsize(path)
        except OSError:
            size = 0
        if size > valid_bytes:
            with open(path, "r+b") as handle:
                handle.truncate(valid_bytes)
        self._handle = open(path, "ab")

    @property
    def next_seq(self) -> int:
        return self._last_seq + 1

    @property
    def first_seq(self) -> int | None:
        return self._records[0].seq if self._records else None

    def records(self) -> list[WalRecord]:
        return list(self._records)

    def append(self, kind: str, time: float,
               data: dict[str, Any]) -> WalRecord:
        """Durably append one record (the only mutation path).

        The crash schedule, when armed, fires here: before the write, as
        a torn partial write, or after the record is durable.  A crash is
        the death of the whole process, not of one thread: once a point
        has fired, every later append on this handle dies too.  Without
        the latch a concurrent writer could slip a record past the crash
        instant — and, because the fatal append never ran its observers,
        ship the successor of a record that was never shipped, handing
        replicas an unfixable sequence gap.
        """
        if self._crashed is not None:
            raise SimulatedCrash(self._crashed.point,
                                 self._crashed.append_index)
        record = WalRecord(seq=self.next_seq, time=time, kind=kind,
                           data=dict(data))
        frame = encode_record(record)
        index = self.append_count
        self.append_count += 1
        point = self.crash_schedule.decide(index) \
            if self.crash_schedule is not None else None
        if point is CrashPoint.BEFORE_APPEND:
            self._crashed = SimulatedCrash(point, index)
            raise self._crashed
        if point is CrashPoint.TORN_APPEND:
            torn = frame[:max(1, len(frame) // 2)]
            self._handle.write(torn)
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._crashed = SimulatedCrash(point, index)
            raise self._crashed
        self._handle.write(frame)
        self._handle.flush()
        if self.fsync == "always":
            os.fsync(self._handle.fileno())
        self._records.append(record)
        self._last_seq = record.seq
        self.bytes_written += len(frame)
        if point is CrashPoint.AFTER_APPEND:
            self._crashed = SimulatedCrash(point, index)
            raise self._crashed
        return record

    def append_record(self, record: WalRecord) -> WalRecord:
        """Durably append an already-sequenced record verbatim.

        The replication apply path: a standby persists the primary's
        records under the primary's sequence numbers instead of minting
        its own.  Contiguity is enforced — a gap means records were lost
        in flight, which truncation cannot fix, so it raises
        :class:`~repro.errors.WalCorruptionError` (the standby reacts by
        re-requesting from its last acknowledged seq).  Any starting seq
        is accepted on an empty log (the standby may have been seeded
        from a snapshot past genesis).  Crash schedules do not apply —
        this is not the decision path.
        """
        if self._records and record.seq != self._records[-1].seq + 1:
            raise WalCorruptionError(
                f"{self.path}: replicated record seq {record.seq} does "
                f"not follow {self._records[-1].seq}")
        frame = encode_record(record)
        self._handle.write(frame)
        self._handle.flush()
        if self.fsync == "always":
            os.fsync(self._handle.fileno())
        self._records.append(record)
        self._last_seq = max(self._last_seq, record.seq)
        self.append_count += 1
        self.bytes_written += len(frame)
        return record

    def compact(self, keep_from_seq: int) -> int:
        """Drop records with ``seq < keep_from_seq``; returns bytes freed.

        Rewrites the retained suffix to ``<path>.tmp`` and atomically
        renames it over the log, so a crash mid-compaction leaves either
        the old or the new file — never a mix.
        """
        kept = [r for r in self._records if r.seq >= keep_from_seq]
        if len(kept) == len(self._records):
            return 0
        tmp_path = self.path + ".tmp"
        with open(tmp_path, "wb") as tmp:
            for record in kept:
                tmp.write(encode_record(record))
            tmp.flush()
            os.fsync(tmp.fileno())
        self._handle.close()
        os.replace(tmp_path, self.path)
        _fsync_directory(os.path.dirname(self.path))
        before = sum(len(encode_record(r)) for r in self._records)
        after = sum(len(encode_record(r)) for r in kept)
        self._records = kept
        self._handle = open(self.path, "ab")
        return before - after

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def _fsync_directory(directory: str) -> None:
    """Make a rename durable (best effort on platforms that allow it)."""
    try:
        fd = os.open(directory or ".", os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def replay_order(records: Iterable[WalRecord]) -> list[WalRecord]:
    """Records sorted for replay (they are already, but be explicit)."""
    return sorted(records, key=lambda record: record.seq)
