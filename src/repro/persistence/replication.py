"""Primary/standby replication: WAL shipping, fencing, and promotion.

PR 4 made the controller durable across restarts; this module makes it
survivable without one.  A **primary** (a normal durable controller)
streams every WAL record it appends — the exact CRC-framed bytes it
wrote to disk — to one or more **standbys**, which persist the records
under the primary's sequence numbers and replay them against a hot
controller with the optimizer held inert (the same result-sourced
replay as crash recovery, just continuous).  A standby that joins late
or falls behind the primary's compaction horizon is caught up from the
newest snapshot, then follows the tail.

Failover is **term-fenced**.  A :class:`FencingStore` is a tiny shared
record (a file on storage both sides can reach) holding a monotonically
increasing ``term``, the current holder, and a lease deadline.  The
primary acquires the lease when replication is enabled and renews it
while alive; a standby may only :meth:`~ReplicationStandby.promote`
once that lease has expired, which bumps the term.  Terms are journaled
in the WAL (``term`` records) and stamped on every wire reply, so a
deposed primary that comes back compares its journaled term against the
fencing record, sees it lost, and demotes to a redirecting standby
instead of split-braining — stale-term mutations are refused with the
typed, retryable ``controller_moved`` redirect.

Safety invariants:

* **Ship-after-durable**: records are shipped from the journal's
  append observer, which runs after the local fsync — a standby can
  never hold a record the primary might lose.
* **Verify end-to-end**: frames travel as the on-disk bytes and the
  standby re-runs the same length/CRC verification before applying.
* **Gaps never guess**: a missing or damaged frame makes the standby
  re-hello from its last applied sequence number; it never applies
  around a hole (mirroring :func:`~repro.persistence.wal.scan_wal`).
* **Histories must match before a tail is served**: ``repl_hello``
  carries the frame CRC of the standby's newest record, and the primary
  serves the tail only when that record is in its own history.  A
  divergent suffix — a deposed primary's durable-but-never-shipped
  record under a sequence number the new history reused — is answered
  with a forced snapshot ``reset`` that truncates it, never silently
  kept.
* **Terms are durable before they are served**: promotion journals the
  new term before the controller answers as primary.
"""

from __future__ import annotations

import contextlib
import json
import os
import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

try:
    import fcntl
except ImportError:  # pragma: no cover - non-posix: best-effort fencing
    fcntl = None  # type: ignore[assignment]

from repro.api.protocol import (
    REPL_ACK,
    REPL_HELLO,
    REPL_RECORDS,
    REPL_SNAPSHOT,
    make_message,
    require_field,
)
from repro.api.transport import Transport
from repro.errors import (
    ControllerBusyError,
    ProtocolError,
    RecoveryError,
    ReplicationError,
    TransportError,
)
from repro.metrics.histogram import COUNT_BOUNDS
from repro.obs.flightrec import EVENT_PROMOTION, EVENT_REPLICATION
from repro.persistence import codec
from repro.persistence.journal import DurabilityJournal
from repro.persistence.recovery import (
    _apply_record,
    _base_state,
    _ReplayPolicy,
)
from repro.persistence.snapshot import (
    latest_snapshot,
    snapshot_files,
    write_snapshot,
)
from repro.persistence.wal import (
    WalRecord,
    WriteAheadLog,
    decode_frame,
    encode_record,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.controller.controller import AdaptationController

__all__ = ["FencingStore", "FencingRecord", "ReplicationPrimary",
           "ReplicationStandby"]


# --------------------------------------------------------------------------
# Fencing
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class FencingRecord:
    """One read of the shared fencing state."""

    term: int
    holder: str
    address: str | None
    lease_expires_at: float
    lease_seconds: float


_EMPTY = FencingRecord(term=0, holder="", address=None,
                       lease_expires_at=0.0, lease_seconds=0.0)


class FencingStore:
    """The shared election record: one term, one holder, one lease.

    Stored as a single JSON file written atomically (tmp + fsync +
    rename), so readers always see a complete record.  The ``clock`` is
    injectable — the failover tests drive lease expiry deterministically
    instead of sleeping.  It defaults to ``time.monotonic``, matching
    the primary/standby machinery: a wall clock here would let an NTP
    step prematurely lapse the lease (electing two primaries) or
    indefinitely extend it (electing none).

    Cross-process caveat: ``time.monotonic`` has an arbitrary per-boot,
    per-OS epoch, so the absolute ``lease_expires_at`` stored in the
    record is only meaningful to processes sharing that epoch — i.e.
    processes on the *same machine*, which is also what a same-host
    flock requires.  A multi-host deployment must inject a shared clock
    (and a real coordination service); see docs/replication.md.

    This is deliberately the simplest thing that fences: both sides must
    be able to reach the same file (shared storage), exactly like the
    classic "STONITH via shared disk" arrangement.  A consensus service
    could replace it without touching the protocol above it.

    :meth:`acquire` and :meth:`renew` are read-modify-write cycles, so
    they serialize on an ``flock`` over a sibling ``.lock`` file — two
    standbys that both watched the same lease expire contend on the
    lock, and the loser re-reads a record that already moved to the
    winner's term and is refused.  Without this, both could write
    ``term+1`` naming themselves holder and split-brain.
    """

    def __init__(self, path: str,
                 clock: Callable[[], float] = time.monotonic):
        self.path = path
        self.clock = clock

    @contextlib.contextmanager
    def _exclusive(self):
        """Serialize read-modify-write cycles across processes."""
        if fcntl is None:  # pragma: no cover - non-posix: best effort
            yield
            return
        with open(self.path + ".lock", "a+", encoding="utf-8") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    def read(self) -> FencingRecord:
        try:
            with open(self.path, encoding="utf-8") as handle:
                raw = json.load(handle)
        except (FileNotFoundError, ValueError):
            return _EMPTY
        try:
            return FencingRecord(
                term=int(raw["term"]), holder=str(raw["holder"]),
                address=raw.get("address"),
                lease_expires_at=float(raw["lease_expires_at"]),
                lease_seconds=float(raw.get("lease_seconds", 0.0)))
        except (KeyError, TypeError, ValueError):
            return _EMPTY

    def expired(self, now: float | None = None) -> bool:
        """Whether the current holder's lease has lapsed."""
        record = self.read()
        if record.term == 0:
            return True
        now = self.clock() if now is None else now
        return now >= record.lease_expires_at

    def acquire(self, holder: str, lease_seconds: float = 30.0,
                address: str | None = None,
                now: float | None = None) -> int:
        """Take the lease, bumping the term; returns the new term.

        Refused (:class:`~repro.errors.ReplicationError`) while another
        holder's lease is still live — a standby cannot depose a
        healthy primary.  Re-acquiring one's own live lease is allowed
        (a restarting primary whose lease has not yet lapsed) and still
        bumps the term, so every acquisition is a distinct epoch.
        """
        with self._exclusive():
            record = self.read()
            now = self.clock() if now is None else now
            if record.term > 0 and record.holder != holder \
                    and now < record.lease_expires_at:
                raise ReplicationError(
                    f"fencing lease held by {record.holder!r} (term "
                    f"{record.term}) for another "
                    f"{record.lease_expires_at - now:.1f}s")
            term = record.term + 1
            self._write(FencingRecord(
                term=term, holder=holder, address=address,
                lease_expires_at=now + lease_seconds,
                lease_seconds=lease_seconds))
            return term

    def renew(self, holder: str, term: int,
              now: float | None = None) -> None:
        """Extend the lease; refuses if the record moved to a new term.

        The refusal is the deposed primary's signal: someone else holds
        a higher term, so this process must demote, not keep serving.
        """
        with self._exclusive():
            record = self.read()
            if record.term != term or record.holder != holder:
                raise ReplicationError(
                    f"cannot renew term {term} as {holder!r}: fencing "
                    f"record is at term {record.term} held by "
                    f"{record.holder!r}")
            now = self.clock() if now is None else now
            self._write(FencingRecord(
                term=record.term, holder=record.holder,
                address=record.address,
                lease_expires_at=now + record.lease_seconds,
                lease_seconds=record.lease_seconds))

    def _write(self, record: FencingRecord) -> None:
        payload = json.dumps({
            "term": record.term, "holder": record.holder,
            "address": record.address,
            "lease_expires_at": record.lease_expires_at,
            "lease_seconds": record.lease_seconds,
        }, sort_keys=True)
        tmp_path = self.path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self.path)


# --------------------------------------------------------------------------
# Primary side: ship the WAL
# --------------------------------------------------------------------------

@dataclass
class _StandbyLink:
    """The primary's view of one connected standby."""

    standby_id: str
    transport: Transport
    acked_seq: int
    shipped_at: dict[int, float] = field(default_factory=dict)


def _frame_text(record: WalRecord) -> str:
    """A record as its on-disk framed line (sans newline), wire-safe."""
    return encode_record(record)[:-1].decode("ascii")


def _frame_crc(record: WalRecord) -> str:
    """The CRC32 of a record's full on-disk frame (the log-match token)."""
    return f"{zlib.crc32(encode_record(record)):08x}"


def _state_message(term: int, last_seq: int, state: dict[str, Any],
                   reset: bool = False) -> dict[str, Any]:
    text = json.dumps(state, sort_keys=True, separators=(",", ":"))
    message = make_message(
        REPL_SNAPSHOT, term=term, last_seq=int(last_seq),
        crc=f"{zlib.crc32(text.encode('utf-8')):08x}", state=text)
    if reset:
        # The receiver must discard its (divergent) log and adopt this
        # state even if its own sequence number is at or past last_seq.
        message["reset"] = True
    return message


class ReplicationPrimary:
    """Streams an attached journal's appends to connected standbys.

    Construct with the primary's (attached) journal and controller, then
    :meth:`install` taps the journal's append and snapshot observers.
    The server routes ``repl_hello``/``repl_ack`` messages here; outside
    a server, call :meth:`handle_hello`/:meth:`handle_ack` directly
    (under whatever lock serializes controller mutations — shipping
    happens on the appending thread, so hello must not race an append).

    A standby whose transport fails is dropped; it is expected to
    reconnect and re-hello from its last durable sequence number.
    Shipping runs on the appending thread, so each link's transport is
    armed with ``ship_timeout`` at hello time — a standby whose socket
    stalls (peer stopped reading) is dropped after that bound instead of
    wedging primary mutations indefinitely.
    ``replication.lag_records`` (a count histogram) is observed on every
    ship with each live standby's ack backlog, and
    ``replication.ack_seconds`` with the ship→ack round trip.
    """

    def __init__(self, journal: DurabilityJournal,
                 controller: "AdaptationController",
                 clock: Callable[[], float] = time.monotonic,
                 ship_timeout: float | None = 5.0):
        self.journal = journal
        self.controller = controller
        self.clock = clock
        self.ship_timeout = ship_timeout
        self._links: dict[str, _StandbyLink] = {}
        self._lock = threading.Lock()
        metrics = controller.metrics
        self._lag_hist = metrics.histogram("replication.lag_records",
                                           bounds=COUNT_BOUNDS)
        self._ack_hist = metrics.histogram("replication.ack_seconds")
        self._installed = False

    def install(self) -> "ReplicationPrimary":
        """Tap the journal: every durable append ships, snapshots offer."""
        if not self._installed:
            self.journal.add_append_observer(self._on_append)
            self.journal.add_snapshot_observer(self._on_snapshot)
            self._installed = True
        return self

    # -- wire entry points --------------------------------------------------

    def handle_hello(self, transport: Transport,
                     message: dict[str, Any]) -> None:
        """Adopt (or re-adopt) a standby and send whatever it is missing.

        First the log-matching check: the hello carries the frame CRC
        of the standby's newest record (``last_crc``), and the tail is
        served only when that exact record is in this primary's
        history.  A mismatch — a deposed primary rejoining with a
        durable record that never shipped before the new history reused
        its sequence number — is answered with a forced snapshot
        ``reset`` so the standby truncates its divergent suffix instead
        of silently keeping it under the new tail.

        Then the catch-up decision: if the standby's next needed record
        is still in the WAL, ship the tail; if it fell behind the
        compaction horizon, ship the newest snapshot first (the
        compaction invariant — the WAL is only compacted to the oldest
        *retained* snapshot — guarantees one covers the gap), then the
        tail after it.
        """
        standby_id = str(require_field(message, "standby_id"))
        last_seq = int(require_field(message, "last_seq"))
        transport.set_send_timeout(self.ship_timeout)
        records = self.journal.wal.records()
        need_from = last_seq + 1
        horizon = records[0].seq if records else self.journal.wal.next_seq
        replies: list[dict[str, Any]] = []
        diverged = self._diverged(last_seq, message.get("last_crc"),
                                  records)
        if diverged is not None:
            self.controller.metrics.increment(
                "replication.divergent_rejoins", self.controller.now)
            self._record_event(
                "standby_diverged", standby_id=standby_id,
                at_seq=last_seq,
                standby_term=int(message.get("last_term", 0)),
                reason=diverged)
            snap_seq, state = self._reset_snapshot(standby_id, last_seq)
            replies.append(_state_message(self.term, snap_seq, state,
                                          reset=True))
            need_from = snap_seq + 1
        elif need_from < horizon:
            snapshot = latest_snapshot(self.journal.directory)
            if snapshot is None:
                raise ReplicationError(
                    f"standby {standby_id!r} needs seq {need_from} but "
                    f"the WAL starts at {horizon} and no snapshot "
                    f"verifies")
            snap_seq, state, _path = snapshot
            replies.append(_state_message(self.term, snap_seq, state))
            need_from = snap_seq + 1
        frames = [_frame_text(r) for r in records if r.seq >= need_from]
        # An empty frame list still answers the hello: it tells the
        # standby it is current (and carries the primary's term).
        replies.append(make_message(REPL_RECORDS, term=self.term,
                                    frames=frames))
        link = _StandbyLink(standby_id=standby_id, transport=transport,
                            acked_seq=last_seq)
        with self._lock:
            self._links[standby_id] = link
        self._record_event("standby_joined", standby_id=standby_id,
                           from_seq=last_seq)
        for reply in replies:
            self._ship(link, reply)

    def handle_ack(self, message: dict[str, Any]) -> None:
        standby_id = str(require_field(message, "standby_id"))
        seq = int(require_field(message, "seq"))
        shipped_at: float | None = None
        with self._lock:
            link = self._links.get(standby_id)
            if link is None:
                return
            link.acked_seq = max(link.acked_seq, seq)
            for shipped in [s for s in link.shipped_at if s <= seq]:
                shipped_at = link.shipped_at.pop(shipped)
        if shipped_at is not None:
            self._ack_hist.observe(max(0.0, self.clock() - shipped_at))
        self.controller.metrics.increment("replication.acks",
                                          self.controller.now)

    # -- log matching -------------------------------------------------------

    def _diverged(self, last_seq: int, last_crc: Any,
                  records: list[WalRecord]) -> str | None:
        """Why the standby's newest record is not in this history.

        ``None`` means the histories match (or the hello carried no
        ``last_crc`` to check — an empty standby, or one that just
        adopted a snapshot and holds no local records that could
        diverge).
        """
        if last_crc is None or last_seq <= 0:
            return None
        newest = records[-1].seq if records else \
            self.journal.wal.next_seq - 1
        if last_seq > newest:
            return (f"standby holds seq {last_seq} beyond this "
                    f"history's newest {newest}")
        mine = next((r for r in records if r.seq == last_seq), None)
        if mine is None:
            # Compacted away: the match cannot be verified, and an
            # unverified suffix must not be built upon.
            return (f"seq {last_seq} is below the compaction horizon "
                    f"and cannot be verified")
        if _frame_crc(mine) != str(last_crc):
            return f"frame CRC mismatch at seq {last_seq}"
        return None

    def _reset_snapshot(self, standby_id: str,
                        last_seq: int) -> tuple[int, dict[str, Any]]:
        """The snapshot a divergent standby is reset from (forced fresh
        if none exists yet — the caller holds the controller lock)."""
        snapshot = latest_snapshot(self.journal.directory)
        if snapshot is None:
            self.journal.snapshot_now()
            snapshot = latest_snapshot(self.journal.directory)
        if snapshot is None:
            raise ReplicationError(
                f"standby {standby_id!r} diverged at seq {last_seq} "
                f"but no snapshot verifies to reset it from")
        snap_seq, state, _path = snapshot
        return snap_seq, state

    # -- journal observers --------------------------------------------------

    def _on_append(self, record: WalRecord) -> None:
        message = make_message(REPL_RECORDS, term=self.term,
                               frames=[_frame_text(record)])
        now = self.clock()
        with self._lock:
            links = list(self._links.values())
            for link in links:
                link.shipped_at[record.seq] = now
        for link in links:
            self._lag_hist.observe(float(record.seq - link.acked_seq))
            self._ship(link, message)

    def _on_snapshot(self, last_seq: int, state: dict[str, Any]) -> None:
        """Offer a fresh snapshot to every standby still behind it."""
        message = _state_message(self.term, last_seq, state)
        with self._lock:
            behind = [link for link in self._links.values()
                      if link.acked_seq < last_seq]
        for link in behind:
            self._ship(link, message)

    # -- plumbing -----------------------------------------------------------

    @property
    def term(self) -> int:
        return self.controller.term

    def last_seq(self) -> int:
        records = self.journal.wal.records()
        return records[-1].seq if records else self.journal.wal.next_seq - 1

    def standby_count(self) -> int:
        with self._lock:
            return len(self._links)

    def link_transports(self) -> tuple[Transport, ...]:
        """The live shipping transports (for ordered server teardown)."""
        with self._lock:
            return tuple(link.transport for link in self._links.values())

    def status(self) -> list[dict[str, Any]]:
        """Per-standby replication state for the STATUS payload."""
        last = self.last_seq()
        with self._lock:
            return [{"standby_id": link.standby_id,
                     "acked_seq": link.acked_seq,
                     "lag_records": max(0, last - link.acked_seq)}
                    for link in self._links.values()]

    def drop(self, standby_id: str) -> None:
        with self._lock:
            self._links.pop(standby_id, None)

    def _ship(self, link: _StandbyLink, message: dict[str, Any]) -> None:
        """Send one message; a failed or stalled link is dropped.

        Shipping runs on the mutating thread, so the block is bounded:
        the link's transport was armed with ``ship_timeout`` at hello
        time, and a send that exceeds it fails like any other transport
        error — the link is dropped and the standby re-hellos."""
        try:
            link.transport.send(message)
        except (TransportError, ControllerBusyError, ProtocolError,
                OSError):
            # The expected shipping failures: a dead/stalled link, a
            # backpressured write queue, an oversized frame, a raw
            # socket error.  Anything else is a programming error — let
            # it unwind (flight-recorded) instead of silently dropping
            # the standby.
            with self._lock:
                self._links.pop(link.standby_id, None)
            self.controller.metrics.increment("replication.ship_errors",
                                              self.controller.now)
            self._record_event("standby_dropped",
                               standby_id=link.standby_id)
        except Exception as exc:
            self._record_event("ship_error", standby_id=link.standby_id,
                               error=type(exc).__name__,
                               message=str(exc))
            raise

    def _record_event(self, detail: str, **fields: Any) -> None:
        recorder = getattr(self.controller, "flight_recorder", None)
        if recorder is not None:
            recorder.record(EVENT_REPLICATION, detail=detail,
                            term=self.term, **fields)


# --------------------------------------------------------------------------
# Standby side: follow, persist, apply — and promote
# --------------------------------------------------------------------------

class ReplicationStandby:
    """A hot follower: replicated WAL on its own disk, live controller.

    The standby owns a durability ``directory`` exactly like a primary's
    (``wal.log`` + snapshots) and keeps a controller current by applying
    each shipped record the way crash recovery replays a tail: policy
    inert, clock advanced to the record's timestamp, result re-applied
    and verified.  Restarting a standby restores from its own directory
    (newest valid snapshot + tail) and re-hellos from there, so an
    outage costs one catch-up, not a full resync.

    ``controller_factory`` builds the controller from a
    :class:`~repro.cluster.Cluster` — supply the same collaborators
    (policy, objective, models) as the primary so the replay
    verification holds and the controller is fit to serve after
    promotion.  ``on_controller`` fires whenever the standby's
    controller object is (re)built — a hosting server uses it to adopt
    the new instance.

    :meth:`promote` is the failover: acquire the fencing lease (refused
    while the primary's lease is live), journal the new term, restore
    the real decision policy, re-attach the journal for writing, and
    reconfigure any bundles the replicated history left stranded.  The
    returned controller serves exactly the state the primary had made
    durable — including every ``resume_key`` session, which rejoining
    clients replay precisely as they would against a restarted primary.
    """

    def __init__(self, directory: str, standby_id: str,
                 fencing: FencingStore | None = None,
                 controller_factory: Callable[..., Any] | None = None,
                 model_registry: dict[str, Any] | None = None,
                 snapshot_every: int = 64,
                 keep_snapshots: int = 2,
                 fsync: str = "always",
                 address: str | None = None,
                 lease_seconds: float = 30.0,
                 on_controller: Callable[[Any], None] | None = None,
                 on_stream_error: Callable[[dict[str, Any]], None]
                 | None = None):
        self.directory = directory
        self.standby_id = standby_id
        self.fencing = fencing
        self.address = address
        self.lease_seconds = lease_seconds
        self.snapshot_every = snapshot_every
        self.keep_snapshots = keep_snapshots
        self.fsync = fsync
        self.on_controller = on_controller
        self.on_stream_error = on_stream_error
        self._controller_factory = controller_factory
        self.journal = DurabilityJournal(
            directory, snapshot_every=snapshot_every,
            keep_snapshots=keep_snapshots, fsync=fsync,
            model_registry=model_registry)
        self.controller: "AdaptationController | None" = None
        self._real_policy = None
        self.term = 0              #: highest term observed on the stream
        self.last_seq = 0          #: highest contiguously applied seq
        self.promoted = False
        self.records_applied = 0
        self.resyncs = 0
        self.stream_errors = 0     #: unexpected replies (errors) seen
        self.divergence_resets = 0  #: forced resets of a divergent log
        self.transport: Transport | None = None
        self._lock = threading.RLock()
        self._applied_since_snapshot = 0
        self._restore_local()

    # -- lifecycle ----------------------------------------------------------

    def follow(self, transport: Transport) -> None:
        """Start (or resume) following a primary over ``transport``."""
        with self._lock:
            if self.promoted:
                raise ReplicationError(
                    f"standby {self.standby_id!r} was promoted; it no "
                    f"longer follows")
            self.transport = transport
        transport.set_receiver(self.on_message)
        transport.send(self._hello_message())

    def stop(self) -> None:
        with self._lock:
            transport, self.transport = self.transport, None
        if transport is not None:
            try:
                transport.close()
            except TransportError:  # pragma: no cover - defensive
                pass

    def close(self) -> None:
        self.stop()
        if not self.promoted:
            self.journal.wal.close()

    # -- the replication stream ---------------------------------------------

    def on_message(self, message: dict[str, Any]) -> None:
        """Transport receiver for the primary's stream."""
        msg_type = message.get("type")
        if msg_type == REPL_RECORDS:
            self._handle_records(message)
        elif msg_type == REPL_SNAPSHOT:
            self._handle_snapshot(message)
        else:
            # An error reply to our hello (the primary could not serve
            # it) or a redirect from a server that is not primary: a
            # standby that silently dropped these would wait forever,
            # so count it, journal it, and tell the owner.
            self._handle_stream_error(message)

    def _hello_message(self) -> dict[str, Any]:
        """The (re)subscription message, carrying the log-match token.

        ``last_crc`` is the frame CRC of this standby's newest local
        record — the primary refuses to serve a tail on top of a record
        its history never contained.  Omitted when the local WAL holds
        no record at ``last_seq`` (a fresh standby, or one whose log
        was just reset by a snapshot): there is no local suffix that
        could diverge.
        """
        message = make_message(REPL_HELLO, standby_id=self.standby_id,
                               last_seq=self.last_seq)
        records = self.journal.wal.records()
        if records and records[-1].seq == self.last_seq:
            message["last_crc"] = _frame_crc(records[-1])
            message["last_term"] = self.term
        return message

    def _handle_stream_error(self, message: dict[str, Any]) -> None:
        self.stream_errors += 1
        if self.controller is not None:
            self.controller.metrics.increment("replication.stream_errors",
                                              self.controller.now)
        self._record_event(
            "stream_error", message_type=str(message.get("type")),
            error=str(message.get("message", "")))
        if self.on_stream_error is not None:
            self.on_stream_error(message)

    def _handle_records(self, message: dict[str, Any]) -> None:
        self._observe_term(int(message.get("term", 0)))
        with self._lock:
            if self.promoted:
                return
            for frame in message.get("frames", []):
                record = decode_frame(str(frame).encode("ascii"))
                if record is None:
                    self._request_resync("corrupt frame")
                    return
                if record.seq <= self.last_seq:
                    continue  # duplicate delivery: already durable here
                if self.controller is not None \
                        and record.seq != self.last_seq + 1:
                    self._request_resync(
                        f"gap: have seq {self.last_seq}, "
                        f"received {record.seq}")
                    return
                self._apply_one(record)
            self._send_ack()

    def _handle_snapshot(self, message: dict[str, Any]) -> None:
        self._observe_term(int(message.get("term", 0)))
        last_seq = int(require_field(message, "last_seq"))
        text = str(require_field(message, "state"))
        crc = str(require_field(message, "crc"))
        reset = bool(message.get("reset", False))
        if f"{zlib.crc32(text.encode('utf-8')):08x}" != crc:
            self._request_resync("snapshot checksum mismatch")
            return
        with self._lock:
            if self.promoted or (not reset and last_seq <= self.last_seq):
                # Already past this point (a periodic offer we outran).
                self._send_ack()
                return
            if reset:
                # Log-matching failed on rejoin: this standby's suffix
                # diverged from the authoritative history.  Adopting
                # the snapshot truncates it wholesale — the local WAL
                # is discarded, never built upon.
                self.divergence_resets += 1
                if self.controller is not None:
                    self.controller.metrics.increment(
                        "replication.divergence_resets",
                        self.controller.now)
                self._record_event("divergent_suffix_truncated",
                                   from_seq=self.last_seq,
                                   to_seq=last_seq)
            state = json.loads(text)
            self._adopt_snapshot(last_seq, state)
            self._send_ack()

    def _adopt_snapshot(self, last_seq: int, state: dict[str, Any]) -> None:
        """Replace local state wholesale with a primary snapshot."""
        # Reset the replicated WAL: records before the snapshot are
        # superseded, and the next shipped record follows last_seq.
        wal = self.journal.wal
        wal.close()
        try:
            os.remove(wal.path)
        except FileNotFoundError:  # pragma: no cover - defensive
            pass
        self.journal.wal = WriteAheadLog(wal.path, fsync=self.fsync)
        self.journal._bundle_rsl.clear()
        self.journal._model_names.clear()
        controller = self._build_controller(
            codec.cluster_from_topology(state["topology"]))
        codec.apply_state(controller, self.journal, state)
        write_snapshot(self.directory, last_seq, state)
        for stale in snapshot_files(self.directory)[self.keep_snapshots:]:
            try:
                os.remove(stale)
            except OSError:  # pragma: no cover - defensive
                pass
        self._applied_since_snapshot = 0
        self.last_seq = last_seq
        self._record_event("snapshot_adopted", seq=last_seq)

    def _apply_one(self, record: WalRecord) -> None:
        controller = self.controller
        if controller is None:
            if record.kind != "genesis":
                self._request_resync(
                    f"first record is {record.kind!r}, not genesis")
                raise ReplicationError(
                    f"standby {self.standby_id!r} received "
                    f"{record.kind!r} before any base state")
            controller = self._build_controller(
                codec.cluster_from_topology(record.data["topology"]))
        # Write-ahead on the standby too: persist, then apply.
        self.journal.wal.append_record(record)
        controller.cluster.kernel.advance_to(record.time)
        _apply_record(controller, self.journal, record)
        self.last_seq = record.seq
        self.records_applied += 1
        self._applied_since_snapshot += 1
        controller.metrics.increment("replication.records_applied",
                                     controller.now)
        self._maybe_snapshot()

    def _maybe_snapshot(self) -> None:
        """Local snapshot cadence, mirroring the journal's checkpoint."""
        if self.snapshot_every <= 0 \
                or self._applied_since_snapshot < self.snapshot_every:
            return
        self.journal.snapshot_now()
        self._applied_since_snapshot = 0

    def _request_resync(self, reason: str) -> None:
        """A gap or damaged frame: never apply around it — re-hello."""
        self.resyncs += 1
        if self.controller is not None:
            self.controller.metrics.increment(
                "replication.resyncs", self.controller.now)
        self._record_event("resync", reason=reason)
        transport = self.transport
        if transport is not None:
            try:
                transport.send(self._hello_message())
            except TransportError:
                pass  # the follower's owner reconnects and re-hellos

    def _send_ack(self) -> None:
        transport = self.transport
        if transport is not None:
            try:
                transport.send(make_message(
                    REPL_ACK, standby_id=self.standby_id,
                    seq=self.last_seq))
            except TransportError:
                pass

    def _observe_term(self, term: int) -> None:
        if term > self.term:
            self.term = term

    # -- promotion ----------------------------------------------------------

    def can_promote(self, now: float | None = None) -> bool:
        """Whether the fencing lease allows promotion right now."""
        if self.promoted or self.controller is None:
            return False
        if self.fencing is None:
            return True
        record = self.fencing.read()
        return record.holder == self.standby_id \
            or self.fencing.expired(now)

    def promote(self, now: float | None = None) -> "AdaptationController":
        """Become the primary: fence, journal the term, wake the policy.

        Raises :class:`~repro.errors.ReplicationError` while the current
        primary's fencing lease is still live.  On success the returned
        controller is attached to this standby's journal (appends
        continue the primary's sequence numbers on this disk), the real
        decision policy replaces the replay no-op, and stranded bundles
        — applications whose registration replicated but whose
        placement did not — are reconfigured.
        """
        with self._lock:
            if self.promoted:
                return self.controller  # type: ignore[return-value]
            controller = self.controller
            if controller is None:
                raise ReplicationError(
                    f"standby {self.standby_id!r} has no replicated "
                    f"state to promote")
            if self.fencing is not None:
                term = self.fencing.acquire(
                    self.standby_id, lease_seconds=self.lease_seconds,
                    address=self.address, now=now)
            else:
                term = self.term + 1
            # Durable before served: the term record hits this WAL
            # before any client sees the new primary.
            controller.policy = self._real_policy
            controller.journal = self.journal
            self.journal.record_term(term, self.standby_id)
            controller.note_term(term)
            self.promoted = True
            transport, self.transport = self.transport, None
        if transport is not None:
            try:
                transport.close()
            except TransportError:  # pragma: no cover - defensive
                pass
        stranded = controller.configure_stranded()
        controller.metrics.increment("replication.promotions",
                                     controller.now)
        recorder = getattr(controller, "flight_recorder", None)
        if recorder is not None:
            recorder.record(EVENT_PROMOTION, standby_id=self.standby_id,
                            term=term, last_seq=self.last_seq,
                            stranded_reconfigured=stranded)
        return controller

    # -- introspection ------------------------------------------------------

    def status(self) -> dict[str, Any]:
        return {"standby_id": self.standby_id,
                "role": "primary" if self.promoted else "standby",
                "term": self.term,
                "last_seq": self.last_seq,
                "records_applied": self.records_applied,
                "resyncs": self.resyncs,
                "stream_errors": self.stream_errors,
                "divergence_resets": self.divergence_resets}

    # -- construction helpers -----------------------------------------------

    def _build_controller(self, cluster) -> "AdaptationController":
        from repro.controller.controller import AdaptationController

        if self._controller_factory is not None:
            controller = self._controller_factory(cluster)
        else:
            controller = AdaptationController(cluster)
        # Hold the optimizer inert while following: the stream carries
        # results, and a standby that re-decides would double-apply.
        self._real_policy = controller.policy
        controller.policy = _ReplayPolicy()
        self.controller = controller
        # Wire the journal for snapshots (journal.controller) without
        # attach(): the standby's WAL is written by append_record only,
        # so controller.journal stays None until promotion.
        self.journal.controller = controller
        if self.on_controller is not None:
            self.on_controller(controller)
        return controller

    def _restore_local(self) -> None:
        """Rebuild from this standby's own directory (standby restart).

        The same base-plus-tail recovery as a primary restart, minus the
        side effects: no ``recovered`` record is appended (this WAL must
        contain exactly the primary's records) and the journal is not
        attached for writing.
        """
        records = self.journal.wal.records()
        skipped: list[str] = []
        snapshot = latest_snapshot(self.directory, skipped=skipped)
        if snapshot is None and not records:
            return  # a brand-new standby: wait for the stream
        base_seq, cluster, state = _base_state(
            self.directory, snapshot, records, skipped)
        controller = self._build_controller(cluster)
        if state is not None:
            codec.apply_state(controller, self.journal, state)
        for record in records:
            if record.seq <= base_seq:
                continue
            controller.cluster.kernel.advance_to(record.time)
            _apply_record(controller, self.journal, record)
            self.records_applied += 1
        self.last_seq = records[-1].seq if records else base_seq
        self.term = controller.term
        self._record_event("restored", seq=self.last_seq)

    def _record_event(self, detail: str, **fields: Any) -> None:
        controller = self.controller
        recorder = getattr(controller, "flight_recorder", None) \
            if controller is not None else None
        if recorder is not None:
            recorder.record(EVENT_REPLICATION, detail=detail,
                            standby_id=self.standby_id, **fields)
