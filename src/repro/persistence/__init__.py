"""Durability for the adaptation controller (write-ahead log + snapshots).

The paper's controller keeps every registration, bundle state, and
placement in memory: one crash strands every tuned application.  This
package makes the controller restartable — every state-changing event is
journaled to an append-only write-ahead log (:mod:`repro.persistence.wal`),
periodic snapshots bound replay time (:mod:`repro.persistence.snapshot`),
and :func:`repro.persistence.recovery.restore_controller` (surfaced as
``AdaptationController.restore``) rebuilds an identical controller from
disk, verified against the log's own recorded objectives.

Crash injection for tests lives in :mod:`repro.persistence.crash`: the
process-level analogue of :mod:`repro.api.faults`, killing the controller
at seeded WAL-append boundaries.

Replication (:mod:`repro.persistence.replication`) extends durability
across machines: a primary ships its WAL records — the exact CRC-framed
bytes — to hot standbys, and a term-fenced :class:`FencingStore` decides
who may serve.  See docs/replication.md.
"""

from repro.persistence.crash import (
    CrashPoint,
    ScriptedCrashSchedule,
    SeededCrashSchedule,
    SimulatedCrash,
)
from repro.persistence.journal import DurabilityJournal
from repro.persistence.recovery import RecoveryReport, restore_controller
from repro.persistence.replication import (
    FencingRecord,
    FencingStore,
    ReplicationPrimary,
    ReplicationStandby,
)
from repro.persistence.snapshot import (
    latest_snapshot,
    read_snapshot,
    snapshot_files,
    write_snapshot,
)
from repro.persistence.wal import WalRecord, WriteAheadLog, scan_wal

__all__ = [
    "CrashPoint",
    "DurabilityJournal",
    "FencingRecord",
    "FencingStore",
    "RecoveryReport",
    "ReplicationPrimary",
    "ReplicationStandby",
    "ScriptedCrashSchedule",
    "SeededCrashSchedule",
    "SimulatedCrash",
    "WalRecord",
    "WriteAheadLog",
    "latest_snapshot",
    "read_snapshot",
    "restore_controller",
    "scan_wal",
    "snapshot_files",
    "write_snapshot",
]
