"""Serialization between controller state and strict-JSON documents.

The durability layer never pickles live objects.  Everything on disk is
plain JSON built from primitives, and the decode side *re-derives* the
derived objects: a chosen configuration is stored as its RSL bundle text
plus ``(option, variables, grants, placements)`` and reconstructed
through :func:`~repro.allocation.instantiate.instantiate_option` — the
same deterministic path the optimizer used to build it, so the restored
``ConcreteDemands`` is equal by construction.

Snapshots additionally embed a *digest* (``describe_system`` lines, the
objective, ``predict_all``) computed when the snapshot was written;
recovery recomputes all three after rebuilding state and refuses to
proceed on any mismatch (:class:`~repro.errors.RecoveryError`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping

from repro.allocation.allocation import allocate
from repro.allocation.instantiate import instantiate_option
from repro.allocation.matcher import Assignment
from repro.cluster.topology import Cluster
from repro.controller.optimizer import Candidate
from repro.controller.registry import (
    AppInstance,
    BundleState,
    ChosenConfiguration,
)
from repro.errors import RecoveryError
from repro.rsl import build_bundle

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.controller.controller import AdaptationController
    from repro.persistence.journal import DurabilityJournal

__all__ = ["topology_to_dict", "cluster_from_topology", "candidate_to_dict",
           "candidate_from_dict", "controller_state", "apply_state"]


# -- cluster topology --------------------------------------------------------

def topology_to_dict(cluster: Cluster) -> dict[str, Any]:
    """The cluster's shape and availability as a JSON document."""
    nodes = []
    for node in cluster.nodes():
        nodes.append({
            "hostname": node.hostname,
            "speed": node.speed,
            "memory_mb": node.memory.total_mb,
            "os": node.os,
            "attributes": dict(node.attributes),
            "available": node.available,
        })
    links = []
    for link in cluster.links():
        links.append({
            "host_a": link.host_a,
            "host_b": link.host_b,
            "bandwidth_mbps": link.bandwidth_mbps,
            "latency_seconds": link.latency_seconds,
        })
    return {"nodes": nodes, "links": links}


def cluster_from_topology(data: Mapping[str, Any]) -> Cluster:
    """A fresh cluster (own kernel, clock at zero) from a topology dict."""
    cluster = Cluster()
    for node in data.get("nodes", []):
        built = cluster.add_node(
            node["hostname"], speed=float(node["speed"]),
            memory_mb=float(node["memory_mb"]), os=str(node["os"]),
            attributes=dict(node.get("attributes") or {}))
        if not node.get("available", True):
            built.fail()
    for link in data.get("links", []):
        cluster.add_link(link["host_a"], link["host_b"],
                         bandwidth_mbps=float(link["bandwidth_mbps"]),
                         latency_seconds=float(link["latency_seconds"]))
    return cluster


# -- candidates / chosen configurations --------------------------------------

def candidate_to_dict(candidate: Candidate) -> dict[str, Any]:
    """The replayable core of one applied candidate."""
    return {
        "option_name": candidate.option_name,
        "variable_assignment": dict(candidate.variable_assignment),
        "memory_grants": dict(candidate.memory_grants),
        "placements": dict(candidate.assignment.placements),
        "predicted_seconds": candidate.predicted_seconds,
        "objective_value": candidate.objective_value,
    }


def candidate_from_dict(state: BundleState,
                        data: Mapping[str, Any]) -> Candidate:
    """Rebuild a candidate against the bundle's live RSL model."""
    option = state.bundle.option_named(str(data["option_name"]))
    variables = {str(k): float(v) for k, v in
                 dict(data["variable_assignment"]).items()}
    grants = {str(k): float(v) for k, v in
              dict(data["memory_grants"]).items()}
    demands = instantiate_option(option, variables, grants or None)
    return Candidate(
        option_name=option.name,
        variable_assignment=variables,
        memory_grants=grants,
        demands=demands,
        assignment=Assignment(placements={
            str(k): str(v) for k, v in dict(data["placements"]).items()}),
        objective_value=float(data["objective_value"]),
        predicted_seconds=float(data["predicted_seconds"]))


# -- whole-controller state ---------------------------------------------------

def controller_state(controller: "AdaptationController",
                     journal: "DurabilityJournal") -> dict[str, Any]:
    """The snapshot body: registry, placements, objective inputs, digest.

    ``journal`` supplies what the live objects cannot: the original RSL
    text of each bundle and the registered name of each explicit model.
    """
    view = controller.view
    instances = []
    for instance in controller.registry.instances():
        bundles = []
        for bundle_name, state in instance.bundles.items():
            chosen = None
            if state.chosen is not None:
                chosen = {
                    "option_name": state.chosen.option_name,
                    "variable_assignment":
                        dict(state.chosen.variable_assignment),
                    "memory_grants":
                        state.chosen.allocation.memory_grants(),
                    "placements":
                        dict(state.chosen.assignment.placements),
                    "predicted_seconds": state.chosen.predicted_seconds,
                    "chosen_at": state.chosen.chosen_at,
                }
            bundles.append({
                "name": bundle_name,
                "rsl": journal.bundle_rsl(instance.key, bundle_name),
                "last_switch_time": state.last_switch_time,
                "switch_count": state.switch_count,
                "chosen": chosen,
            })
        instances.append({
            "app_name": instance.app_name,
            "instance_id": instance.instance_id,
            "registered_at": instance.registered_at,
            "models": journal.model_names_for(instance.key),
            "bundles": bundles,
        })
    predictions = controller.predict_all(view)
    return {
        "time": controller.now,
        "next_instance_id": controller.registry.next_instance_id,
        "topology": topology_to_dict(controller.cluster),
        "external": {
            "cpu": {host: view.external_cpu_load(host)
                    for host in controller.cluster.hostnames()
                    if view.external_cpu_load(host)},
            "links": [[link.host_a, link.host_b,
                       view.external_link_load(link.host_a, link.host_b)]
                      for link in controller.cluster.links()
                      if view.external_link_load(link.host_a,
                                                 link.host_b)],
        },
        "digest": {
            "system": controller.describe_system(),
            "objective": controller.objective.evaluate(predictions),
            "predictions": predictions,
        },
        "instances": instances,
    }


def apply_state(controller: "AdaptationController",
                journal: "DurabilityJournal",
                state: Mapping[str, Any]) -> None:
    """Load a snapshot body into an empty controller.

    Rebuilds instances, bundles, chosen configurations (allocation +
    view placement + namespace publication), and the external-load
    objective inputs — without touching the decision or lifecycle logs,
    which belong to the *live* history, not the recovered baseline.
    Finishes by re-verifying the snapshot's digest.
    """
    registry = controller.registry
    if len(registry) != 0:
        raise RecoveryError("apply_state requires an empty controller")
    controller.cluster.kernel.advance_to(float(state["time"]))
    for data in state.get("instances", []):
        instance = AppInstance(
            app_name=str(data["app_name"]),
            instance_id=int(data["instance_id"]),
            registered_at=float(data["registered_at"]))
        registry.adopt(instance)
        for model_key, model_name in dict(data.get("models") or {}).items():
            model = journal.resolve_model(model_name)
            instance.models[model_key] = model
            journal.note_model(instance.key, model_key, model_name)
        for bundle_data in data.get("bundles", []):
            rsl = str(bundle_data["rsl"])
            bundle_state = registry.add_bundle(instance, build_bundle(rsl))
            journal.note_bundle(instance.key, bundle_data["name"], rsl)
            if bundle_data.get("last_switch_time") is not None:
                bundle_state.last_switch_time = float(
                    bundle_data["last_switch_time"])
            bundle_state.switch_count = int(bundle_data["switch_count"])
            chosen = bundle_data.get("chosen")
            if chosen is not None:
                _apply_chosen(controller, instance, bundle_state, chosen)
    registry.next_instance_id = int(state["next_instance_id"])
    external = state.get("external") or {}
    for host, load in dict(external.get("cpu") or {}).items():
        controller.view.set_external_cpu_load(str(host), float(load))
    for host_a, host_b, flows in external.get("links") or []:
        controller.view.set_external_link_load(str(host_a), str(host_b),
                                               float(flows))
    _verify_digest(controller, state.get("digest") or {})


def _apply_chosen(controller: "AdaptationController",
                  instance: AppInstance, state: BundleState,
                  data: Mapping[str, Any]) -> None:
    option = state.bundle.option_named(str(data["option_name"]))
    variables = {str(k): float(v) for k, v in
                 dict(data["variable_assignment"]).items()}
    grants = {str(k): float(v) for k, v in
              dict(data["memory_grants"]).items()}
    demands = instantiate_option(option, variables, grants or None)
    assignment = Assignment(placements={
        str(k): str(v) for k, v in dict(data["placements"]).items()})
    allocation = allocate(
        controller.cluster, demands, assignment, memory_grants=grants,
        predicted_duration_seconds=None,
        holder=f"{instance.key}:{state.bundle.bundle_name}")
    state.chosen = ChosenConfiguration(
        option_name=option.name,
        variable_assignment=variables,
        demands=demands,
        assignment=assignment,
        allocation=allocation,
        predicted_seconds=float(data["predicted_seconds"]),
        chosen_at=float(data["chosen_at"]))
    controller.view.place(instance.key, demands, assignment)
    controller.registry.publish_choice(
        instance, state.bundle.bundle_name, memory_grants=grants)


def _verify_digest(controller: "AdaptationController",
                   digest: Mapping[str, Any]) -> None:
    """The snapshot's own self-check: rebuilt state must match exactly."""
    if not digest:
        return
    system = controller.describe_system()
    if system != list(digest.get("system", [])):
        raise RecoveryError(
            "snapshot digest mismatch: rebuilt placements differ "
            f"({system!r} != {digest.get('system')!r})")
    predictions = controller.predict_all(controller.view)
    recorded = {str(k): float(v) for k, v in
                dict(digest.get("predictions") or {}).items()}
    if not _close_map(predictions, recorded):
        raise RecoveryError(
            "snapshot digest mismatch: rebuilt predictions differ")
    objective = controller.objective.evaluate(predictions)
    if abs(objective - float(digest.get("objective", objective))) > 1e-9:
        raise RecoveryError(
            "snapshot digest mismatch: rebuilt objective differs")


def _close_map(left: Mapping[str, float], right: Mapping[str, float],
               tolerance: float = 1e-9) -> bool:
    if set(left) != set(right):
        return False
    return all(abs(left[key] - right[key]) <= tolerance for key in left)
