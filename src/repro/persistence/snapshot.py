"""Atomic controller snapshots bounding WAL replay time.

A snapshot file is a small JSON envelope whose ``state`` member is the
*canonical string* encoding of the controller state (see
:mod:`repro.persistence.codec`), checksummed as bytes::

    {"format": 1, "last_seq": 42, "crc": "9a0c31d7", "state": "{...}"}

``last_seq`` is the sequence number of the last WAL record folded into
the state: recovery loads the snapshot and replays records with
``seq > last_seq``.  Writing is write-to-temp + ``fsync`` +
``os.replace`` so a crash mid-snapshot leaves the previous snapshot
untouched.  Corrupt snapshots raise
:class:`~repro.errors.SnapshotCorruptionError`; :func:`latest_snapshot`
falls back to the next older file, so a damaged newest snapshot degrades
to a longer replay rather than a wrong state.
"""

from __future__ import annotations

import json
import os
import re
import zlib
from typing import Any

from repro.errors import SnapshotCorruptionError
from repro.persistence.wal import _fsync_directory

__all__ = ["write_snapshot", "read_snapshot", "snapshot_files",
           "latest_snapshot", "SNAPSHOT_FORMAT"]

SNAPSHOT_FORMAT = 1

_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{12})\.json$")


def _snapshot_name(last_seq: int) -> str:
    return f"snapshot-{last_seq:012d}.json"


def write_snapshot(directory: str, last_seq: int,
                   state: dict[str, Any]) -> str:
    """Atomically write one snapshot; returns its path."""
    os.makedirs(directory, exist_ok=True)
    state_text = json.dumps(state, sort_keys=True, separators=(",", ":"))
    envelope = {
        "format": SNAPSHOT_FORMAT,
        "last_seq": last_seq,
        "crc": f"{zlib.crc32(state_text.encode('utf-8')):08x}",
        "state": state_text,
    }
    path = os.path.join(directory, _snapshot_name(last_seq))
    tmp_path = path + ".tmp"
    with open(tmp_path, "w", encoding="utf-8") as tmp:
        json.dump(envelope, tmp)
        tmp.flush()
        os.fsync(tmp.fileno())
    os.replace(tmp_path, path)
    _fsync_directory(directory)
    return path


def read_snapshot(path: str) -> tuple[int, dict[str, Any]]:
    """Load and verify one snapshot; ``(last_seq, state)``.

    Raises :class:`~repro.errors.SnapshotCorruptionError` when the file
    is unreadable, the envelope is malformed, or the checksum mismatches.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            envelope = json.load(handle)
    except (OSError, ValueError) as exc:
        raise SnapshotCorruptionError(f"{path}: unreadable snapshot "
                                      f"({exc})") from exc
    if not isinstance(envelope, dict) or \
            envelope.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotCorruptionError(f"{path}: unknown snapshot format")
    state_text = envelope.get("state")
    if not isinstance(state_text, str):
        raise SnapshotCorruptionError(f"{path}: missing state body")
    crc = f"{zlib.crc32(state_text.encode('utf-8')):08x}"
    if crc != envelope.get("crc"):
        raise SnapshotCorruptionError(
            f"{path}: checksum mismatch (stored {envelope.get('crc')!r}, "
            f"computed {crc!r})")
    try:
        state = json.loads(state_text)
        last_seq = int(envelope["last_seq"])
    except (KeyError, TypeError, ValueError) as exc:
        raise SnapshotCorruptionError(
            f"{path}: malformed snapshot body ({exc})") from exc
    if not isinstance(state, dict):
        raise SnapshotCorruptionError(f"{path}: state is not an object")
    return last_seq, state


def snapshot_files(directory: str) -> list[str]:
    """Snapshot paths in the directory, newest (highest seq) first."""
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    found = []
    for name in names:
        match = _SNAPSHOT_RE.match(name)
        if match:
            found.append((int(match.group(1)), name))
    return [os.path.join(directory, name)
            for _seq, name in sorted(found, reverse=True)]


def latest_snapshot(directory: str,
                    skipped: list[str] | None = None,
                    ) -> tuple[int, dict[str, Any], str] | None:
    """The newest snapshot that verifies, or ``None``.

    Corrupt files are skipped (recorded in ``skipped`` when given) in
    favor of older ones — never silently loaded.
    """
    for path in snapshot_files(directory):
        try:
            last_seq, state = read_snapshot(path)
        except SnapshotCorruptionError:
            if skipped is not None:
                skipped.append(path)
            continue
        return last_seq, state, path
    return None
