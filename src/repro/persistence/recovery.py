"""Crash recovery: rebuild a controller from its durability directory.

:func:`restore_controller` (surfaced as
``AdaptationController.restore(path)``) performs the classic ARIES-shaped
sequence, adapted to a result-sourced log:

1. **Load** the newest snapshot that verifies (older generations are the
   fallback when the newest is corrupt), rebuilding registry, bundles,
   allocations, view placements, and namespace, then re-checking the
   snapshot's own digest.
2. **Replay** the WAL tail deterministically.  The log records decision
   *results* (concrete candidates), so replay never re-runs the
   optimizer: the decision policy is swapped for a no-op while each
   record is re-applied at its original simulated time, and every
   ``apply`` record's recomputed objective is compared against the
   logged one — a mismatch means replay is not reproducing history and
   recovery stops (:class:`~repro.errors.RecoveryError`).
3. **Resume**: the journal re-attaches (appending a ``recovered``
   marker), ``controller.recovery_seconds`` is reported, and the whole
   sequence is traced as a ``controller.restore`` span chain.

Events that the crash interrupted *mid-operation* (e.g. a re-evaluation
sweep half-applied) are recovered up to their last durable record; a
post-restore ``reevaluate()`` (``reevaluate=True``) reconverges the
remainder, because the policy's decisions depend only on current state.
"""

from __future__ import annotations

import math
import time as _time
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.allocation.matcher import MatchStrategy
from repro.controller.controller import AdaptationController, DecisionPolicy
from repro.controller.friction import FrictionPolicy
from repro.controller.objective import Objective
from repro.errors import (
    RecoveryError,
    SnapshotCorruptionError,
    WalCorruptionError,
)
from repro.metrics import MetricInterface
from repro.obs.trace import NULL_TRACER
from repro.persistence import codec
from repro.persistence.crash import CrashSchedule
from repro.persistence.journal import DurabilityJournal
from repro.persistence.snapshot import latest_snapshot
from repro.persistence.wal import WalRecord
from repro.prediction.models import PerformanceModel
from repro.rsl import build_bundle

__all__ = ["RecoveryReport", "restore_controller"]


@dataclass
class RecoveryReport:
    """What one :func:`restore_controller` run did, for logs and CI."""

    directory: str
    snapshot_path: str | None
    snapshot_seq: int
    records_replayed: int
    last_seq: int
    recovery_seconds: float
    skipped_snapshots: list[str] = field(default_factory=list)
    reevaluation_changes: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "directory": self.directory,
            "snapshot_path": self.snapshot_path,
            "snapshot_seq": self.snapshot_seq,
            "records_replayed": self.records_replayed,
            "last_seq": self.last_seq,
            "recovery_seconds": self.recovery_seconds,
            "skipped_snapshots": list(self.skipped_snapshots),
            "reevaluation_changes": self.reevaluation_changes,
        }


class _ReplayPolicy(DecisionPolicy):
    """Inert stand-in while the WAL tail is re-applied.

    Replay re-applies recorded *results*; any policy-driven optimization
    during that window would double-decide.  Releases still flow through
    ``policy.reevaluate`` on the controller's shared paths, so the no-op
    must answer, not raise.
    """

    def configure_new_bundle(self, controller, instance, state) -> None:
        raise RecoveryError(
            "optimizer invoked during WAL replay — the log should carry "
            "results, not decisions")

    def reevaluate(self, controller) -> int:
        return 0


def restore_controller(
        directory: str,
        model_registry: Mapping[str, PerformanceModel] | None = None,
        metrics: MetricInterface | None = None,
        objective: Objective | None = None,
        policy: DecisionPolicy | None = None,
        friction_policy: FrictionPolicy | None = None,
        default_model: PerformanceModel | None = None,
        match_strategy: MatchStrategy = MatchStrategy.FIRST_FIT,
        reevaluation_period_seconds: float = 30.0,
        incremental: bool = True,
        tracer=None,
        trace_log=None,
        reevaluate: bool = False,
        snapshot_every: int = 64,
        keep_snapshots: int = 2,
        fsync: str = "always",
        crash_schedule: CrashSchedule | None = None,
) -> AdaptationController:
    """Rebuild a controller from ``directory``; see the module docstring.

    Construction-time collaborators (policy, objective, models, …) are
    code, not state — the caller supplies them exactly as it would for a
    fresh controller, and they must match the crashed process's for the
    replay verification to hold.  Returns the controller with its journal
    re-attached and ``controller.last_recovery`` set.
    """
    start = _time.perf_counter()
    tracer = tracer if tracer is not None else NULL_TRACER
    journal = DurabilityJournal(
        directory, snapshot_every=snapshot_every,
        keep_snapshots=keep_snapshots, fsync=fsync,
        crash_schedule=crash_schedule, model_registry=model_registry)
    with tracer.span("controller.restore", directory=directory) as span:
        records = journal.wal.records()
        skipped: list[str] = []
        snapshot = latest_snapshot(directory, skipped=skipped)
        base_seq, cluster, state = _base_state(directory, snapshot,
                                               records, skipped)
        controller = AdaptationController(
            cluster, metrics=metrics, objective=objective,
            policy=policy, friction_policy=friction_policy,
            default_model=default_model, match_strategy=match_strategy,
            reevaluation_period_seconds=reevaluation_period_seconds,
            incremental=incremental, tracer=tracer, trace_log=trace_log)
        with tracer.span("controller.restore.load_snapshot",
                         seq=base_seq) as load_span:
            if state is not None:
                codec.apply_state(controller, journal, state)
            load_span.set("instances", len(controller.registry))
        tail = [record for record in records if record.seq > base_seq]
        with tracer.span("controller.restore.replay_wal",
                         records=len(tail)):
            _replay(controller, journal, tail)
        journal.attach(controller, resume=True)
        elapsed = _time.perf_counter() - start
        report = RecoveryReport(
            directory=directory,
            snapshot_path=snapshot[2] if snapshot else None,
            snapshot_seq=base_seq,
            records_replayed=len(tail),
            last_seq=records[-1].seq if records else base_seq,
            recovery_seconds=elapsed,
            skipped_snapshots=skipped)
        journal.record_recovered({
            "records_replayed": report.records_replayed,
            "snapshot_seq": report.snapshot_seq,
            "recovery_seconds": elapsed})
        controller.metrics.report("controller.recovery_seconds",
                                  controller.now, elapsed)
        if reevaluate:
            report.reevaluation_changes = controller.reevaluate()
        controller.last_recovery = report
        span.set("records_replayed", report.records_replayed)
        span.set("recovery_seconds", elapsed)
    return controller


def _base_state(directory: str, snapshot, records: list[WalRecord],
                skipped: list[str]):
    """Choose the recovery base: ``(base_seq, cluster, state-or-None)``."""
    if snapshot is not None:
        base_seq, state, _path = snapshot
        if records and records[0].seq > base_seq + 1:
            raise WalCorruptionError(
                f"{directory}: WAL starts at seq {records[0].seq} but the "
                f"newest valid snapshot covers only up to {base_seq}")
        return base_seq, codec.cluster_from_topology(state["topology"]), \
            state
    if not records:
        if skipped:
            raise SnapshotCorruptionError(
                f"{directory}: every snapshot is corrupt and the WAL is "
                f"empty — no valid state remains")
        raise RecoveryError(f"{directory}: nothing to restore")
    if records[0].seq != 1:
        raise SnapshotCorruptionError(
            f"{directory}: WAL was compacted to seq {records[0].seq} but "
            f"no snapshot verifies — the base state is gone")
    genesis = records[0]
    if genesis.kind != "genesis":
        raise RecoveryError(
            f"{directory}: first WAL record is {genesis.kind!r}, "
            f"expected genesis")
    return 1, codec.cluster_from_topology(genesis.data["topology"]), None


def _replay(controller: AdaptationController, journal: DurabilityJournal,
            tail: list[WalRecord]) -> None:
    """Re-apply the WAL tail with the optimizer held inert."""
    real_policy = controller.policy
    controller.policy = _ReplayPolicy()
    try:
        for record in tail:
            controller.cluster.kernel.advance_to(record.time)
            _apply_record(controller, journal, record)
    finally:
        controller.policy = real_policy


def _apply_record(controller: AdaptationController,
                  journal: DurabilityJournal, record: WalRecord) -> None:
    kind, data = record.kind, record.data
    registry = controller.registry
    if kind == "register":
        instance = controller.register_app(
            str(data["app_name"]), resume_key=data.get("resume_key"))
        if instance.key != data["key"]:
            raise RecoveryError(
                f"replay diverged: register produced {instance.key!r}, "
                f"log says {data['key']!r} (seq {record.seq})")
    elif kind == "adopt":
        # A federation handoff re-admitted the instance under its
        # original key (see AdaptationController.adopt_app): rebuild it
        # with the exact logged id — register_app would mint a new one.
        instance = controller.adopt_app(str(data["app_name"]),
                                        int(data["instance_id"]))
        if instance.key != data["key"]:
            raise RecoveryError(
                f"replay diverged: adopt produced {instance.key!r}, "
                f"log says {data['key']!r} (seq {record.seq})")
    elif kind == "setup_bundle":
        instance = registry.instance(str(data["key"]))
        rsl = str(data["rsl"])
        registry.add_bundle(instance, build_bundle(rsl))
        journal.note_bundle(instance.key, str(data["bundle_name"]), rsl)
    elif kind == "apply":
        instance = registry.instance(str(data["key"]))
        state = instance.bundle_state(str(data["bundle_name"]))
        candidate = codec.candidate_from_dict(state, data)
        before = data.get("objective_before")
        controller.apply_candidate(
            instance, state, candidate, reason=str(data["reason"]),
            objective_before=math.inf if before is None else float(before))
        replayed = controller.decision_log[-1].objective_after
        logged = data.get("objective_after")
        if logged is not None and abs(replayed - float(logged)) > 1e-9:
            raise RecoveryError(
                f"replay diverged at seq {record.seq}: objective "
                f"{replayed!r} != logged {logged!r} for "
                f"{instance.key}.{state.bundle.bundle_name}")
    elif kind == "unconfigured":
        instance = registry.instance(str(data["key"]))
        state = instance.bundle_state(str(data["bundle_name"]))
        if state.chosen is not None:
            state.chosen.allocation.release()
            state.chosen = None
            controller.view.remove(instance.key)
    elif kind == "release":
        instance = registry.instance(str(data["key"]))
        if data["kind"] == "evicted":
            controller.evict_app(instance, reason=str(data["detail"]))
        else:
            controller.end_app(instance)
        journal.forget_app(instance.key)
    elif kind == "model":
        instance = registry.instance(str(data["key"]))
        model = journal.resolve_model(str(data["model_name"]))
        instance.models[str(data["model_key"])] = model
        journal.note_model(instance.key, str(data["model_key"]),
                           str(data["model_name"]))
        if controller._engine is not None:
            controller._engine.invalidate()
    elif kind == "node_failure":
        _replay_node_failure(controller, str(data["hostname"]))
    elif kind == "node_restored":
        controller.cluster.node(str(data["hostname"])).restore()
        controller.metrics.report("controller.node_restorations",
                                  controller.now, 1.0)
    elif kind == "term":
        # A fencing-term transition: restore the highest term this
        # controller ever served under so a restarted (possibly deposed)
        # primary can compare itself against the shared fencing record.
        controller.term = max(controller.term, int(data["term"]))
    elif kind in ("genesis", "lease_expired", "recovered",
                  "reevaluation_batch"):
        pass  # audit-only records: no state to re-apply
    else:
        raise RecoveryError(
            f"unknown WAL record kind {kind!r} (seq {record.seq})")


def _replay_node_failure(controller: AdaptationController,
                         hostname: str) -> None:
    """The displacement half of ``handle_node_failure``.

    The reconfiguration half arrives as subsequent ``apply`` records, so
    replay only fails the node and strips the placements it carried.
    """
    controller.cluster.node(hostname).fail()
    for instance in controller.registry.instances():
        for state in instance.bundles.values():
            chosen = state.chosen
            if chosen is None or \
                    hostname not in chosen.assignment.hostnames():
                continue
            chosen.allocation.release()
            state.chosen = None
            controller.view.remove(instance.key)
    controller.metrics.report("controller.node_failures", controller.now,
                              1.0)
