"""The controller-facing durability surface: journal + snapshot cadence.

:class:`DurabilityJournal` sits between the
:class:`~repro.controller.controller.AdaptationController` and the on-disk
log: the controller calls ``record_*`` as each state-changing event
*completes in memory*, the journal frames it into the WAL, and — at
operation boundaries only (:meth:`checkpoint_if_due`) — folds the log into
a snapshot and compacts.  Snapshots never run mid-operation: a snapshot's
``last_seq`` asserts that the captured state reflects *every* record up
to it, which is only true between operations.

The journal also keeps the two maps live objects cannot answer:

* the original RSL text per ``(app_key, bundle)`` — bundles are compiled
  objects in memory, but replay needs the source;
* the registered model *name* per explicit performance model — models
  are opaque callables, so durable controllers register them by name
  against a ``model_registry`` the operator supplies again at restore.

Telemetry: every append bumps ``controller.wal.appends`` and
``controller.wal.bytes``; every snapshot bumps ``controller.snapshots``.
"""

from __future__ import annotations

import os
from time import perf_counter as _perf_counter
from typing import TYPE_CHECKING, Any, Mapping

from repro.controller.optimizer import Candidate
from repro.obs.flightrec import EVENT_WAL_APPEND
from repro.controller.registry import AppInstance, BundleState
from repro.errors import ControllerError
from repro.persistence import codec
from repro.persistence.crash import CrashSchedule
from repro.persistence.snapshot import snapshot_files, write_snapshot
from repro.persistence.wal import WriteAheadLog
from repro.prediction.models import PerformanceModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.controller.controller import AdaptationController

__all__ = ["DurabilityJournal", "WAL_FILENAME"]

WAL_FILENAME = "wal.log"


class DurabilityJournal:
    """Owns one directory of durability state (``wal.log`` + snapshots).

    ``snapshot_every`` — appends between snapshot checkpoints (0 disables
    automatic snapshots; :meth:`snapshot_now` still works).
    ``keep_snapshots`` — how many snapshot generations to retain; the WAL
    is compacted to the *oldest* retained snapshot, so a corrupt newest
    snapshot still has a complete older base + replay tail.
    ``model_registry`` — name → :class:`PerformanceModel` used both to
    journal explicit models by name and to resolve them at restore.
    """

    def __init__(self, directory: str,
                 snapshot_every: int = 64,
                 keep_snapshots: int = 2,
                 fsync: str = "always",
                 crash_schedule: CrashSchedule | None = None,
                 model_registry: Mapping[str, PerformanceModel]
                 | None = None):
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.snapshot_every = snapshot_every
        self.keep_snapshots = max(1, keep_snapshots)
        self.model_registry = dict(model_registry or {})
        self.wal = WriteAheadLog(os.path.join(directory, WAL_FILENAME),
                                 fsync=fsync,
                                 crash_schedule=crash_schedule)
        self.controller: "AdaptationController | None" = None
        self.snapshots_written = 0
        self._append_hist = None   # cached controller.wal.append_seconds
        self._appends_since_snapshot = 0
        self._bundle_rsl: dict[tuple[str, str], str] = {}
        self._model_names: dict[str, dict[str, str]] = {}
        self._append_observers: list[Any] = []
        self._snapshot_observers: list[Any] = []

    # -- wiring ---------------------------------------------------------------

    def attach(self, controller: "AdaptationController",
               resume: bool = False) -> "DurabilityJournal":
        """Wire this journal into a controller's mutation paths.

        A fresh journal (``resume=False``) requires an empty controller —
        there is no history to journal for pre-existing state — and
        writes the genesis record (the cluster topology).  Recovery
        attaches with ``resume=True`` after rebuilding state from disk.
        """
        if self.controller is not None:
            raise ControllerError("journal already attached")
        if not resume:
            if len(controller.registry) != 0 or self.wal.records() \
                    or snapshot_files(self.directory):
                raise ControllerError(
                    "attach() needs an empty controller and an empty "
                    "durability directory; use "
                    "AdaptationController.restore() for existing state")
        self.controller = controller
        controller.journal = self
        if not resume:
            self.append("genesis", {
                "topology": codec.topology_to_dict(controller.cluster)})
        return self

    def close(self) -> None:
        if self.controller is not None:
            self.controller.journal = None
            self.controller = None
        self.wal.close()

    # -- replication hooks ----------------------------------------------------

    def add_append_observer(self, observer: Any) -> None:
        """Call ``observer(record)`` after every durable append.

        This is the WAL-shipping tap: the record is already on this
        journal's disk when the observer runs, so shipping it cannot get
        ahead of local durability.  Observers run on the appending thread
        (under the controller lock for server-driven mutations) and must
        not raise — :class:`~repro.persistence.replication.ReplicationPrimary`
        converts ship failures into dropped standby links.
        """
        self._append_observers.append(observer)

    def add_snapshot_observer(self, observer: Any) -> None:
        """Call ``observer(last_seq, state)`` after every snapshot."""
        self._snapshot_observers.append(observer)

    # -- source-text bookkeeping ----------------------------------------------

    def note_bundle(self, app_key: str, bundle_name: str,
                    rsl_text: str) -> None:
        self._bundle_rsl[(app_key, bundle_name)] = rsl_text

    def bundle_rsl(self, app_key: str, bundle_name: str) -> str:
        try:
            return self._bundle_rsl[(app_key, bundle_name)]
        except KeyError:
            raise ControllerError(
                f"no journaled RSL for {app_key}.{bundle_name}") from None

    def note_model(self, app_key: str, model_key: str,
                   model_name: str) -> None:
        self._model_names.setdefault(app_key, {})[model_key] = model_name

    def model_names_for(self, app_key: str) -> dict[str, str]:
        return dict(self._model_names.get(app_key, {}))

    def resolve_model(self, model_name: str) -> PerformanceModel:
        try:
            return self.model_registry[model_name]
        except KeyError:
            raise ControllerError(
                f"model {model_name!r} is not in the journal's "
                f"model_registry; pass it to restore()") from None

    def forget_app(self, app_key: str) -> None:
        self._model_names.pop(app_key, None)
        for key in [k for k in self._bundle_rsl if k[0] == app_key]:
            del self._bundle_rsl[key]

    # -- the append path ------------------------------------------------------

    def append(self, kind: str, data: dict[str, Any]) -> None:
        controller = self.controller
        if controller is None:
            raise ControllerError("journal is not attached")
        before = self.wal.bytes_written
        started = _perf_counter()
        record = self.wal.append(kind, controller.now, data)
        elapsed = _perf_counter() - started
        for observer in self._append_observers:
            observer(record)
        self._appends_since_snapshot += 1
        now = controller.now
        controller.metrics.increment("controller.wal.appends", now)
        controller.metrics.increment("controller.wal.bytes", now,
                                     amount=float(self.wal.bytes_written
                                                  - before))
        appended = self.wal.bytes_written - before
        # The append+fsync distribution is the single most load-bearing
        # latency in the durable configuration — every admission waits on
        # it — so it stays always-on, alongside a flight-ring breadcrumb.
        hist = self._append_hist
        if hist is None:
            hist = self._append_hist = controller.metrics.histogram(
                "controller.wal.append_seconds")
        hist.observe(elapsed)
        recorder = getattr(controller, "flight_recorder", None)
        if recorder is not None:
            recorder.record(EVENT_WAL_APPEND, record=kind,
                            bytes=appended, seconds=round(elapsed, 6))

    # -- event records (called from the controller/server) --------------------

    def record_register(self, instance: AppInstance, resumed: bool,
                        resume_key: str | None) -> None:
        self.append("register", {
            "app_name": instance.app_name, "key": instance.key,
            "resumed": resumed, "resume_key": resume_key})

    def record_setup_bundle(self, app_key: str, bundle_name: str,
                            rsl_text: str) -> None:
        self.note_bundle(app_key, bundle_name, rsl_text)
        self.append("setup_bundle", {
            "key": app_key, "bundle_name": bundle_name, "rsl": rsl_text})

    def record_apply(self, instance: AppInstance, state: BundleState,
                     candidate: Candidate, reason: str,
                     objective_before: float,
                     objective_after: float) -> None:
        data = codec.candidate_to_dict(candidate)
        data.update({
            "key": instance.key,
            "bundle_name": state.bundle.bundle_name,
            "reason": reason,
            "objective_before": _finite(objective_before),
            "objective_after": objective_after,
        })
        self.append("apply", data)

    def record_unconfigured(self, app_key: str, bundle_name: str) -> None:
        """The reconfigure-failure path: old allocation gone, no new one."""
        self.append("unconfigured", {
            "key": app_key, "bundle_name": bundle_name})

    def record_adopt(self, instance: AppInstance) -> None:
        """A federation handoff re-admitted an instance under its old key.

        A dedicated kind: replaying this as a plain ``register`` would
        allocate a fresh instance id and diverge from the logged key.
        """
        self.append("adopt", {
            "app_name": instance.app_name, "key": instance.key,
            "instance_id": instance.instance_id})

    def record_release(self, app_key: str, kind: str, detail: str) -> None:
        self.append("release", {
            "key": app_key, "kind": kind, "detail": detail})
        self.forget_app(app_key)

    def record_model(self, app_key: str, model_key: str,
                     model_name: str) -> None:
        self.note_model(app_key, model_key, model_name)
        self.append("model", {
            "key": app_key, "model_key": model_key,
            "model_name": model_name})

    def record_node_failure(self, hostname: str) -> None:
        self.append("node_failure", {"hostname": hostname})

    def record_node_restored(self, hostname: str) -> None:
        self.append("node_restored", {"hostname": hostname})

    def record_lease_expired(self, app_key: str) -> None:
        """Audit record: the eviction itself arrives as a ``release``."""
        self.append("lease_expired", {"key": app_key})

    def record_reevaluation_batch(self, generation: int,
                                  reasons: list[str],
                                  changes: int,
                                  partitions: int = 0,
                                  pruned_candidates: int = 0) -> None:
        """One coalesced reevaluation: audit record for the whole batch.

        The batch's state changes arrive as the ``apply`` records its
        sweep emitted; this record ties them to the scheduler generation
        and the triggers that were merged.  Reasons are capped so a
        metric storm cannot bloat the log.  ``partitions`` and
        ``pruned_candidates`` describe the partitioned sweep that ran the
        batch (zero on the serial path); replay ignores both — the record
        stays audit-only.
        """
        from repro.controller.scheduler import MAX_JOURNALED_REASONS

        self.append("reevaluation_batch", {
            "generation": generation,
            "size": len(reasons),
            "reasons": list(reasons[:MAX_JOURNALED_REASONS]),
            "changes": changes,
            "partitions": partitions,
            "pruned_candidates": pruned_candidates})

    def record_recovered(self, report: dict[str, Any]) -> None:
        self.append("recovered", report)

    def record_term(self, term: int, holder: str) -> None:
        """Journal a fencing-term transition (election or first lease).

        Replay restores ``controller.term`` from these, so a restarted
        server knows the highest term it ever served under and can spot
        that the fencing record moved on without it.
        """
        self.append("term", {"term": int(term), "holder": holder})

    # -- snapshots ------------------------------------------------------------

    def checkpoint_if_due(self) -> bool:
        """Snapshot when enough appends accumulated (operation boundary).

        The controller calls this at the *end* of its public mutating
        operations, never mid-flight, so the captured state is always
        consistent with the log position.
        """
        if self.snapshot_every <= 0:
            return False
        if self._appends_since_snapshot < self.snapshot_every:
            return False
        self.snapshot_now()
        return True

    def snapshot_now(self) -> str:
        """Write a snapshot, prune old generations, compact the WAL."""
        controller = self.controller
        if controller is None:
            raise ControllerError("journal is not attached")
        records = self.wal.records()
        if not records:
            raise ControllerError("cannot snapshot an empty log")
        last_seq = records[-1].seq
        state = codec.controller_state(controller, self)
        path = write_snapshot(self.directory, last_seq, state)
        self.snapshots_written += 1
        self._appends_since_snapshot = 0
        controller.metrics.increment("controller.snapshots",
                                     controller.now)
        retained = snapshot_files(self.directory)[:self.keep_snapshots]
        for stale in snapshot_files(self.directory)[self.keep_snapshots:]:
            try:
                os.remove(stale)
            except OSError:
                pass
        # Compact to the *oldest* retained snapshot: its state plus the
        # remaining tail can always rebuild, even if newer files rot.
        oldest_seq = min(_snapshot_seq(p) for p in retained)
        self.wal.compact(oldest_seq + 1)
        for observer in self._snapshot_observers:
            observer(last_seq, state)
        return path


def _snapshot_seq(path: str) -> int:
    name = os.path.basename(path)
    return int(name[len("snapshot-"):-len(".json")])


def _finite(value: float) -> float | None:
    """``math.inf`` (the no-prior-objective sentinel) is not strict JSON."""
    import math
    return None if value is None or math.isinf(value) else value
