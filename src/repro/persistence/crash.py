"""Process-level crash injection for the durability layer.

The transport-level :mod:`repro.api.faults` schedules drop and delay
*messages*; here the injected fault is the death of the controller process
itself, modeled as an exception thrown from inside the write-ahead log's
append path.  Crashes land at the three interesting boundaries of an
append:

* ``BEFORE_APPEND`` — the event happened in memory but nothing reached
  disk (the classic lost-tail crash);
* ``TORN_APPEND``  — a prefix of the record's bytes reached disk (torn
  write; recovery must truncate it);
* ``AFTER_APPEND`` — the record is durable but the process died before
  answering the client (recovery must not double-apply on retry).

:class:`SimulatedCrash` deliberately does **not** subclass
:class:`~repro.errors.HarmonyError`: nothing in the server or controller
may catch and absorb it, exactly as nothing catches ``SIGKILL``.
"""

from __future__ import annotations

import random
from enum import Enum

__all__ = ["CrashPoint", "CrashSchedule", "ScriptedCrashSchedule",
           "SeededCrashSchedule", "SimulatedCrash"]


class SimulatedCrash(Exception):
    """The injected death of the controller process.

    Intentionally outside the :class:`~repro.errors.HarmonyError`
    hierarchy so ``except HarmonyError`` handlers (the server's message
    loop, the CLI) cannot swallow it — a crash kills everything.
    """

    def __init__(self, point: "CrashPoint", append_index: int):
        super().__init__(
            f"simulated controller crash ({point.value}) at WAL append "
            f"#{append_index}")
        self.point = point
        self.append_index = append_index


class CrashPoint(Enum):
    """Where, relative to one WAL append, the process dies."""

    BEFORE_APPEND = "before-append"
    TORN_APPEND = "torn-append"
    AFTER_APPEND = "after-append"


class CrashSchedule:
    """Decides whether append number ``index`` (0-based) is fatal."""

    def decide(self, index: int) -> CrashPoint | None:
        raise NotImplementedError


class ScriptedCrashSchedule(CrashSchedule):
    """Exact crash placement: ``{append_index: CrashPoint}``.

    The kill-at-any-point recovery suite iterates every append index of a
    scenario with each :class:`CrashPoint` in turn.
    """

    def __init__(self, script: dict[int, CrashPoint]):
        self.script = dict(script)

    def decide(self, index: int) -> CrashPoint | None:
        return self.script.get(index)


class SeededCrashSchedule(CrashSchedule):
    """Random but reproducible crashes, mirroring ``SeededFaultSchedule``.

    ``rate`` is the per-append probability of dying; the crash point is
    drawn uniformly from ``points``.  The same seed always kills at the
    same appends, so a failing chaos run can be replayed exactly.
    """

    def __init__(self, seed: int, rate: float,
                 points: tuple[CrashPoint, ...] = (
                     CrashPoint.BEFORE_APPEND,
                     CrashPoint.TORN_APPEND,
                     CrashPoint.AFTER_APPEND)):
        self._rng = random.Random(seed)
        self.rate = rate
        self.points = tuple(points)

    def decide(self, index: int) -> CrashPoint | None:
        if self._rng.random() < self.rate:
            return self.points[self._rng.randrange(len(self.points))]
        return None
