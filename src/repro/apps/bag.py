"""The paper's "Bag" application (Figure 2(b)) — bag-of-tasks parallelism.

"'Bag' is a parallel application that implements an application of the
'bag-of-tasks' paradigm.  The application is iterative, with computation
being divided into a set of possibly differently-sized tasks.  Each worker
process repeatedly requests and obtains tasks from the server, performs the
associated computations, returns the results to the server, and requests
additional tasks."

The Figure 2(b) bundle exposes three RSL features:

* a ``variable`` tag — ``workerNodes`` over a discrete domain,
* per-node ``seconds`` parameterized on the variable (total work constant),
* ``communication`` growing quadratically in the worker count,
* an explicit ``performance`` model as interpolated data points.

:class:`BagOfTasksApp` is the runnable version: a master process feeds a
task queue; workers on the assigned nodes pull tasks; between outer
iterations the application polls Harmony and reconfigures its worker count
— the "natural point to re-configure" of Section 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import random
from typing import Iterator, Sequence

from repro.api.client import HarmonyClient
from repro.api.variables import VariableType
from repro.cluster.kernel import Interrupted, Process
from repro.cluster.resources import Store
from repro.cluster.topology import Cluster
from repro.errors import HarmonyError
from repro.metrics import MetricInterface

__all__ = ["speedup_curve_points", "bag_bundle_rsl", "BagOfTasksApp",
           "IterationRecord", "BAG_BUNDLE_NAME", "BAG_OPTION_NAME"]

BAG_BUNDLE_NAME = "parallelism"
BAG_OPTION_NAME = "run"


def speedup_curve_points(total_seconds: float,
                         domain: Sequence[int],
                         overhead_alpha: float = 12.0,
                         ) -> list[tuple[int, float]]:
    """Data points for the runtime curve ``T/n + alpha*(n-1)^2``.

    The quadratic term models Bag's communication, which "grows as the
    square of the number of worker processes" — so the curve has an
    interior optimum.  With the Figure 4 defaults (T=2400, alpha=12,
    domain 1..8) the minimum falls at five nodes, reproducing the figure's
    "configuration of five nodes (rather than six)".
    """
    return [(n, total_seconds / n + overhead_alpha * (n - 1) ** 2)
            for n in domain]


def bag_bundle_rsl(app_name: str = "Bag",
                   total_seconds: float = 2400.0,
                   domain: Sequence[int] = (1, 2, 4, 8),
                   memory_mb: float = 32.0,
                   communication_coefficient: float = 0.5,
                   overhead_alpha: float = 12.0,
                   granularity_seconds: float = 0.0,
                   friction_seconds: float = 0.0) -> str:
    """The Figure 2(b) bundle.

    ``seconds`` is ``total/workerNodes`` (constant total work across
    configurations), ``communication`` is quadratic in ``workerNodes``, and
    the ``performance`` tag carries the interpolation points of the
    application-specific model.
    """
    domain_text = " ".join(str(n) for n in domain)
    points = speedup_curve_points(total_seconds, domain, overhead_alpha)
    points_text = " ".join(f"{{{n} {seconds:.1f}}}" for n, seconds in points)
    extras = ""
    if granularity_seconds > 0:
        extras += f"\n        {{granularity {granularity_seconds}}}"
    if friction_seconds > 0:
        extras += f"\n        {{friction {friction_seconds}}}"
    return f"""
harmonyBundle {app_name} {BAG_BUNDLE_NAME} {{
    {{{BAG_OPTION_NAME}
        {{variable workerNodes {{{domain_text}}}}}
        {{node worker {{seconds {{{total_seconds} / workerNodes}}}}
                     {{memory {memory_mb}}}
                     {{replicate workerNodes}}}}
        {{communication {{{communication_coefficient} * workerNodes * workerNodes}}}}
        {{performance workerNodes {points_text}}}{extras}}}}}
"""


@dataclass(frozen=True)
class IterationRecord:
    """One completed outer iteration."""

    index: int
    start_time: float
    elapsed_seconds: float
    worker_count: int
    hosts: tuple[str, ...]


@dataclass
class BagStatistics:
    iterations_completed: int = 0
    tasks_completed: int = 0
    reconfigurations: int = 0
    migration_seconds: float = 0.0
    migrated_mb: float = 0.0
    records: list[IterationRecord] = field(default_factory=list)


class BagOfTasksApp:
    """A runnable, reconfigurable bag-of-tasks application."""

    def __init__(self, name: str, cluster: Cluster, harmony: HarmonyClient,
                 metrics: MetricInterface | None = None,
                 total_seconds_per_iteration: float = 2400.0,
                 task_count: int = 48,
                 domain: Sequence[int] = (1, 2, 4, 8),
                 memory_mb: float = 32.0,
                 communication_coefficient: float = 0.5,
                 overhead_alpha: float = 12.0,
                 task_size_jitter: float = 0.5,
                 seed: int = 0):
        if task_count <= 0:
            raise HarmonyError("task_count must be positive")
        self.name = name
        self.cluster = cluster
        self.harmony = harmony
        self.metrics = metrics
        self.total_seconds = total_seconds_per_iteration
        self.task_count = task_count
        self.domain = tuple(domain)
        self.memory_mb = memory_mb
        self.communication_coefficient = communication_coefficient
        self.overhead_alpha = overhead_alpha
        self.task_size_jitter = task_size_jitter
        self.stats = BagStatistics()
        self._rng = random.Random(seed)
        self._worker_var = None
        self._hosts: list[str] = []
        self._process: Process | None = None

    # -- lifecycle ------------------------------------------------------------

    def start(self, iteration_limit: int | None = None,
              run_until: float | None = None) -> Process:
        self._process = self.cluster.kernel.spawn(
            self._run(iteration_limit, run_until), name=f"bag:{self.name}")
        return self._process

    def stop(self) -> None:
        if self._process is not None and self._process.is_alive:
            self._process.interrupt("stop")

    @property
    def current_worker_count(self) -> int:
        return len(self._hosts)

    # -- application body ----------------------------------------------------

    def _run(self, iteration_limit: int | None,
             run_until: float | None) -> Iterator:
        kernel = self.cluster.kernel
        self.harmony.startup(self.name)
        config = self.harmony.bundle_setup(bag_bundle_rsl(
            self.name, self.total_seconds, self.domain, self.memory_mb,
            self.communication_coefficient, self.overhead_alpha))
        self._apply_placements(config["placements"],
                               config["variables"].get("workerNodes"))
        self._worker_var = self.harmony.add_variable(
            f"{BAG_BUNDLE_NAME}.workerNodes",
            float(len(self._hosts)), VariableType.FLOAT)

        iteration = 0
        try:
            while True:
                if iteration_limit is not None and \
                        iteration >= iteration_limit:
                    break
                if run_until is not None and kernel.now >= run_until:
                    break
                yield from self._poll_harmony()
                yield from self._one_iteration(iteration)
                iteration += 1
        except Interrupted:
            pass
        self.harmony.end()

    def _poll_harmony(self) -> Iterator:
        """The outer-loop reconfiguration point.

        When Harmony changed the placement, the application migrates its
        per-worker state (``memory_mb`` of data per vacated node) to the
        new workers *before* the next iteration — the "frictional cost" the
        paper requires the controller to weigh: "the application will
        likely need to change the data layout, change the index structures,
        and move data among nodes to effect the reconfiguration".
        """
        update = self.harmony.poll_update()
        if update is None:
            return
        placements = {
            key[len(BAG_BUNDLE_NAME) + 1:-len(".hostname")]: value
            for key, value in update.items()
            if key.startswith(f"{BAG_BUNDLE_NAME}.")
            and key.endswith(".hostname")
        }
        worker_count = update.get(f"{BAG_BUNDLE_NAME}.workerNodes")
        if placements:
            old_hosts = list(self._hosts)
            self._apply_placements(placements, worker_count)
            self.stats.reconfigurations += 1
            yield from self._migrate(old_hosts, self._hosts)

    def _migrate(self, old_hosts: list[str], new_hosts: list[str],
                 ) -> Iterator:
        """Ship per-worker state from vacated nodes to newly added ones."""
        kernel = self.cluster.kernel
        vacated = [host for host in old_hosts if host not in new_hosts]
        added = [host for host in new_hosts if host not in old_hosts]
        if not vacated and not added:
            return
        start = kernel.now
        transfers = []
        # Data on vacated nodes must land somewhere that stays; data for
        # added nodes comes from a surviving (or vacated) node.
        survivors = [host for host in new_hosts if host in old_hosts]
        for index, source in enumerate(vacated):
            target = (added[index % len(added)] if added
                      else survivors[index % len(survivors)]
                      if survivors else None)
            if target is None or target == source:
                continue
            for link in self.cluster.path_links(source, target):
                transfers.append(link.transfer(self.memory_mb))
            self.stats.migrated_mb += self.memory_mb
        for index, target in enumerate(added[len(vacated):],
                                       start=len(vacated)):
            source = (survivors[index % len(survivors)] if survivors
                      else None)
            if source is None or source == target:
                continue
            for link in self.cluster.path_links(source, target):
                transfers.append(link.transfer(self.memory_mb))
            self.stats.migrated_mb += self.memory_mb
        if transfers:
            yield kernel.all_of(transfers)
        self.stats.migration_seconds += kernel.now - start

    def _apply_placements(self, placements: dict[str, str],
                          worker_count: float | None) -> None:
        hosts = [hostname for local_name, hostname in sorted(
            placements.items()) if local_name.startswith("worker")]
        if not hosts:
            raise HarmonyError(
                f"{self.name}: no worker placements in {placements}")
        if worker_count is not None and int(worker_count) != len(hosts):
            raise HarmonyError(
                f"{self.name}: placement count {len(hosts)} disagrees with "
                f"workerNodes={worker_count}")
        self._hosts = hosts

    def _one_iteration(self, index: int) -> Iterator:
        kernel = self.cluster.kernel
        start = kernel.now
        queue = Store(kernel, name=f"bag:{self.name}:tasks")
        for size in self._task_sizes():
            queue.put(size)
        for _ in self._hosts:
            queue.put(None)  # poison pill per worker

        workers = [
            kernel.spawn(self._worker(hostname, queue),
                         name=f"bag-worker:{self.name}:{hostname}")
            for hostname in self._hosts
        ]
        yield kernel.all_of(workers)
        yield from self._synchronize()
        yield from self._communicate()

        elapsed = kernel.now - start
        record = IterationRecord(index=index, start_time=start,
                                 elapsed_seconds=elapsed,
                                 worker_count=len(self._hosts),
                                 hosts=tuple(self._hosts))
        self.stats.records.append(record)
        self.stats.iterations_completed += 1
        self.harmony.report_metric("iteration_seconds", elapsed)
        if self.metrics is not None:
            self.metrics.report(f"bag.{self.name}.iteration_seconds",
                                kernel.now, elapsed)

    def _task_sizes(self) -> list[float]:
        """Differently-sized tasks summing exactly to the iteration total."""
        base = self.total_seconds / self.task_count
        sizes = [base * (1.0 + self.task_size_jitter
                         * (self._rng.random() * 2 - 1))
                 for _ in range(self.task_count)]
        scale = self.total_seconds / sum(sizes)
        return [size * scale for size in sizes]

    def _worker(self, hostname: str, queue: Store) -> Iterator:
        node = self.cluster.node(hostname)
        while True:
            task = yield queue.get()
            if task is None:
                return
            yield node.compute(task)
            self.stats.tasks_completed += 1

    def _synchronize(self) -> Iterator:
        """Serial coordination overhead growing quadratically in workers.

        This is the physical counterpart of the ``alpha * (n-1)^2`` term in
        the application's declared performance curve: the master merges
        results and rebuilds task state, work that grows with the number of
        workers and does not parallelize.
        """
        n = len(self._hosts)
        overhead = self.overhead_alpha * (n - 1) ** 2
        if overhead > 0:
            yield self.cluster.node(self._hosts[0]).compute(overhead)

    def _communicate(self) -> Iterator:
        """Quadratic end-of-iteration communication between workers."""
        n = len(self._hosts)
        total_mb = self.communication_coefficient * n * n
        hosts = sorted(set(self._hosts))
        pairs = [(a, b) for i, a in enumerate(hosts)
                 for b in hosts[i + 1:]]
        if not pairs or total_mb <= 0:
            return
        per_pair = total_mb / len(pairs)
        transfers = []
        for host_a, host_b in pairs:
            for link in self.cluster.path_links(host_a, host_b):
                transfers.append(link.transfer(per_pair))
        if transfers:
            yield self.cluster.kernel.all_of(transfers)

    # -- reporting -------------------------------------------------------------

    def iteration_series(self) -> list[tuple[float, float, int]]:
        """(start time, elapsed, workers) per completed iteration."""
        return [(record.start_time, record.elapsed_seconds,
                 record.worker_count) for record in self.stats.records]
