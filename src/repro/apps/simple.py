"""The paper's "Simple" application (Figure 2(a)).

"'Simple' is a generic parallel application that runs on four processors.
There are two high-level resource requests.  The first specifies the
required characteristics of a worker node.  Each node requires 300 seconds
of computation on the reference machine and 32 Mbytes of memory.  The
'replicate' tag specifies that this node definition should be used to match
four distinct nodes ...  Second, we use the 'communication' tag to specify
communication requirements for the entire application."

Besides the RSL, this module provides a runnable simulated version: four
worker processes compute in parallel on their assigned nodes while the
application's general communication flows between them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.api.client import HarmonyClient
from repro.cluster.kernel import Process
from repro.cluster.topology import Cluster

__all__ = ["simple_bundle_rsl", "SimpleParallelApp", "SimpleRunReport"]


def simple_bundle_rsl(app_name: str = "Simple", workers: int = 4,
                      seconds_per_worker: float = 300.0,
                      memory_mb: float = 32.0,
                      communication_mb: float = 64.0) -> str:
    """The Figure 2(a) bundle: one option, N replicated worker nodes."""
    return f"""
harmonyBundle {app_name} run {{
    {{fixed
        {{node worker {{seconds {seconds_per_worker}}}
                     {{memory {memory_mb}}}
                     {{replicate {workers}}}}}
        {{communication {communication_mb}}}}}}}
"""


@dataclass
class SimpleRunReport:
    """What one execution of Simple did."""

    started_at: float
    finished_at: float
    placements: dict[str, str]

    @property
    def elapsed_seconds(self) -> float:
        return self.finished_at - self.started_at


class SimpleParallelApp:
    """A runnable four-processor job driven by its Harmony placement."""

    def __init__(self, cluster: Cluster, harmony: HarmonyClient,
                 app_name: str = "Simple", workers: int = 4,
                 seconds_per_worker: float = 300.0,
                 memory_mb: float = 32.0,
                 communication_mb: float = 64.0):
        self.cluster = cluster
        self.harmony = harmony
        self.app_name = app_name
        self.workers = workers
        self.seconds_per_worker = seconds_per_worker
        self.memory_mb = memory_mb
        self.communication_mb = communication_mb
        self.report: SimpleRunReport | None = None

    def start(self) -> Process:
        return self.cluster.kernel.spawn(self._run(),
                                         name=f"simple:{self.app_name}")

    def _run(self) -> Iterator:
        kernel = self.cluster.kernel
        self.harmony.startup(self.app_name)
        config = self.harmony.bundle_setup(simple_bundle_rsl(
            self.app_name, self.workers, self.seconds_per_worker,
            self.memory_mb, self.communication_mb))
        placements = dict(config["placements"])
        started = kernel.now

        compute_events = [
            self.cluster.node(hostname).compute(self.seconds_per_worker)
            for hostname in placements.values()
        ]
        yield kernel.all_of(compute_events)
        yield from self._communicate(placements)

        self.report = SimpleRunReport(started_at=started,
                                      finished_at=kernel.now,
                                      placements=placements)
        self.harmony.end()

    def _communicate(self, placements: dict[str, str]) -> Iterator:
        """General communication: total MB spread over all node pairs."""
        hosts = sorted(set(placements.values()))
        pairs = [(a, b) for i, a in enumerate(hosts)
                 for b in hosts[i + 1:] if a != b]
        if not pairs or self.communication_mb <= 0:
            return
        per_pair_mb = self.communication_mb / len(pairs)
        transfers = []
        for host_a, host_b in pairs:
            for link in self.cluster.path_links(host_a, host_b):
                transfers.append(link.transfer(per_pair_mb))
        if transfers:
            yield self.cluster.kernel.all_of(transfers)
