"""Harmonized example applications.

* :mod:`repro.apps.simple` — the Figure 2(a) fixed four-processor job;
* :mod:`repro.apps.bag` — the Figure 2(b) bag-of-tasks application with
  variable parallelism;
* :mod:`repro.apps.database` — the Section 3.5/6 hybrid client-server
  database (query shipping vs. data shipping);
* :mod:`repro.apps.parallel_experiment` — the Figure 4 online
  reconfiguration experiment.
"""

from repro.apps.bag import (
    BAG_BUNDLE_NAME,
    BAG_OPTION_NAME,
    BagOfTasksApp,
    IterationRecord,
    bag_bundle_rsl,
    speedup_curve_points,
)
from repro.apps.parallel_experiment import (
    FrameSummary,
    ParallelExperimentConfig,
    ParallelExperimentResult,
    run_parallel_experiment,
)
from repro.apps.simple import SimpleParallelApp, SimpleRunReport, simple_bundle_rsl

__all__ = [
    "simple_bundle_rsl", "SimpleParallelApp", "SimpleRunReport",
    "bag_bundle_rsl", "speedup_curve_points", "BagOfTasksApp",
    "IterationRecord", "BAG_BUNDLE_NAME", "BAG_OPTION_NAME",
    "ParallelExperimentConfig", "ParallelExperimentResult", "FrameSummary",
    "run_parallel_experiment",
]
