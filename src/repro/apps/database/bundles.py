"""RSL bundles for the client-server database (the paper's Figure 3).

The DBclient application exports a bundle named ``where`` with two options:

* ``QS`` (query shipping) — queries execute at the server: heavy server
  CPU, a tiny request and a small result transfer;
* ``DS`` (data shipping) — queries execute at the client: light server CPU
  (page service), heavy client CPU, and a link requirement that *depends on
  the memory Harmony grants the client*: pages evicted from the client
  cache must be re-shipped every query.

Unlike the paper's hand-written constants, :func:`database_bundle_rsl`
derives its numbers from the actual engine cost model, so the RSL the
controller reasons over matches what the simulated database really does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.database.executor import DatabaseEngine

__all__ = ["DatabaseBundleNumbers", "database_bundle_numbers",
           "database_bundle_rsl", "BUNDLE_NAME", "OPTION_QUERY_SHIPPING",
           "OPTION_DATA_SHIPPING"]

BUNDLE_NAME = "where"
OPTION_QUERY_SHIPPING = "QS"
OPTION_DATA_SHIPPING = "DS"


@dataclass(frozen=True)
class DatabaseBundleNumbers:
    """Engine-derived constants that go into the Figure 3 bundle."""

    qs_server_seconds: float     # per-query CPU at the server (warm cache)
    qs_client_seconds: float     # submit + display at the client
    qs_link_mb: float            # request + result transfer
    ds_server_seconds: float     # page-service CPU at the server
    ds_client_seconds: float     # per-query CPU at the client
    ds_min_client_memory_mb: float
    working_set_mb: float        # both relations; a cache this big stops
    #                              re-shipping (the memory/bandwidth trade)
    ds_base_link_mb: float       # request + residual traffic at full cache
    server_memory_mb: float


def database_bundle_numbers(engine: DatabaseEngine,
                            expected_selected: int | None = None,
                            expected_result_tuples: int | None = None,
                            ) -> DatabaseBundleNumbers:
    """Derive bundle constants from the engine's cost parameters.

    ``expected_selected`` defaults to 10% of each relation (the paper's
    selectivity); ``expected_result_tuples`` to 1% of a relation (the
    expected size of joining two independent 10% samples on a key).
    """
    params = engine.params
    count_a = engine.relation_a.tuple_count
    count_b = engine.relation_b.tuple_count
    if expected_selected is None:
        expected_selected = int(0.1 * count_a) + int(0.1 * count_b)
    if expected_result_tuples is None:
        expected_result_tuples = int(0.01 * min(count_a, count_b))

    per_query_cpu = expected_selected * (params.select_tuple_seconds
                                         + params.join_tuple_seconds)
    result_mb = (expected_result_tuples * params.result_tuple_bytes
                 + params.query_request_bytes) / (1024 * 1024)
    working_set_mb = engine.working_set_mb()
    # Page service cost if the whole working set were shipped once.
    full_ship_seconds = engine.working_set_pages() \
        * params.page_service_seconds

    return DatabaseBundleNumbers(
        qs_server_seconds=round(per_query_cpu, 3),
        qs_client_seconds=0.2,
        qs_link_mb=round(max(result_mb, 0.01), 3),
        ds_server_seconds=round(max(full_ship_seconds * 0.1, 0.05), 3),
        ds_client_seconds=round(per_query_cpu, 3),
        ds_min_client_memory_mb=16.0,
        working_set_mb=round(working_set_mb, 1),
        ds_base_link_mb=round(max(result_mb, 0.01), 3),
        server_memory_mb=max(64.0, working_set_mb * 1.5),
    )


def database_bundle_rsl(client_hostname: str, server_hostname: str,
                        numbers: DatabaseBundleNumbers,
                        app_name: str = "DBclient") -> str:
    """The Figure 3 bundle, parameterized for one client.

    The DS link expression mirrors the paper's
    ``44 + (client.memory > 24 ? 24 : client.memory) - 17`` pattern:
    traffic falls linearly as granted client memory approaches the working
    set, then flattens — so Harmony "can decide to allocate additional
    memory resources at the client in order to reduce bandwidth
    requirements".
    """
    n = numbers
    ds_link = (f"{n.ds_base_link_mb} + {n.working_set_mb} - "
               f"(client.memory > {n.working_set_mb} ? "
               f"{n.working_set_mb} : client.memory)")
    return f"""
harmonyBundle {app_name} {BUNDLE_NAME} {{
    {{{OPTION_QUERY_SHIPPING}
        {{node server {{hostname {server_hostname}}}
                     {{seconds {n.qs_server_seconds}}}
                     {{memory {n.server_memory_mb}}}}}
        {{node client {{hostname {client_hostname}}}
                     {{seconds {n.qs_client_seconds}}}
                     {{memory 2}}}}
        {{link client server {n.qs_link_mb}}}}}
    {{{OPTION_DATA_SHIPPING}
        {{node server {{hostname {server_hostname}}}
                     {{seconds {n.ds_server_seconds}}}
                     {{memory {n.server_memory_mb}}}}}
        {{node client {{hostname {client_hostname}}}
                     {{memory >={n.ds_min_client_memory_mb}}}
                     {{seconds {n.ds_client_seconds}}}}}
        {{link client server {{{ds_link}}}}}}}}}
"""
