"""The harmonized database client application.

Each client submits the Wisconsin workload in a loop.  At every query
boundary — the natural reconfiguration phase the paper describes
("database applications usually need to complete the current query before
reconfiguring the system from a query shipping to a data-shipping
configuration") — the client polls its Harmony variables:

* ``where.option`` — QS or DS, set by the controller;
* ``where.client.memory`` — the granted cache size; the client resizes its
  buffer pool to match (the memory/bandwidth trade of Figure 3).

Query shipping: ship the request, let the server execute, ship the result
back.  Data shipping: fault missing pages from the server into the local
cache, then execute locally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.api.client import HarmonyClient
from repro.api.variables import VariableType
from repro.apps.database.bundles import (
    BUNDLE_NAME,
    OPTION_DATA_SHIPPING,
    OPTION_QUERY_SHIPPING,
)
from repro.apps.database.query import WisconsinWorkload
from repro.apps.database.server import DatabaseServerApp
from repro.apps.database.storage import BufferPool
from repro.cluster.kernel import Interrupted, Process
from repro.cluster.topology import Cluster
from repro.errors import DatabaseError
from repro.metrics import MetricInterface

__all__ = ["DatabaseClientApp", "QueryRecord"]


@dataclass(frozen=True)
class QueryRecord:
    """One completed query: when, how long, and under which option."""

    start_time: float
    response_seconds: float
    option: str
    result_tuples: int
    shipped_mb: float


@dataclass
class ClientStatistics:
    queries_completed: int = 0
    qs_queries: int = 0
    ds_queries: int = 0
    shipped_megabytes: float = 0.0
    records: list[QueryRecord] = field(default_factory=list)


class DatabaseClientApp:
    """One DBclient instance running at a client node."""

    def __init__(self, name: str, cluster: Cluster, hostname: str,
                 server: DatabaseServerApp, harmony: HarmonyClient,
                 bundle_rsl: str, workload: WisconsinWorkload,
                 metrics: MetricInterface,
                 initial_cache_mb: float = 16.0,
                 think_seconds: float = 0.0):
        self.name = name
        self.cluster = cluster
        self.hostname = hostname
        self.node = cluster.node(hostname)
        self.server = server
        self.harmony = harmony
        self.bundle_rsl = bundle_rsl
        self.workload = workload
        self.metrics = metrics
        self.think_seconds = think_seconds
        self.cache = BufferPool(initial_cache_mb, name=f"client:{hostname}")
        self.stats = ClientStatistics()
        self._option_var = None
        self._memory_var = None
        self._process: Process | None = None

    # -- lifecycle --------------------------------------------------------------

    def start(self, query_limit: int | None = None,
              run_until: float | None = None) -> Process:
        """Register with Harmony and begin the query loop."""
        self._process = self.cluster.kernel.spawn(
            self._run(query_limit, run_until), name=f"dbclient:{self.name}")
        return self._process

    def stop(self) -> None:
        if self._process is not None and self._process.is_alive:
            self._process.interrupt("stop")

    @property
    def current_option(self) -> str:
        if self._option_var is None:
            return OPTION_QUERY_SHIPPING
        return str(self._option_var.value)

    # -- the application loop ------------------------------------------------------

    def _run(self, query_limit: int | None,
             run_until: float | None) -> Iterator:
        kernel = self.cluster.kernel
        self.harmony.startup("DBclient")
        self.harmony.bundle_setup(self.bundle_rsl)
        self._option_var = self.harmony.add_variable(
            f"{BUNDLE_NAME}.option", OPTION_QUERY_SHIPPING,
            VariableType.STRING)
        self._memory_var = self.harmony.add_variable(
            f"{BUNDLE_NAME}.client.memory", self.cache.capacity_pages
            * 8192 / (1024 * 1024), VariableType.FLOAT)
        self._apply_memory_grant()

        try:
            while True:
                if query_limit is not None and \
                        self.stats.queries_completed >= query_limit:
                    break
                if run_until is not None and kernel.now >= run_until:
                    break
                # The paper's polling point: between queries.
                self._poll_harmony()
                yield from self._one_query()
                if self.think_seconds > 0:
                    yield kernel.timeout(self.think_seconds)
        except Interrupted:
            pass
        self.harmony.end()

    def _poll_harmony(self) -> None:
        self.harmony.poll_update()
        if self._memory_var is not None and self._memory_var.changed:
            self._memory_var.consume()
            self._apply_memory_grant()
        if self._option_var is not None and self._option_var.changed:
            self._option_var.consume()

    def _apply_memory_grant(self) -> None:
        if self._memory_var is None:
            return
        granted = float(self._memory_var.value)
        if granted > 0:
            self.cache.resize(granted)

    def _one_query(self) -> Iterator:
        kernel = self.cluster.kernel
        query = self.workload.next_query()
        option = self.current_option
        start = kernel.now
        shipped_mb = 0.0

        if option == OPTION_QUERY_SHIPPING:
            profile, shipped_mb = yield from self._query_shipping(query)
        elif option == OPTION_DATA_SHIPPING:
            profile, shipped_mb = yield from self._data_shipping(query)
        else:
            raise DatabaseError(f"unknown option {option!r}")

        response = kernel.now - start
        record = QueryRecord(start_time=start, response_seconds=response,
                             option=option,
                             result_tuples=profile.result_tuples,
                             shipped_mb=shipped_mb)
        self.stats.records.append(record)
        self.stats.queries_completed += 1
        self.stats.shipped_megabytes += shipped_mb
        if option == OPTION_QUERY_SHIPPING:
            self.stats.qs_queries += 1
        else:
            self.stats.ds_queries += 1
        self.harmony.report_metric("response_time", response)
        self.metrics.report(f"db.{self.name}.response_time", kernel.now,
                            response)

    def _query_shipping(self, query) -> Iterator:
        """Execute at the server; ship request there and result back."""
        kernel = self.cluster.kernel
        params = self.server.engine.params
        link_mb_request = params.query_request_bytes / (1024 * 1024)
        shipped = link_mb_request
        yield from self._transfer(link_mb_request)
        profile = yield kernel.spawn(self.server.execute_query(query),
                                     name=f"qs:{self.name}")
        # Client-side submit/merge/display work.
        yield self.node.compute(0.2)
        result_mb = profile.result_bytes(params) / (1024 * 1024)
        shipped += result_mb
        yield from self._transfer(result_mb)
        return profile, shipped

    def _data_shipping(self, query) -> Iterator:
        """Fault missing pages from the server, execute locally."""
        kernel = self.cluster.kernel
        profile = self.server.engine.execute(query, self.cache)
        shipped = 0.0
        if profile.page_misses > 0:
            shipped = yield kernel.spawn(
                self.server.serve_pages(profile.page_misses),
                name=f"ds-pages:{self.name}")
            yield from self._transfer(shipped)
        # Local execution: CPU only — faulted pages arrived by network, so
        # the engine's io_seconds (a *disk* cost) does not apply here.
        if profile.cpu_seconds > 0:
            yield self.node.compute(profile.cpu_seconds)
        return profile, shipped

    def _transfer(self, megabytes: float) -> Iterator:
        if megabytes <= 0:
            return
        links = self.cluster.path_links(self.hostname,
                                        self.server.hostname)
        for link in links:
            yield link.transfer(megabytes)

    # -- reporting ---------------------------------------------------------------

    def response_time_series(self) -> list[tuple[float, float]]:
        return [(record.start_time, record.response_seconds)
                for record in self.stats.records]

    def mean_response(self, since: float = 0.0,
                      option: str | None = None) -> float | None:
        values = [record.response_seconds for record in self.stats.records
                  if record.start_time >= since
                  and (option is None or record.option == option)]
        if not values:
            return None
        return sum(values) / len(values)
