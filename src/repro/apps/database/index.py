"""Secondary indexes for the mini relational engine.

A :class:`SortedIndex` is a sorted array of (key, page id, row) entries with
binary-search point and range lookups — functionally what the paper's
"selected on an indexed attribute" requires, with the page ids needed for
buffer-pool accounting.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator

from repro.apps.database.storage import PageId
from repro.errors import DatabaseError

__all__ = ["SortedIndex", "IndexEntry"]

IndexEntry = tuple[float, PageId, tuple]


class SortedIndex:
    """An ordered secondary index over one attribute."""

    def __init__(self, field: str, entries: list[IndexEntry]):
        self.field = field
        self._entries = entries
        self._keys = [entry[0] for entry in entries]

    @classmethod
    def build(cls, field: str,
              entries: Iterable[tuple[float, PageId, tuple]],
              ) -> "SortedIndex":
        ordered = sorted(entries, key=lambda entry: entry[0])
        return cls(field, ordered)

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: float) -> list[IndexEntry]:
        """All entries with exactly this key."""
        lo = bisect.bisect_left(self._keys, key)
        hi = bisect.bisect_right(self._keys, key)
        return self._entries[lo:hi]

    def range(self, low: float, high: float) -> list[IndexEntry]:
        """Entries with ``low <= key <= high`` (inclusive both ends)."""
        if low > high:
            raise DatabaseError(f"bad index range [{low}, {high}]")
        lo = bisect.bisect_left(self._keys, low)
        hi = bisect.bisect_right(self._keys, high)
        return self._entries[lo:hi]

    def scan(self) -> Iterator[IndexEntry]:
        return iter(self._entries)

    def distinct_pages(self, entries: list[IndexEntry]) -> list[PageId]:
        """Unique page ids referenced by ``entries``, in first-seen order."""
        seen: set[PageId] = set()
        pages: list[PageId] = []
        for _key, page_id, _row in entries:
            if page_id not in seen:
                seen.add(page_id)
                pages.append(page_id)
        return pages
