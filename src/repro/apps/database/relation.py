"""Wisconsin benchmark relations.

The paper's workload is "randomly perturbed join queries over two instances
of the Wisconsin benchmark relations, each of which contains 100,000
208-byte tuples".  This module generates the classic Wisconsin schema
deterministically (seeded), stores it in a :class:`HeapFile`, and builds the
standard indexes.

Schema (DeWitt's Wisconsin benchmark):

* ``unique1`` — 0..n-1, random order (candidate key),
* ``unique2`` — 0..n-1, sequential (clustered key),
* ``two, four, ten, twenty`` — ``unique1 mod k``,
* ``onePercent, tenPercent, twentyPercent, fiftyPercent`` — selection
  helpers (``unique1 mod 100 / 10 / 5 / 2``),
* ``unique3`` — copy of unique1,
* ``evenOnePercent, oddOnePercent`` — ``onePercent*2`` and ``+1``,
* ``stringu1, stringu2, string4`` — 52-byte padding strings.

With three 52-byte strings and thirteen 4-byte integers a tuple is exactly
208 bytes, matching the paper.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.apps.database.index import SortedIndex
from repro.apps.database.storage import HeapFile, PageId
from repro.errors import DatabaseError

__all__ = ["WISCONSIN_FIELDS", "TUPLE_BYTES", "WisconsinRelation",
           "make_wisconsin_pair"]

WISCONSIN_FIELDS = (
    "unique1", "unique2", "two", "four", "ten", "twenty",
    "onePercent", "tenPercent", "twentyPercent", "fiftyPercent",
    "unique3", "evenOnePercent", "oddOnePercent",
    "stringu1", "stringu2", "string4",
)

#: 13 integers x 4 bytes + 3 strings x 52 bytes = 208 bytes.
TUPLE_BYTES = 208

_FIELD_INDEX = {name: i for i, name in enumerate(WISCONSIN_FIELDS)}

_STRING4_CYCLE = ("AAAA", "HHHH", "OOOO", "VVVV")


def _unique_string(value: int) -> str:
    """The benchmark's 52-byte string encoding of an integer."""
    letters = []
    remainder = value
    for _ in range(7):
        letters.append(chr(ord("A") + remainder % 26))
        remainder //= 26
    return "".join(reversed(letters)).ljust(52, "x")


@dataclass(frozen=True)
class _Stats:
    tuple_count: int
    page_count: int
    megabytes: float


class WisconsinRelation:
    """One generated Wisconsin relation with its heap file and indexes."""

    def __init__(self, name: str, tuple_count: int = 100_000,
                 seed: int = 1):
        if tuple_count <= 0:
            raise DatabaseError("tuple_count must be positive")
        self.name = name
        self.tuple_count = tuple_count
        self.heap = HeapFile(name, TUPLE_BYTES)
        rng = random.Random(seed)
        unique1_values = list(range(tuple_count))
        rng.shuffle(unique1_values)

        placements: list[tuple[PageId, tuple]] = []
        for unique2, unique1 in enumerate(unique1_values):
            row = self._make_row(unique1, unique2)
            page_id = self.heap.append(row)
            placements.append((page_id, row))

        self.indexes: dict[str, SortedIndex] = {}
        for field in ("unique1", "unique2", "tenPercent", "onePercent"):
            self.indexes[field] = SortedIndex.build(
                field, ((row[_FIELD_INDEX[field]], page_id, row)
                        for page_id, row in placements))

    @staticmethod
    def _make_row(unique1: int, unique2: int) -> tuple:
        one_percent = unique1 % 100
        return (
            unique1,
            unique2,
            unique1 % 2,
            unique1 % 4,
            unique1 % 10,
            unique1 % 20,
            one_percent,
            unique1 % 10,          # tenPercent
            unique1 % 5,           # twentyPercent
            unique1 % 2,           # fiftyPercent
            unique1,               # unique3
            one_percent * 2,       # evenOnePercent
            one_percent * 2 + 1,   # oddOnePercent
            _unique_string(unique1),
            _unique_string(unique2),
            _STRING4_CYCLE[unique1 % 4],
        )

    # -- field access -------------------------------------------------------

    @staticmethod
    def field_index(field: str) -> int:
        if field not in _FIELD_INDEX:
            raise DatabaseError(f"unknown Wisconsin field {field!r}")
        return _FIELD_INDEX[field]

    def index_on(self, field: str) -> SortedIndex:
        if field not in self.indexes:
            raise DatabaseError(
                f"{self.name}: no index on {field!r} "
                f"(indexed: {sorted(self.indexes)})")
        return self.indexes[field]

    def stats(self) -> _Stats:
        return _Stats(tuple_count=self.heap.tuple_count,
                      page_count=self.heap.page_count,
                      megabytes=self.heap.page_count * 8192 / (1024 * 1024))


def make_wisconsin_pair(tuple_count: int = 100_000, seed: int = 7,
                        ) -> tuple[WisconsinRelation, WisconsinRelation]:
    """The paper's "two instances of the Wisconsin benchmark relations"."""
    return (WisconsinRelation("wisconsinA", tuple_count, seed=seed),
            WisconsinRelation("wisconsinB", tuple_count, seed=seed + 1))
