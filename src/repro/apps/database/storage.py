"""Page-based storage for the mini relational engine.

The paper's database was Tornadito, "a relational database engine built on
top of the SHORE storage manager".  This module is the SHORE substitute:
heap files of fixed-size pages and an LRU buffer pool with hit/miss
accounting.  Tuples are real Python objects — queries genuinely execute —
while the page-granular accounting is what drives simulated I/O and
data-shipping costs.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.errors import DatabaseError

__all__ = ["PAGE_BYTES", "Page", "HeapFile", "BufferPool", "PageId"]

#: Fixed page size, SHORE-like.
PAGE_BYTES = 8192


@dataclass(frozen=True)
class PageId:
    """Globally unique page address: (file name, page number)."""

    file_name: str
    page_number: int

    def __str__(self) -> str:
        return f"{self.file_name}#{self.page_number}"


@dataclass
class Page:
    """One fixed-size page holding whole tuples (no spanning)."""

    page_id: PageId
    tuple_bytes: int
    tuples: list[tuple] = field(default_factory=list)

    @property
    def capacity(self) -> int:
        return PAGE_BYTES // self.tuple_bytes

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self.tuples)

    def insert(self, row: tuple) -> None:
        if self.free_slots <= 0:
            raise DatabaseError(f"page {self.page_id} is full")
        self.tuples.append(row)


class HeapFile:
    """An append-only sequence of pages storing one relation."""

    def __init__(self, name: str, tuple_bytes: int):
        if tuple_bytes <= 0 or tuple_bytes > PAGE_BYTES:
            raise DatabaseError(
                f"tuple size {tuple_bytes} does not fit a {PAGE_BYTES}-byte "
                f"page")
        self.name = name
        self.tuple_bytes = tuple_bytes
        self._pages: list[Page] = []

    @property
    def page_count(self) -> int:
        return len(self._pages)

    @property
    def tuple_count(self) -> int:
        return sum(len(page.tuples) for page in self._pages)

    @property
    def tuples_per_page(self) -> int:
        return PAGE_BYTES // self.tuple_bytes

    def append(self, row: tuple) -> PageId:
        """Insert a tuple, opening a new page when the last one is full."""
        if not self._pages or self._pages[-1].free_slots == 0:
            page_id = PageId(self.name, len(self._pages))
            self._pages.append(Page(page_id=page_id,
                                    tuple_bytes=self.tuple_bytes))
        page = self._pages[-1]
        page.insert(row)
        return page.page_id

    def bulk_load(self, rows: Sequence[tuple]) -> None:
        for row in rows:
            self.append(row)

    def page(self, page_number: int) -> Page:
        if not 0 <= page_number < len(self._pages):
            raise DatabaseError(
                f"{self.name}: no page {page_number} "
                f"(file has {len(self._pages)})")
        return self._pages[page_number]

    def page_ids(self) -> list[PageId]:
        return [page.page_id for page in self._pages]

    def scan(self) -> Iterator[tuple[PageId, tuple]]:
        """Yield (page id, tuple) over the whole file in storage order."""
        for page in self._pages:
            for row in page.tuples:
                yield page.page_id, row


class BufferPool:
    """An LRU page cache with hit/miss statistics.

    Capacity is expressed in megabytes to line up with the RSL ``memory``
    tags: a client granted 32 MB caches ``32 MB / 8 KB = 4096`` pages.
    """

    def __init__(self, capacity_mb: float, name: str = ""):
        if capacity_mb <= 0:
            raise DatabaseError("buffer pool capacity must be positive")
        self.name = name
        self._capacity_pages = max(1, int(capacity_mb * 1024 * 1024
                                          // PAGE_BYTES))
        self._resident: OrderedDict[PageId, None] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def capacity_pages(self) -> int:
        return self._capacity_pages

    @property
    def resident_pages(self) -> int:
        return len(self._resident)

    def resize(self, capacity_mb: float) -> int:
        """Change capacity (Harmony granting more/less memory).

        Returns the number of pages evicted by a shrink.
        """
        if capacity_mb <= 0:
            raise DatabaseError("buffer pool capacity must be positive")
        self._capacity_pages = max(1, int(capacity_mb * 1024 * 1024
                                          // PAGE_BYTES))
        evicted = 0
        while len(self._resident) > self._capacity_pages:
            self._resident.popitem(last=False)
            evicted += 1
        self.evictions += evicted
        return evicted

    def access(self, page_id: PageId) -> bool:
        """Touch a page; returns True on hit, False on miss (page faulted in)."""
        if page_id in self._resident:
            self._resident.move_to_end(page_id)
            self.hits += 1
            return True
        self.misses += 1
        self._resident[page_id] = None
        if len(self._resident) > self._capacity_pages:
            self._resident.popitem(last=False)
            self.evictions += 1
        return False

    def access_many(self, page_ids: Sequence[PageId]) -> int:
        """Touch pages in order; returns the number of misses."""
        misses = 0
        for page_id in page_ids:
            if not self.access(page_id):
                misses += 1
        return misses

    def contains(self, page_id: PageId) -> bool:
        return page_id in self._resident

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        self._resident.clear()
