"""The harmonized database server application.

"We assume a single, always available server and one or more clients.  The
interface to Harmony is handled entirely by the clients."  The server app is
therefore passive with respect to Harmony: it owns the relations, the server
buffer pool, and the server node's CPU, and offers two services to client
processes — executing whole queries (query shipping) and serving pages
(data shipping).  Because the server CPU is a fair-share resource,
concurrent clients contend exactly as on the paper's shared SP-2 server
node, including the cooperative-caching effect: all clients share one
server buffer pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator

from repro.apps.database.executor import DatabaseEngine, ExecutionProfile
from repro.apps.database.query import JoinQuery
from repro.apps.database.storage import PAGE_BYTES, BufferPool
from repro.cluster.topology import Cluster

__all__ = ["DatabaseServerApp", "ServerStatistics"]


@dataclass
class ServerStatistics:
    """Counters for tests and the experiment report."""

    queries_executed: int = 0
    pages_served: int = 0
    server_cpu_seconds: float = 0.0
    result_megabytes: float = 0.0
    profiles: list[ExecutionProfile] = field(default_factory=list)


class DatabaseServerApp:
    """The always-available database server at one cluster node."""

    def __init__(self, cluster: Cluster, hostname: str,
                 engine: DatabaseEngine, buffer_pool_mb: float = 64.0,
                 keep_profiles: bool = False):
        self.cluster = cluster
        self.hostname = hostname
        self.engine = engine
        self.node = cluster.node(hostname)
        self.pool = BufferPool(buffer_pool_mb, name=f"server:{hostname}")
        self.stats = ServerStatistics()
        self._keep_profiles = keep_profiles

    # -- query shipping ----------------------------------------------------------

    def execute_query(self, query: JoinQuery,
                      ) -> Generator[object, object, ExecutionProfile]:
        """Run a query at the server (a simulation sub-process).

        Yields server CPU work; returns the execution profile.  The caller
        (the client process) is responsible for shipping the result back
        over its link.
        """
        profile = self.engine.execute(query, self.pool)
        self.stats.queries_executed += 1
        self.stats.server_cpu_seconds += profile.compute_seconds
        self.stats.result_megabytes += \
            profile.result_bytes(self.engine.params) / (1024 * 1024)
        if self._keep_profiles:
            self.stats.profiles.append(profile)
        if profile.compute_seconds > 0:
            yield self.node.compute(profile.compute_seconds)
        return profile

    # -- data shipping ----------------------------------------------------------

    def serve_pages(self, page_count: int,
                    ) -> Generator[object, object, float]:
        """Ship ``page_count`` pages to a client; returns megabytes shipped.

        Charges the server the per-page service CPU; the caller transfers
        the returned megabytes over its link.
        """
        if page_count <= 0:
            return 0.0
        service_seconds = page_count * self.engine.params.page_service_seconds
        self.stats.pages_served += page_count
        self.stats.server_cpu_seconds += service_seconds
        yield self.node.compute(service_seconds)
        return page_count * PAGE_BYTES / (1024 * 1024)
