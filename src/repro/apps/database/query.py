"""Query descriptions and the Wisconsin join workload.

"Each client ran the same workload, a set of similar, but randomly
perturbed join queries over two instances of the Wisconsin benchmark
relations ...  In each query, tuples from both relations are selected on an
indexed attribute (10% selectivity) and then joined on a unique attribute."

:class:`JoinQuery` captures one such query; :class:`WisconsinWorkload`
generates the randomly perturbed stream.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import DatabaseError

__all__ = ["JoinQuery", "WisconsinWorkload"]


@dataclass(frozen=True)
class JoinQuery:
    """Select 10% of each relation on an indexed attribute, join on a key.

    ``select_field`` must be indexed in both relations; ``select_value_a``
    and ``select_value_b`` pick which 10% slice of each relation
    participates; ``join_field`` must be a unique attribute.
    """

    select_field: str = "tenPercent"
    select_value_a: int = 0
    select_value_b: int = 0
    join_field: str = "unique1"

    def __post_init__(self) -> None:
        if self.select_field == self.join_field:
            raise DatabaseError(
                "selection and join attributes must differ")

    def describe(self) -> str:
        return (f"SELECT * FROM A, B WHERE "
                f"A.{self.select_field}={self.select_value_a} AND "
                f"B.{self.select_field}={self.select_value_b} AND "
                f"A.{self.join_field}=B.{self.join_field}")


class WisconsinWorkload:
    """A deterministic stream of randomly perturbed join queries.

    Perturbation: each query picks fresh selection values for both
    relations from the ten 10%-slices of ``tenPercent`` — "similar, but
    randomly perturbed".  Each client seeds its own stream so clients are
    decorrelated yet reproducible.
    """

    def __init__(self, seed: int = 0, select_field: str = "tenPercent",
                 join_field: str = "unique1", distinct_values: int = 10):
        if distinct_values <= 0:
            raise DatabaseError("distinct_values must be positive")
        self.select_field = select_field
        self.join_field = join_field
        self.distinct_values = distinct_values
        self._rng = random.Random(seed)
        self.queries_generated = 0

    def next_query(self) -> JoinQuery:
        self.queries_generated += 1
        return JoinQuery(
            select_field=self.select_field,
            select_value_a=self._rng.randrange(self.distinct_values),
            select_value_b=self._rng.randrange(self.distinct_values),
            join_field=self.join_field)

    def query_stream(self, count: int) -> list[JoinQuery]:
        return [self.next_query() for _ in range(count)]
