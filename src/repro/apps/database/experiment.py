"""The paper's Section 6 experiment, end to end.

Builds the SP-2-like cluster (one fast server, slower client workstations,
a 40 MB/s switch), the Wisconsin relations, the Harmony controller + server,
and N database clients that arrive on a schedule.  "We then ran the system
and added clients about every three minutes" — clients here arrive every
``arrival_interval_seconds`` (default 200 s, matching the figure's 200-second
phases).

The experiment can run under either controller policy:

* ``rule`` — the paper's "simple rule ... based on the number of active
  clients" (switch everyone to data shipping at the third client);
* ``model`` — the full objective-driven optimizer of Section 4.

Returns a :class:`DatabaseExperimentResult` with per-client response-time
series, the switch events, and phase summaries — everything the Figure 7
benchmark prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Literal

from repro.api.client import HarmonyClient
from repro.api.server import HarmonyServer
from repro.api.transport import connected_pair
from repro.apps.database.bundles import (
    BUNDLE_NAME,
    OPTION_DATA_SHIPPING,
    OPTION_QUERY_SHIPPING,
    database_bundle_numbers,
    database_bundle_rsl,
)
from repro.apps.database.client import DatabaseClientApp
from repro.apps.database.executor import CostParameters, DatabaseEngine
from repro.apps.database.query import WisconsinWorkload
from repro.apps.database.relation import make_wisconsin_pair
from repro.apps.database.server import DatabaseServerApp
from repro.cluster.topology import Cluster
from repro.controller.controller import AdaptationController, DecisionRecord
from repro.controller.policies import ClientCountRulePolicy
from repro.errors import HarmonyError
from repro.metrics import MetricInterface
from repro.obs.trace import DecisionTrace, Span, Tracer

__all__ = ["DatabaseExperimentConfig", "DatabaseExperimentResult",
           "PhaseSummary", "run_database_experiment"]

PolicyName = Literal["rule", "model"]


@dataclass(frozen=True)
class DatabaseExperimentConfig:
    """Knobs for the Section 6 reproduction.

    The default relation size (10,000 tuples) keeps the bench laptop-fast;
    ``tuple_count=100_000`` reproduces the paper's full-size relations with
    identical shape (costs scale linearly).
    """

    client_count: int = 3
    arrival_interval_seconds: float = 200.0
    total_duration_seconds: float = 800.0
    tuple_count: int = 10_000
    policy: PolicyName = "rule"
    switch_threshold_clients: int = 3
    server_speed: float = 1.0
    client_speed: float = 0.5
    bandwidth_mbps: float = 40.0       # the SP-2's 320 Mbps switch
    client_cache_mb: float = 48.0
    server_pool_mb: float = 64.0
    seed: int = 7
    think_seconds: float = 0.0
    reevaluation_period_seconds: float = 30.0
    #: How long the rule's condition must hold before it fires — shows the
    #: paper's transient three-QS-client spike before the DS switch.
    rule_reaction_seconds: float = 60.0
    #: Attach a :class:`~repro.obs.trace.Tracer` to the controller, filling
    #: ``DatabaseExperimentResult.spans``.  Off by default — tracing must
    #: cost nothing when unused (the scale bench asserts it).
    trace: bool = False


@dataclass(frozen=True)
class PhaseSummary:
    """Mean response per client during one arrival phase."""

    phase_index: int
    start_time: float
    end_time: float
    active_clients: int
    mean_response_by_client: dict[str, float]
    dominant_option: str


@dataclass
class DatabaseExperimentResult:
    config: DatabaseExperimentConfig
    response_series: dict[str, list[tuple[float, float]]]
    options_over_time: dict[str, list[tuple[float, str]]]
    decisions: list[DecisionRecord]
    phases: list[PhaseSummary] = field(default_factory=list)
    queries_total: int = 0
    switch_time: float | None = None
    #: The run's metric interface — feed it to the exporters in
    #: :mod:`repro.obs.export` for Prometheus text or a JSON snapshot.
    metrics: MetricInterface = field(default_factory=MetricInterface)
    #: Structured "why this option won" records, newest last.
    decision_traces: list[DecisionTrace] = field(default_factory=list)
    #: Hot-path timing spans; empty unless ``config.trace`` was set.
    spans: list[Span] = field(default_factory=list)

    def mean_response(self, client: str, start: float, end: float,
                      ) -> float | None:
        values = [response for time, response in
                  self.response_series.get(client, [])
                  if start <= time < end]
        if not values:
            return None
        return sum(values) / len(values)


def run_database_experiment(config: DatabaseExperimentConfig | None = None,
                            ) -> DatabaseExperimentResult:
    """Run the Figure 7 experiment; deterministic for a given config."""
    config = config or DatabaseExperimentConfig()
    cluster = Cluster()
    cluster.add_node("server0", speed=config.server_speed, memory_mb=256.0)
    client_hosts = [f"client{i}" for i in range(config.client_count)]
    for host in client_hosts:
        cluster.add_node(host, speed=config.client_speed, memory_mb=128.0)
        cluster.add_link("server0", host, config.bandwidth_mbps)

    relation_a, relation_b = make_wisconsin_pair(config.tuple_count,
                                                 seed=config.seed)
    engine = DatabaseEngine(relation_a, relation_b, CostParameters())
    numbers = database_bundle_numbers(engine)

    metrics = MetricInterface()
    if config.policy == "rule":
        policy = ClientCountRulePolicy(
            app_name="DBclient", bundle_name=BUNDLE_NAME,
            threshold=config.switch_threshold_clients,
            below_option=OPTION_QUERY_SHIPPING,
            at_or_above_option=OPTION_DATA_SHIPPING,
            reaction_seconds=config.rule_reaction_seconds)
    elif config.policy == "model":
        policy = None  # AdaptationController default: ModelDrivenPolicy
    else:
        raise HarmonyError(f"unknown policy {config.policy!r}")
    tracer = Tracer() if config.trace else None
    controller = AdaptationController(
        cluster, metrics=metrics, policy=policy, tracer=tracer,
        reevaluation_period_seconds=config.reevaluation_period_seconds)
    harmony_server = HarmonyServer(controller)
    server_app = DatabaseServerApp(cluster, "server0", engine,
                                   buffer_pool_mb=config.server_pool_mb)

    clients: list[DatabaseClientApp] = []
    options_over_time: dict[str, list[tuple[float, str]]] = {}

    def launch_client(index: int) -> Iterator:
        yield cluster.kernel.timeout(index * config.arrival_interval_seconds)
        client_transport, server_transport = connected_pair()
        harmony_server.attach(server_transport)
        harmony = HarmonyClient(client_transport)
        name = f"client{index}"
        app = DatabaseClientApp(
            name=name, cluster=cluster, hostname=client_hosts[index],
            server=server_app, harmony=harmony,
            bundle_rsl=database_bundle_rsl(client_hosts[index], "server0",
                                           numbers),
            workload=WisconsinWorkload(seed=config.seed + index),
            metrics=metrics,
            initial_cache_mb=config.client_cache_mb,
            think_seconds=config.think_seconds)
        clients.append(app)
        options_over_time[name] = []
        process = app.start(run_until=config.total_duration_seconds)
        yield process

    for index in range(config.client_count):
        cluster.kernel.spawn(launch_client(index), name=f"launch{index}")

    # Track option changes as they are applied.
    def option_tracker() -> Iterator:
        sample_period = 5.0
        while cluster.kernel.now < config.total_duration_seconds:
            for app in clients:
                options_over_time[app.name].append(
                    (cluster.kernel.now, app.current_option))
            yield cluster.kernel.timeout(sample_period)

    cluster.kernel.spawn(option_tracker(), name="option-tracker")
    controller.start_periodic_reevaluation()
    cluster.run(until=config.total_duration_seconds)
    controller.stop_periodic_reevaluation()

    result = DatabaseExperimentResult(
        config=config,
        response_series={app.name: app.response_time_series()
                         for app in clients},
        options_over_time=options_over_time,
        decisions=list(controller.decision_log),
        queries_total=sum(app.stats.queries_completed for app in clients),
        metrics=metrics,
        decision_traces=list(controller.trace_log.traces()),
        spans=list(tracer.spans) if tracer is not None else [])

    result.switch_time = _find_switch_time(result.decisions)
    result.phases = _summarize_phases(result, config)
    return result


def _find_switch_time(decisions: list[DecisionRecord]) -> float | None:
    """Time of the first QS -> DS reconfiguration of a running client."""
    for record in decisions:
        if record.old_configuration == OPTION_QUERY_SHIPPING and \
                record.new_configuration == OPTION_DATA_SHIPPING:
            return record.time
    return None


def _summarize_phases(result: DatabaseExperimentResult,
                      config: DatabaseExperimentConfig,
                      ) -> list[PhaseSummary]:
    phases: list[PhaseSummary] = []
    interval = config.arrival_interval_seconds
    boundaries = [index * interval for index in range(config.client_count)]
    boundaries.append(config.total_duration_seconds)
    for index in range(len(boundaries) - 1):
        start, end = boundaries[index], boundaries[index + 1]
        if end <= start:
            continue
        means: dict[str, float] = {}
        for client, series in result.response_series.items():
            mean = result.mean_response(client, start, end)
            if mean is not None:
                means[client] = mean
        options = [option for client in result.options_over_time.values()
                   for time, option in client if start <= time < end]
        dominant = (max(set(options), key=options.count)
                    if options else OPTION_QUERY_SHIPPING)
        phases.append(PhaseSummary(
            phase_index=index, start_time=start, end_time=end,
            active_clients=index + 1,
            mean_response_by_client=means,
            dominant_option=dominant))
    return phases
