"""Query execution with cost accounting.

The engine really executes queries — index selections, a hash join over
actual tuples — and measures, per execution, how much reference-machine CPU
and page I/O the work costs.  Those costs are what the harmonized client and
server applications turn into simulated time on their nodes and links.

Two execution paths match the paper's two tuning options:

* **query shipping** (:meth:`DatabaseEngine.execute`, run against the
  *server's* buffer pool): the server does everything; the client receives
  only the result tuples.
* **data shipping** (:meth:`DatabaseEngine.plan_pages` +
  :meth:`DatabaseEngine.execute` against the *client's* buffer pool): the
  client faults missing pages across the network and executes locally; the
  server only serves pages.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.database.query import JoinQuery
from repro.apps.database.relation import WisconsinRelation
from repro.apps.database.storage import PAGE_BYTES, BufferPool, PageId
from repro.errors import DatabaseError

__all__ = ["CostParameters", "ExecutionProfile", "DatabaseEngine"]


@dataclass(frozen=True)
class CostParameters:
    """Per-operation costs in reference-machine seconds and bytes.

    Defaults are calibrated so a warm-cache Wisconsin join (two 10%
    selections joined on a key) costs about ``3e-4 * N`` reference seconds
    for N-tuple relations: ~3 s at the default experiment size (10k tuples),
    ~30 s at the paper's full 100k — large against the fixed ~0.4 s of
    client-side overhead, which is what makes server contention the
    dominant effect and produces the Figure 7 shape (response roughly
    doubling per extra query-shipping client).
    """

    select_tuple_seconds: float = 1.0e-3
    join_tuple_seconds: float = 5.0e-4
    page_io_seconds: float = 1.0e-3      # buffer-pool miss (local disk)
    page_service_seconds: float = 5.0e-5  # server CPU to ship one page
    result_tuple_bytes: int = 416        # two concatenated 208-byte tuples
    query_request_bytes: int = 512


@dataclass
class ExecutionProfile:
    """Everything one query execution cost, plus its (real) result size."""

    query: JoinQuery
    selected_a: int = 0
    selected_b: int = 0
    result_tuples: int = 0
    pages_accessed: int = 0
    page_misses: int = 0
    cpu_seconds: float = 0.0
    io_seconds: float = 0.0
    result_rows: list[tuple] = field(default_factory=list)

    @property
    def compute_seconds(self) -> float:
        """Total reference seconds at the executing site (CPU + page I/O)."""
        return self.cpu_seconds + self.io_seconds

    def result_bytes(self, params: CostParameters) -> int:
        return self.result_tuples * params.result_tuple_bytes


class DatabaseEngine:
    """Executes join queries over a pair of Wisconsin relations."""

    def __init__(self, relation_a: WisconsinRelation,
                 relation_b: WisconsinRelation,
                 params: CostParameters | None = None,
                 keep_result_rows: bool = False):
        self.relation_a = relation_a
        self.relation_b = relation_b
        self.params = params or CostParameters()
        #: Store actual joined rows on profiles (tests); off for benchmarks.
        self.keep_result_rows = keep_result_rows

    # -- planning --------------------------------------------------------------

    def plan_pages(self, query: JoinQuery) -> list[PageId]:
        """Distinct heap pages this query will touch, in access order.

        Data shipping uses this to know which pages the client must hold.
        """
        entries_a = self.relation_a.index_on(query.select_field).lookup(
            query.select_value_a)
        entries_b = self.relation_b.index_on(query.select_field).lookup(
            query.select_value_b)
        pages = self.relation_a.index_on(query.select_field).distinct_pages(
            entries_a)
        pages += self.relation_b.index_on(query.select_field).distinct_pages(
            entries_b)
        return pages

    def working_set_pages(self) -> int:
        """Pages of both relations — the data-shipping working set."""
        return self.relation_a.heap.page_count \
            + self.relation_b.heap.page_count

    def working_set_mb(self) -> float:
        return self.working_set_pages() * PAGE_BYTES / (1024 * 1024)

    # -- execution ---------------------------------------------------------------

    def execute(self, query: JoinQuery, pool: BufferPool,
                ) -> ExecutionProfile:
        """Run the query against ``pool`` (the executing site's cache).

        The selection uses the index on ``query.select_field``; every
        distinct page holding a selected tuple is touched in the pool
        (misses are charged ``page_io_seconds`` each).  The join is a real
        hash join on ``query.join_field``.
        """
        params = self.params
        profile = ExecutionProfile(query=query)

        index_a = self.relation_a.index_on(query.select_field)
        index_b = self.relation_b.index_on(query.select_field)
        entries_a = index_a.lookup(query.select_value_a)
        entries_b = index_b.lookup(query.select_value_b)
        profile.selected_a = len(entries_a)
        profile.selected_b = len(entries_b)

        pages = index_a.distinct_pages(entries_a) \
            + index_b.distinct_pages(entries_b)
        profile.pages_accessed = len(pages)
        profile.page_misses = pool.access_many(pages)

        join_key_a = WisconsinRelation.field_index(query.join_field)
        join_key_b = WisconsinRelation.field_index(query.join_field)
        build: dict[float, list[tuple]] = {}
        for _key, _page, row in entries_a:
            build.setdefault(row[join_key_a], []).append(row)
        result_rows: list[tuple] = []
        result_count = 0
        for _key, _page, row in entries_b:
            for match in build.get(row[join_key_b], ()):
                result_count += 1
                if self.keep_result_rows:
                    result_rows.append(match + row)
        profile.result_tuples = result_count
        profile.result_rows = result_rows

        profile.cpu_seconds = (
            (profile.selected_a + profile.selected_b)
            * params.select_tuple_seconds
            + (profile.selected_a + profile.selected_b)
            * params.join_tuple_seconds)
        profile.io_seconds = profile.page_misses * params.page_io_seconds
        return profile

    # -- data-shipping page faulting ------------------------------------------------

    def client_fault_pages(self, query: JoinQuery, client_pool: BufferPool,
                           ) -> tuple[int, int]:
        """Touch the query's pages in the *client* pool.

        Returns ``(pages_needed, misses)``; each miss must be shipped from
        the server (``misses * PAGE_BYTES`` over the link) and costs the
        server ``page_service_seconds`` of CPU per page.
        """
        pages = self.plan_pages(query)
        misses = client_pool.access_many(pages)
        return len(pages), misses

    def validate_result(self, profile: ExecutionProfile) -> None:
        """Cross-check a kept result against a nested-loop recomputation.

        Only usable when ``keep_result_rows`` is on; raises on mismatch.
        Intended for tests on small relations.
        """
        if not self.keep_result_rows:
            raise DatabaseError("engine did not keep result rows")
        query = profile.query
        select_idx = WisconsinRelation.field_index(query.select_field)
        join_idx = WisconsinRelation.field_index(query.join_field)
        expected = 0
        rows_a = [row for _pid, row in self.relation_a.heap.scan()
                  if row[select_idx] == query.select_value_a]
        rows_b = [row for _pid, row in self.relation_b.heap.scan()
                  if row[select_idx] == query.select_value_b]
        keys_a = {row[join_idx] for row in rows_a}
        for row in rows_b:
            if row[join_idx] in keys_a:
                expected += 1
        if expected != profile.result_tuples:
            raise DatabaseError(
                f"join result mismatch: hash join {profile.result_tuples}, "
                f"nested loop {expected}")
