"""The hybrid client-server database (paper Sections 3.5 and 6).

A Tornadito/SHORE substitute: page-based storage, Wisconsin benchmark
relations, indexed selections and hash joins with cost accounting, a
harmonized server and client, the Figure 3 bundle generator, and the full
Section 6 experiment harness.
"""

from repro.apps.database.bundles import (
    BUNDLE_NAME,
    OPTION_DATA_SHIPPING,
    OPTION_QUERY_SHIPPING,
    DatabaseBundleNumbers,
    database_bundle_numbers,
    database_bundle_rsl,
)
from repro.apps.database.client import DatabaseClientApp, QueryRecord
from repro.apps.database.executor import (
    CostParameters,
    DatabaseEngine,
    ExecutionProfile,
)
from repro.apps.database.experiment import (
    DatabaseExperimentConfig,
    DatabaseExperimentResult,
    PhaseSummary,
    run_database_experiment,
)
from repro.apps.database.index import SortedIndex
from repro.apps.database.query import JoinQuery, WisconsinWorkload
from repro.apps.database.relation import (
    TUPLE_BYTES,
    WISCONSIN_FIELDS,
    WisconsinRelation,
    make_wisconsin_pair,
)
from repro.apps.database.server import DatabaseServerApp
from repro.apps.database.storage import PAGE_BYTES, BufferPool, HeapFile, Page, PageId

__all__ = [
    "PAGE_BYTES", "Page", "PageId", "HeapFile", "BufferPool",
    "WisconsinRelation", "make_wisconsin_pair", "WISCONSIN_FIELDS",
    "TUPLE_BYTES", "SortedIndex",
    "JoinQuery", "WisconsinWorkload",
    "DatabaseEngine", "CostParameters", "ExecutionProfile",
    "DatabaseServerApp", "DatabaseClientApp", "QueryRecord",
    "BUNDLE_NAME", "OPTION_QUERY_SHIPPING", "OPTION_DATA_SHIPPING",
    "DatabaseBundleNumbers", "database_bundle_numbers",
    "database_bundle_rsl",
    "DatabaseExperimentConfig", "DatabaseExperimentResult", "PhaseSummary",
    "run_database_experiment",
]
