"""The paper's Figure 4 experiment: online reconfiguration under arrivals.

"The left side (a) shows the performance of a parallel application and (b)
shows the eight-processor configurations chosen by Harmony as new jobs
arrive.  Note the configuration of five nodes (rather than six) in the
first time frame, and the subsequent configurations that optimize for
average efficiency by choosing equal partitions for multiple instances of
the parallel application, rather than some large and some small."

Setup: an eight-node cluster and up to four instances of the Bag
application with an application-specific performance model (runtime
``T/n + alpha*(n-1)^2``, minimized at five nodes for the defaults).
Instances arrive on a schedule; the model-driven controller (greedy plus
pairwise exchange) repartitions the eight processors.  Expected shape:

* one instance -> 5 nodes (not 6 — the model's optimum),
* two instances -> 4 + 4 (equal partitions),
* three -> 3 + 3 + 2,
* four -> 2 + 2 + 2 + 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api.client import HarmonyClient
from repro.api.server import HarmonyServer
from repro.api.transport import connected_pair
from repro.apps.bag import BagOfTasksApp
from repro.cluster.topology import Cluster
from repro.controller.controller import (
    AdaptationController,
    DecisionRecord,
    ModelDrivenPolicy,
)
from repro.controller.friction import FrictionPolicy
from repro.metrics import MetricInterface

__all__ = ["ParallelExperimentConfig", "ParallelExperimentResult",
           "FrameSummary", "run_parallel_experiment"]


@dataclass(frozen=True)
class ParallelExperimentConfig:
    """Knobs for the Figure 4 reproduction."""

    node_count: int = 8
    app_count: int = 4
    arrival_interval_seconds: float = 1500.0
    total_duration_seconds: float = 6000.0
    total_seconds_per_iteration: float = 2400.0
    overhead_alpha: float = 12.0
    domain: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8)
    task_count: int = 48
    memory_mb: float = 32.0
    node_memory_mb: float = 128.0
    bandwidth_mbps: float = 40.0
    reevaluation_period_seconds: float = 60.0
    amortization_seconds: float = 3600.0
    seed: int = 11


@dataclass(frozen=True)
class FrameSummary:
    """One time frame between arrivals: who has how many nodes."""

    frame_index: int
    start_time: float
    end_time: float
    active_apps: int
    node_counts: dict[str, int]
    mean_iteration_seconds: dict[str, float]

    def partition(self) -> list[int]:
        """Node counts, largest first — e.g. ``[4, 4]``."""
        return sorted(self.node_counts.values(), reverse=True)


@dataclass
class ParallelExperimentResult:
    config: ParallelExperimentConfig
    frames: list[FrameSummary] = field(default_factory=list)
    decisions: list[DecisionRecord] = field(default_factory=list)
    iteration_series: dict[str, list[tuple[float, float, int]]] = \
        field(default_factory=dict)

    def partitions(self) -> list[list[int]]:
        """The node-count partition chosen in each frame."""
        return [frame.partition() for frame in self.frames]


def run_parallel_experiment(config: ParallelExperimentConfig | None = None,
                            ) -> ParallelExperimentResult:
    """Run the Figure 4 experiment; deterministic for a given config."""
    config = config or ParallelExperimentConfig()
    hostnames = [f"node{i}" for i in range(config.node_count)]
    cluster = Cluster.full_mesh(hostnames, memory_mb=config.node_memory_mb,
                                bandwidth_mbps=config.bandwidth_mbps)
    metrics = MetricInterface()
    controller = AdaptationController(
        cluster, metrics=metrics,
        policy=ModelDrivenPolicy(pairwise_exchange=True),
        friction_policy=FrictionPolicy(
            amortization_seconds=config.amortization_seconds),
        reevaluation_period_seconds=config.reevaluation_period_seconds)
    harmony_server = HarmonyServer(controller)

    apps: list[BagOfTasksApp] = []

    def launch_app(index: int):
        yield cluster.kernel.timeout(
            index * config.arrival_interval_seconds)
        client_transport, server_transport = connected_pair()
        harmony_server.attach(server_transport)
        harmony = HarmonyClient(client_transport)
        app = BagOfTasksApp(
            name=f"Bag{index}", cluster=cluster, harmony=harmony,
            metrics=metrics,
            total_seconds_per_iteration=config.total_seconds_per_iteration,
            task_count=config.task_count,
            domain=config.domain,
            memory_mb=config.memory_mb,
            overhead_alpha=config.overhead_alpha,
            seed=config.seed + index)
        apps.append(app)
        process = app.start(run_until=config.total_duration_seconds)
        yield process

    for index in range(config.app_count):
        cluster.kernel.spawn(launch_app(index), name=f"launch-bag{index}")

    # Sample each app's live worker count for the frame summaries.
    samples: list[tuple[float, dict[str, int]]] = []

    def sampler():
        while cluster.kernel.now < config.total_duration_seconds:
            snapshot = {app.name: app.current_worker_count for app in apps
                        if app.current_worker_count > 0}
            samples.append((cluster.kernel.now, snapshot))
            yield cluster.kernel.timeout(25.0)

    cluster.kernel.spawn(sampler(), name="frame-sampler")
    controller.start_periodic_reevaluation()
    cluster.run(until=config.total_duration_seconds)
    controller.stop_periodic_reevaluation()

    result = ParallelExperimentResult(
        config=config,
        decisions=list(controller.decision_log),
        iteration_series={app.name: app.iteration_series()
                          for app in apps})
    result.frames = _summarize_frames(config, samples, apps)
    return result


def _summarize_frames(config: ParallelExperimentConfig,
                      samples: list[tuple[float, dict[str, int]]],
                      apps: list[BagOfTasksApp]) -> list[FrameSummary]:
    frames: list[FrameSummary] = []
    interval = config.arrival_interval_seconds
    boundaries = [index * interval for index in range(config.app_count)]
    boundaries.append(config.total_duration_seconds)
    for index in range(len(boundaries) - 1):
        start, end = boundaries[index], boundaries[index + 1]
        if end <= start:
            continue
        # Representative configuration: the last sample of the frame, where
        # reconfiguration transients have settled.
        frame_samples = [snapshot for time, snapshot in samples
                         if start <= time < end]
        node_counts = frame_samples[-1] if frame_samples else {}
        mean_iterations: dict[str, float] = {}
        for app in apps:
            elapsed = [record.elapsed_seconds for record in app.stats.records
                       if start <= record.start_time + record.elapsed_seconds
                       <= end]
            if elapsed:
                mean_iterations[app.name] = sum(elapsed) / len(elapsed)
        frames.append(FrameSummary(
            frame_index=index, start_time=start, end_time=end,
            active_apps=index + 1,
            node_counts=dict(node_counts),
            mean_iteration_seconds=mean_iterations))
    return frames
