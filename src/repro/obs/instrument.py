"""Instrumentation facade feeding the existing metric interface.

:class:`Telemetry` wraps a :class:`~repro.metrics.interface.MetricInterface`
with counter/gauge/timer verbs so instrumented code reads as intent
(``telemetry.count("server.rpc.register")``) rather than bookkeeping.
Metric *timestamps* come from the injected ``clock`` — the simulation or
server clock, so telemetry lands on the same timeline as the experiment
metrics — while :meth:`Telemetry.timer` *durations* are measured with
:func:`time.perf_counter` (wall time is what a profiler wants even inside
a simulated run).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.faults import FaultStats
    from repro.metrics.interface import MetricInterface

__all__ = ["Telemetry", "publish_fault_stats"]


class Telemetry:
    """Counter / gauge / timer verbs over a :class:`MetricInterface`."""

    def __init__(self, metrics: "MetricInterface",
                 clock: Callable[[], float]):
        self.metrics = metrics
        self.clock = clock

    def count(self, name: str, amount: float = 1.0) -> float:
        """Bump a cumulative counter; returns the running total."""
        return self.metrics.increment(name, self.clock(), amount)

    def gauge(self, name: str, value: float) -> None:
        """Report an instantaneous value."""
        self.metrics.report(name, self.clock(), float(value))

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Report the block's wall-clock duration (seconds) as a gauge."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.gauge(name, time.perf_counter() - start)


def publish_fault_stats(stats: "FaultStats", metrics: "MetricInterface",
                        time: float = 0.0,
                        prefix: str = "faults.transport") -> None:
    """Report a fault-injection tally as ``<prefix>.*`` metrics.

    Chaos tests assert drop/delay/duplicate counts through the same
    telemetry path as production counters; see
    :meth:`repro.api.faults.FaultStats.publish`.
    """
    for kind, value in stats.snapshot().items():
        metrics.report(f"{prefix}.{kind}", time, float(value))
    for fault_type, count in sorted(stats.by_type.items()):
        metrics.report(f"{prefix}.by_type.{fault_type}", time, float(count))
