"""Instrumentation facade feeding the existing metric interface.

:class:`Telemetry` wraps a :class:`~repro.metrics.interface.MetricInterface`
with counter/gauge/timer verbs so instrumented code reads as intent
(``telemetry.count("server.rpc.register")``) rather than bookkeeping.
Metric *timestamps* come from the injected ``clock`` — the simulation or
server clock, so telemetry lands on the same timeline as the experiment
metrics — while :meth:`Telemetry.timer` *durations* are measured with
:func:`time.perf_counter` (wall time is what a profiler wants even inside
a simulated run).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.faults import FaultStats
    from repro.metrics.interface import MetricInterface

__all__ = ["Telemetry", "InstrumentedRLock", "publish_fault_stats"]


class Telemetry:
    """Counter / gauge / timer verbs over a :class:`MetricInterface`."""

    def __init__(self, metrics: "MetricInterface",
                 clock: Callable[[], float]):
        self.metrics = metrics
        self.clock = clock

    def count(self, name: str, amount: float = 1.0) -> float:
        """Bump a cumulative counter; returns the running total."""
        return self.metrics.increment(name, self.clock(), amount)

    def gauge(self, name: str, value: float) -> None:
        """Report an instantaneous value."""
        self.metrics.report(name, self.clock(), float(value))

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Time the block: gauge of the last duration + a histogram.

        The gauge alone made rates incomputable — a scraper saw only
        the most recent duration.  The histogram under the same dotted
        name adds cumulative ``_sum``/``_count`` (and buckets) to the
        Prometheus exposition, so ``rate(x_sum)/rate(x_count)`` and
        quantiles work; the exporter prefers the histogram when a name
        carries both.
        """
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.gauge(name, elapsed)
            self.metrics.histogram(name).observe(elapsed)


class InstrumentedRLock:
    """A re-entrant lock publishing wait/hold histograms per named lock.

    Lock contention is the invisible hot path of the three-lock server
    pipeline: an admission burst shows up nowhere except as time spent
    in ``acquire``.  This wrapper records, for the *outermost*
    acquisition only (re-entrant hops are free), how long each thread
    waited for the lock and how long it then held it, into
    ``lock.<name>.wait_seconds`` / ``lock.<name>.hold_seconds``.

    Cost per outermost acquire/release: two ``perf_counter`` calls and
    two histogram observes on top of the RLock itself.
    """

    def __init__(self, name: str, metrics: "MetricInterface",
                 clock: Callable[[], float] = time.perf_counter):
        self.name = name
        self._lock = threading.RLock()
        self._clock = clock
        self._local = threading.local()
        self.wait_histogram = metrics.histogram(
            f"lock.{name}.wait_seconds")
        self.hold_histogram = metrics.histogram(
            f"lock.{name}.hold_seconds")

    def acquire(self, blocking: bool = True,
                timeout: float = -1) -> bool:
        depth = getattr(self._local, "depth", 0)
        if depth:
            acquired = self._lock.acquire(blocking, timeout)
            if acquired:
                self._local.depth = depth + 1
            return acquired
        start = self._clock()
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            now = self._clock()
            self.wait_histogram.observe(now - start)
            self._local.depth = 1
            self._local.acquired_at = now
        return acquired

    def release(self) -> None:
        depth = getattr(self._local, "depth", 0)
        if depth == 1:
            held = self._clock() - self._local.acquired_at
            self._local.depth = 0
            self._lock.release()
            self.hold_histogram.observe(held)
        else:
            self._local.depth = depth - 1
            self._lock.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InstrumentedRLock({self.name!r})"


def publish_fault_stats(stats: "FaultStats", metrics: "MetricInterface",
                        time: float = 0.0,
                        prefix: str = "faults.transport") -> None:
    """Report a fault-injection tally as ``<prefix>.*`` metrics.

    Chaos tests assert drop/delay/duplicate counts through the same
    telemetry path as production counters; see
    :meth:`repro.api.faults.FaultStats.publish`.
    """
    for kind, value in stats.snapshot().items():
        metrics.report(f"{prefix}.{kind}", time, float(value))
    for fault_type, count in sorted(stats.by_type.items()):
        metrics.report(f"{prefix}.by_type.{fault_type}", time, float(count))
