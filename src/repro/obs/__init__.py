"""Observability: decision traces, timing spans, telemetry, exporters.

Three layers (see docs/observability.md):

* ``trace``      — span timing + per-reconfiguration decision traces;
* ``instrument`` — counter/gauge/timer facade over the metric interface;
* ``export``     — Prometheus text / JSON snapshot / JSONL dumps.
"""

from repro.obs.export import (decision_traces_to_jsonl, json_snapshot,
                              prometheus_text, sanitize_metric_name,
                              spans_to_jsonl)
from repro.obs.instrument import Telemetry, publish_fault_stats
from repro.obs.trace import (NULL_TRACER, REJECT_INFEASIBLE,
                             REJECT_RULE_NOT_SELECTED,
                             REJECT_WORSE_OBJECTIVE, CandidateTrace,
                             DecisionTrace, DecisionTraceLog, NullTracer,
                             Span, Tracer)

__all__ = [
    "Tracer", "Span", "NullTracer", "NULL_TRACER",
    "CandidateTrace", "DecisionTrace", "DecisionTraceLog",
    "REJECT_WORSE_OBJECTIVE", "REJECT_RULE_NOT_SELECTED",
    "REJECT_INFEASIBLE",
    "Telemetry", "publish_fault_stats",
    "prometheus_text", "json_snapshot", "sanitize_metric_name",
    "decision_traces_to_jsonl", "spans_to_jsonl",
]
