"""Observability: traces, telemetry, histograms, flight recorder, exporters.

Five layers (see docs/observability.md):

* ``trace``      — span timing, wire-propagated trace contexts, and
                   per-reconfiguration decision traces;
* ``instrument`` — counter/gauge/timer facade and instrumented locks
                   over the metric interface;
* ``flightrec``  — the bounded ring of recent runtime events, dumped
                   to JSONL on demand / error / chaos failure;
* ``health``     — SLO threshold checks over the runtime histograms;
* ``export``     — Prometheus text / JSON snapshot / JSONL dumps.
"""

from repro.obs.export import (decision_traces_to_jsonl, json_snapshot,
                              prometheus_text, sanitize_metric_name,
                              spans_to_jsonl)
from repro.obs.flightrec import (EVENT_BACKPRESSURE, EVENT_BATCH,
                                 EVENT_EVICTION, EVENT_FAULT,
                                 EVENT_LEASE_EXPIRED, EVENT_PUSH,
                                 EVENT_RPC_IN, EVENT_RPC_OUT,
                                 EVENT_SERVER_ERROR, EVENT_WAL_APPEND,
                                 FlightRecorder)
from repro.obs.health import (DEFAULT_SLOS, HealthResult, SloCheck,
                              evaluate_health, format_health)
from repro.obs.instrument import (InstrumentedRLock, Telemetry,
                                  publish_fault_stats)
from repro.obs.trace import (NULL_TRACER, REJECT_INFEASIBLE,
                             REJECT_RULE_NOT_SELECTED,
                             REJECT_WORSE_OBJECTIVE, CandidateTrace,
                             DecisionTrace, DecisionTraceLog, NullTracer,
                             Span, TraceContext, Tracer)

__all__ = [
    "Tracer", "Span", "NullTracer", "NULL_TRACER", "TraceContext",
    "CandidateTrace", "DecisionTrace", "DecisionTraceLog",
    "REJECT_WORSE_OBJECTIVE", "REJECT_RULE_NOT_SELECTED",
    "REJECT_INFEASIBLE",
    "Telemetry", "InstrumentedRLock", "publish_fault_stats",
    "FlightRecorder",
    "EVENT_RPC_IN", "EVENT_RPC_OUT", "EVENT_FAULT",
    "EVENT_LEASE_EXPIRED", "EVENT_EVICTION", "EVENT_BATCH",
    "EVENT_WAL_APPEND", "EVENT_BACKPRESSURE", "EVENT_PUSH",
    "EVENT_SERVER_ERROR",
    "SloCheck", "HealthResult", "DEFAULT_SLOS", "evaluate_health",
    "format_health",
    "prometheus_text", "json_snapshot", "sanitize_metric_name",
    "decision_traces_to_jsonl", "spans_to_jsonl",
]
