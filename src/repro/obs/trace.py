"""Decision tracing and span timing for the adaptation pipeline.

The paper's metric interface carries *measurements*; this module carries
*explanations*.  Two complementary record kinds:

* :class:`Span` / :class:`Tracer` — lightweight timing spans with
  monotonic clocks, attributes, and parent links, instrumented through
  the controller, optimizer, prediction engine, and allocation layers.
  The default is :data:`NULL_TRACER`, whose spans are a shared no-op
  object, so instrumented call sites cost one method call when tracing
  is disabled (the scale bench asserts this stays under 2% of wall
  time).

* :class:`DecisionTrace` / :class:`DecisionTraceLog` — one structured
  record per applied reconfiguration, listing **every candidate
  evaluated** with its predicted completion time, objective delta,
  friction cost, and a machine-readable rejection reason, ending in the
  chosen placement.  This is the "explain why QS beat DS" record for
  the Figure 7 database experiment: a tuner is only debuggable when
  each decision carries its evaluated alternatives and scores.

Decision traces are always on (they are per-reconfiguration, far off
the optimizer's hot path) and bounded by ``max_traces``; span tracing
is opt-in per controller.
"""

from __future__ import annotations

import itertools
import json
import math
import threading
import time
import uuid
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER", "TraceContext",
           "CandidateTrace", "DecisionTrace", "DecisionTraceLog",
           "REJECT_WORSE_OBJECTIVE", "REJECT_RULE_NOT_SELECTED",
           "REJECT_INFEASIBLE"]

#: Machine-readable rejection reasons carried by :class:`CandidateTrace`.
REJECT_WORSE_OBJECTIVE = "worse-objective"
REJECT_RULE_NOT_SELECTED = "rule-not-selected"
REJECT_INFEASIBLE = "infeasible"

#: Longest ``trace_id`` the wire decoder accepts (defensive bound).
MAX_TRACE_ID_CHARS = 64


@dataclass(frozen=True)
class TraceContext:
    """A trace's wire-portable coordinates: who the next span's parent is.

    Clients stamp this onto protocol messages as the optional
    ``trace_ctx`` field (see docs/wire-protocol.md); the server,
    scheduler, and pool workers continue the trace from it.  The field
    is strictly additive — peers that do not understand it ignore it.
    """

    trace_id: str
    span_id: int
    sampled: bool = True

    def to_wire(self) -> dict[str, Any]:
        return {"trace_id": self.trace_id, "span_id": self.span_id,
                "sampled": self.sampled}

    @classmethod
    def from_wire(cls, raw: Any) -> "TraceContext | None":
        """Parse a ``trace_ctx`` payload; ``None`` for anything unusable.

        Old clients omit the field, broken ones may send garbage; both
        must degrade to "no trace" rather than an error (the wire spec
        keeps unknown/optional fields non-fatal).  An explicitly
        unsampled context is also ``None``: it carries no tracing
        obligation, so the receive path allocates nothing for it.
        """
        if not isinstance(raw, Mapping):
            return None
        trace_id = raw.get("trace_id")
        span_id = raw.get("span_id")
        sampled = raw.get("sampled", True)
        if not isinstance(trace_id, str) or not trace_id \
                or len(trace_id) > MAX_TRACE_ID_CHARS:
            return None
        if isinstance(span_id, bool) or not isinstance(span_id, int) \
                or span_id < 0:
            return None
        if sampled is not True:
            return None
        return cls(trace_id=trace_id, span_id=span_id, sampled=True)


class Span:
    """One timed operation; a context manager recording into its tracer.

    ``trace_id`` groups spans into one end-to-end trace across
    processes and hosts; it is inherited from the enclosing span (or a
    wire :class:`TraceContext`) and stays ``None`` for purely local
    timing spans that never joined a propagated trace.
    """

    __slots__ = ("tracer", "name", "span_id", "parent_id", "trace_id",
                 "start_seconds", "duration_seconds", "attributes")

    def __init__(self, tracer: "Tracer", name: str,
                 attributes: dict[str, Any]):
        self.tracer = tracer
        self.name = name
        self.span_id = next(tracer._ids)
        self.parent_id: int | None = None
        self.trace_id: str | None = None
        self.start_seconds: float = 0.0
        self.duration_seconds: float = 0.0
        self.attributes = attributes

    def set(self, key: str, value: Any) -> None:
        """Attach a computed attribute (no-op on the null span)."""
        self.attributes[key] = value

    def __enter__(self) -> "Span":
        tracer = self.tracer
        stack = tracer._stack
        if stack:
            parent = stack[-1]
            if self.parent_id is None:
                self.parent_id = parent.span_id
            if self.trace_id is None:
                self.trace_id = parent.trace_id
        self.start_seconds = tracer._clock() - tracer._epoch
        stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        tracer = self.tracer
        self.duration_seconds = \
            tracer._clock() - tracer._epoch - self.start_seconds
        stack = tracer._stack
        if stack and stack[-1] is self:
            stack.pop()
        tracer._finish(self)

    def to_dict(self) -> dict[str, Any]:
        return {"span_id": self.span_id,
                "parent_id": self.parent_id,
                "trace_id": self.trace_id,
                "name": self.name,
                "start_seconds": self.start_seconds,
                "duration_seconds": self.duration_seconds,
                "attributes": dict(self.attributes)}


class Tracer:
    """Records spans against a monotonic clock.

    ``clock`` defaults to :func:`time.perf_counter`; span start times are
    relative to the tracer's construction (its *epoch*).  Finished spans
    are kept in completion order, bounded by ``max_spans`` (oldest
    dropped first); ``spans_started`` counts every span ever opened, so
    overhead projections survive the retention bound.

    The span *stack* — how nested spans find their parent — is
    per-thread: the request path now crosses connection reader threads,
    the scheduler thread, and executor pools, and each thread nests its
    own spans.  Cross-thread and cross-process edges are expressed
    explicitly through :class:`TraceContext` (see
    :meth:`current_context` / :meth:`span_from_context`).  Finished-span
    storage is a deque append under the GIL, safe from any thread.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter,
                 max_spans: int = 100_000):
        self._clock = clock
        self._epoch = clock()
        self.max_spans = max_spans
        self.spans: deque[Span] = deque(maxlen=max_spans)
        self.spans_started = 0
        self._local = threading.local()
        self._ids = itertools.count(1)

    @property
    def _stack(self) -> list[Span]:
        """This thread's stack of open spans (created lazily)."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attributes: Any) -> Span:
        """Open a span; use as ``with tracer.span("controller.x"): ...``."""
        self.spans_started += 1
        return Span(self, name, attributes)

    def _finish(self, span: Span) -> None:
        self.spans.append(span)

    # -- cross-thread / cross-process propagation ---------------------------

    def new_trace_id(self) -> str:
        """A fresh 16-hex-char trace id (unique across processes)."""
        return uuid.uuid4().hex[:16]

    def wire_context(self, span: Span) -> dict[str, Any]:
        """The ``trace_ctx`` wire payload rooting a trace at ``span``.

        Assigns the span a fresh trace id if it has none yet (the span
        becomes the trace root).
        """
        if span.trace_id is None:
            span.trace_id = self.new_trace_id()
        return {"trace_id": span.trace_id, "span_id": span.span_id,
                "sampled": True}

    def span_from_context(self, name: str, ctx: TraceContext,
                          **attributes: Any) -> Span:
        """Open a span continuing a propagated trace (remote parent).

        The remote parent's ``span_id`` comes from the *sender's* id
        space; ids only need to be unique within one trace to link the
        tree back together.
        """
        self.spans_started += 1
        span = Span(self, name, attributes)
        span.parent_id = ctx.span_id
        span.trace_id = ctx.trace_id
        return span

    def current_context(self) -> TraceContext | None:
        """The innermost open span on *this thread* as a TraceContext.

        ``None`` when no span is open.  Lazily roots a trace at the
        current span so the context is always linkable.
        """
        stack = self._stack
        if not stack:
            return None
        span = stack[-1]
        if span.trace_id is None:
            span.trace_id = self.new_trace_id()
        return TraceContext(trace_id=span.trace_id, span_id=span.span_id,
                            sampled=True)

    def adopt_subtree(self, records: Iterable[Mapping[str, Any]],
                      parent_span: Span) -> int:
        """Stitch serialized spans from another tracer under a local span.

        Pool workers run their own :class:`Tracer` and ship
        ``to_dicts()`` output back with their results; this re-bases
        those records into this tracer — fresh span ids, start times
        shifted onto ``parent_span``'s start (worker epochs begin at
        task start), orphans re-parented onto ``parent_span``, and the
        parent's trace id applied throughout.  Returns the number of
        spans adopted.
        """
        records = list(records)
        if not records:
            return 0
        id_map = {record["span_id"]: next(self._ids)
                  for record in records if "span_id" in record}
        for record in records:
            span = Span(self, str(record.get("name", "span")),
                        dict(record.get("attributes") or {}))
            if "span_id" in record:
                span.span_id = id_map[record["span_id"]]
            span.parent_id = id_map.get(record.get("parent_id"),
                                        parent_span.span_id)
            span.trace_id = parent_span.trace_id
            span.start_seconds = parent_span.start_seconds + float(
                record.get("start_seconds", 0.0))
            span.duration_seconds = float(
                record.get("duration_seconds", 0.0))
            self.spans_started += 1
            self._finish(span)
        return len(records)

    def record_span(self, name: str, start_seconds: float,
                    duration_seconds: float, **attributes: Any) -> Span:
        """Record an already-measured span (explicit start/duration).

        For work whose timing is accumulated outside a ``with`` block —
        e.g. per-partition sweep time gathered bundle-by-bundle across an
        interleaved registry-order pass, or worker-side elapsed times
        reported back from a process pool.  ``start_seconds`` is relative
        to this tracer's epoch, like every other span.
        """
        self.spans_started += 1
        span = Span(self, name, attributes)
        span.start_seconds = start_seconds
        span.duration_seconds = duration_seconds
        stack = self._stack
        if stack:
            span.parent_id = stack[-1].span_id
            span.trace_id = stack[-1].trace_id
        self._finish(span)
        return span

    def elapsed(self) -> float:
        """Seconds since this tracer's epoch (for record_span starts)."""
        return self._clock() - self._epoch

    def find(self, name: str) -> list[Span]:
        """Finished spans with this name, in completion order."""
        return [span for span in self.spans if span.name == name]

    def to_dicts(self) -> list[dict[str, Any]]:
        return [span.to_dict() for span in self.spans]

    def to_jsonl(self) -> str:
        """One JSON object per finished span, newline-delimited."""
        return "".join(json.dumps(record, sort_keys=True) + "\n"
                       for record in self.to_dicts())


class _NullSpan:
    """The shared do-nothing span handed out when tracing is disabled."""

    __slots__ = ()

    def set(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The zero-cost default: every ``span()`` is the same no-op object."""

    enabled = False
    spans: tuple = ()
    spans_started = 0

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        return _NULL_SPAN

    def record_span(self, name: str, start_seconds: float,
                    duration_seconds: float,
                    **attributes: Any) -> _NullSpan:
        return _NULL_SPAN

    def span_from_context(self, name: str, ctx: "TraceContext",
                          **attributes: Any) -> _NullSpan:
        return _NULL_SPAN

    def current_context(self) -> None:
        return None

    def adopt_subtree(self, records: Iterable[Mapping[str, Any]],
                      parent_span: Any) -> int:
        return 0

    def elapsed(self) -> float:
        return 0.0

    def find(self, name: str) -> list:
        return []

    def to_dicts(self) -> list:
        return []

    def to_jsonl(self) -> str:
        return ""


#: Module-level singleton; ``controller.tracer`` defaults to this.
NULL_TRACER = NullTracer()


def _finite(value: float | None) -> float | None:
    """JSON-safe float: non-finite values become None."""
    if value is None or not math.isfinite(value):
        return None
    return value


@dataclass(frozen=True)
class CandidateTrace:
    """One evaluated alternative inside a :class:`DecisionTrace`.

    ``rejection_reason`` is a machine-readable code (one of the
    ``REJECT_*`` constants) for losers and ``None`` for the chosen
    candidate; ``detail`` carries the human-readable elaboration.
    ``objective_delta`` is the candidate's objective minus the objective
    before the decision — negative means the candidate improves it.
    """

    option_name: str
    variable_assignment: Mapping[str, float]
    placements: Mapping[str, str]
    predicted_seconds: float
    objective_value: float
    objective_delta: float
    friction_cost_seconds: float
    chosen: bool
    rejection_reason: str | None
    detail: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {"option": self.option_name,
                "variables": dict(self.variable_assignment),
                "placements": dict(self.placements),
                "predicted_seconds": _finite(self.predicted_seconds),
                "objective_value": _finite(self.objective_value),
                "objective_delta": _finite(self.objective_delta),
                "friction_cost_seconds": self.friction_cost_seconds,
                "chosen": self.chosen,
                "rejection_reason": self.rejection_reason,
                "detail": self.detail}


@dataclass(frozen=True)
class DecisionTrace:
    """Why one reconfiguration happened: alternatives, scores, winner."""

    time: float
    app_key: str
    bundle_name: str
    trigger: str                       # "initial", "reevaluation ...", ...
    objective_before: float
    objective_after: float
    chosen_option: str
    chosen_placements: Mapping[str, str]
    candidates: tuple[CandidateTrace, ...] = field(default_factory=tuple)

    def chosen_candidate(self) -> CandidateTrace | None:
        for candidate in self.candidates:
            if candidate.chosen:
                return candidate
        return None

    def rejected(self) -> list[CandidateTrace]:
        return [c for c in self.candidates if not c.chosen]

    def to_dict(self) -> dict[str, Any]:
        return {"time": self.time,
                "app_key": self.app_key,
                "bundle_name": self.bundle_name,
                "trigger": self.trigger,
                "objective_before": _finite(self.objective_before),
                "objective_after": _finite(self.objective_after),
                "chosen_option": self.chosen_option,
                "chosen_placements": dict(self.chosen_placements),
                "candidates": [c.to_dict() for c in self.candidates]}


class DecisionTraceLog:
    """Bounded store of the controller's recent decision traces."""

    def __init__(self, max_traces: int = 1000):
        self.max_traces = max_traces
        self._traces: deque[DecisionTrace] = deque(maxlen=max_traces)
        self.traces_recorded = 0

    def record(self, trace: DecisionTrace) -> None:
        self.traces_recorded += 1
        self._traces.append(trace)

    def traces(self) -> list[DecisionTrace]:
        return list(self._traces)

    def latest(self, count: int = 1) -> list[DecisionTrace]:
        """The most recent ``count`` traces, oldest first."""
        if count <= 0:
            return []
        return list(self._traces)[-count:]

    def for_app(self, app_key: str) -> list[DecisionTrace]:
        return [t for t in self._traces if t.app_key == app_key]

    def __len__(self) -> int:
        return len(self._traces)

    def to_jsonl(self, traces: Iterable[DecisionTrace] | None = None) -> str:
        """One JSON object per decision trace, newline-delimited."""
        chosen = self._traces if traces is None else traces
        return "".join(json.dumps(trace.to_dict(), sort_keys=True) + "\n"
                       for trace in chosen)
