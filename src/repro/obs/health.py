"""SLO threshold checks over the runtime health histograms.

The histograms (lock wait/hold, scheduler batch latency and backlog,
event-loop lag, write-queue depth, WAL append latency) describe the
server's invisible hot paths; this module turns them into a verdict.
Each :class:`SloCheck` names a histogram, a quantile, and a ceiling;
:func:`evaluate_health` runs the checks against histogram *snapshots*
(the JSON-safe dicts from :meth:`Histogram.snapshot` — exactly what the
STATUS wire message carries), so a monitoring client can score a remote
server without extra round trips.

The default thresholds are deliberately generous — they are smoke
alarms for "the pipeline wedged", not latency targets; the scale
benches own the performance bar.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.metrics.histogram import quantile_from_snapshot

__all__ = ["SloCheck", "HealthResult", "DEFAULT_SLOS",
           "evaluate_health", "format_health"]


@dataclass(frozen=True)
class SloCheck:
    """One threshold: ``quantile`` of ``histogram`` must stay <= ceiling."""

    name: str               # human label, e.g. "controller lock wait p99"
    histogram: str          # dotted histogram name
    quantile: float         # 0..1
    ceiling: float          # max acceptable value at that quantile
    unit: str = "s"

    def describe(self) -> str:
        return (f"{self.name}: p{int(self.quantile * 100)}"
                f"({self.histogram}) <= {self.ceiling:g}{self.unit}")


@dataclass(frozen=True)
class HealthResult:
    """Outcome of one check: ``ok`` / ``breach`` / ``no-data``.

    A histogram with no observations passes (``no-data``): an idle
    server is healthy, and samplers for the other front end simply
    never ran.
    """

    check: SloCheck
    observed: float | None
    status: str

    @property
    def breached(self) -> bool:
        return self.status == "breach"


#: Generous smoke-alarm ceilings for the always-on samplers.
DEFAULT_SLOS: tuple[SloCheck, ...] = (
    SloCheck("controller lock wait p99", "lock.controller.wait_seconds",
             0.99, 0.5),
    SloCheck("flush lock wait p99", "lock.flush.wait_seconds", 0.99, 0.5),
    SloCheck("sessions lock wait p99", "lock.sessions.wait_seconds",
             0.99, 0.5),
    SloCheck("scheduler batch latency p99", "scheduler.batch_seconds",
             0.99, 5.0),
    SloCheck("scheduler backlog p99", "scheduler.batch_backlog",
             0.99, 512.0, unit=""),
    SloCheck("event-loop lag p99", "server.async.loop_lag_seconds",
             0.99, 0.5),
    SloCheck("write-queue depth p99", "server.async.write_queue_depth",
             0.99, 512.0, unit=""),
    SloCheck("WAL append latency p99", "controller.wal.append_seconds",
             0.99, 0.5),
    # Replication lag is measured in *records* the slowest standby is
    # behind at ship time (see docs/replication.md): a standby that is
    # persistently hundreds of records back cannot be promoted without
    # losing acknowledged work to the catch-up window.
    SloCheck("replication lag p99", "replication.lag_records",
             0.99, 256.0, unit=""),
)


def evaluate_health(histograms: Mapping[str, Mapping[str, Any]],
                    slos: Iterable[SloCheck] = DEFAULT_SLOS,
                    ) -> list[HealthResult]:
    """Score histogram snapshots against the SLO checks.

    ``histograms`` maps dotted names to :meth:`Histogram.snapshot`
    dicts — build it with ``{name: hist.snapshot() for name, hist in
    metrics.histograms()}`` locally, or take ``status["histograms"]``
    straight off a STATUS reply.
    """
    results: list[HealthResult] = []
    for check in slos:
        snapshot = histograms.get(check.histogram)
        observed = (quantile_from_snapshot(snapshot, check.quantile)
                    if snapshot else None)
        if observed is None:
            status = "no-data"
        elif observed <= check.ceiling:
            status = "ok"
        else:
            status = "breach"
        results.append(HealthResult(check=check, observed=observed,
                                    status=status))
    return results


def format_health(results: Iterable[HealthResult]) -> str:
    """A fixed-width report table, one line per check."""
    lines = [f"{'check':<34} {'observed':>12} {'ceiling':>12} status",
             "-" * 72]
    for result in results:
        check = result.check
        observed = ("-" if result.observed is None
                    else f"{result.observed:.6g}{check.unit}")
        lines.append(f"{check.name:<34} {observed:>12} "
                     f"{check.ceiling:>11g}{check.unit or ' '} "
                     f"{result.status}")
    return "\n".join(lines)
