"""Export surfaces for the metric interface and decision traces.

Two snapshot formats over :class:`~repro.metrics.interface.MetricInterface`:

* :func:`prometheus_text` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` / sample lines).  Dotted Harmony metric names
  are sanitized into the legal Prometheus alphabet; when several dotted
  names collapse onto one sanitized name, each sample is disambiguated
  with a ``series="<original>"`` label so the exposition never emits
  duplicate samples.

* :func:`json_snapshot` — a ``json``-serializable summary (latest value,
  timestamps, count, mean per series) for the ``STATUS`` wire message and
  ``repro metrics --format json``.

Plus JSONL writers for decision traces and spans (one object per line),
used by ``repro trace --jsonl`` and the CI artifact upload.
"""

from __future__ import annotations

import json
import math
import re
from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.metrics.interface import MetricInterface
    from repro.obs.trace import DecisionTrace, Span

__all__ = ["sanitize_metric_name", "prometheus_text", "json_snapshot",
           "decision_traces_to_jsonl", "spans_to_jsonl"]

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}


def sanitize_metric_name(name: str) -> str:
    """Map a dotted Harmony metric name into the Prometheus alphabet.

    Prometheus metric names must match ``[a-zA-Z_:][a-zA-Z0-9_:]*``; every
    illegal character becomes ``_`` and a leading digit gains a ``_``
    prefix.  The mapping is lossy — callers that need uniqueness keep the
    original name in a label (see :func:`prometheus_text`).
    """
    sanitized = _INVALID_CHARS.sub("_", name)
    if not sanitized:
        return "_"
    if sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _escape_label_value(value: str) -> str:
    return "".join(_LABEL_ESCAPES.get(char, char) for char in value)


def _format_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


def prometheus_text(metrics: "MetricInterface",
                    prefix: str | None = None) -> str:
    """Latest sample of every series, plus full histogram exposition.

    Histograms render as the standard Prometheus triplet —
    ``<name>_bucket{le="..."}`` (cumulative, ending in ``le="+Inf"``),
    ``<name>_sum``, ``<name>_count`` — so rate and quantile queries
    work out of the box.  When a dotted name carries *both* a gauge
    series and a histogram (``Telemetry.timer`` writes both), the
    histogram wins the exposition: emitting the same base name with two
    TYPEs would be invalid, and ``_sum``/``_count`` carry strictly more
    information than the last point-in-time value.
    """
    histograms = list(metrics.histograms(prefix))
    histogram_names = {name for name, _ in histograms}
    groups: dict[str, list[str]] = {}
    for name in metrics.names(prefix):
        if name in histogram_names:
            continue
        groups.setdefault(sanitize_metric_name(name), []).append(name)

    lines: list[str] = []
    for sanitized in sorted(groups):
        originals = groups[sanitized]
        lines.append(f"# HELP {sanitized} Harmony metric "
                     f"{_escape_label_value(originals[0])}")
        lines.append(f"# TYPE {sanitized} gauge")
        for original in originals:
            latest = metrics.series(original).latest()
            if latest is None:
                continue
            if len(originals) > 1:
                label = f'{{series="{_escape_label_value(original)}"}}'
            else:
                label = ""
            lines.append(f"{sanitized}{label} "
                         f"{_format_value(latest.value)}")

    for name, histogram in histograms:
        base = sanitize_metric_name(name)
        while base in groups:
            # A *different* dotted gauge name sanitized onto this base;
            # dodge the TYPE collision rather than emit invalid text.
            base += "_hist"
        snapshot = histogram.snapshot()
        lines.append(f"# HELP {base} Harmony histogram "
                     f"{_escape_label_value(name)}")
        lines.append(f"# TYPE {base} histogram")
        for bound, cumulative in zip(snapshot["bounds"],
                                     snapshot["counts"]):
            lines.append(f'{base}_bucket{{le="{_format_value(bound)}"}} '
                         f"{cumulative}")
        lines.append(f'{base}_bucket{{le="+Inf"}} {snapshot["count"]}')
        lines.append(f"{base}_sum {_format_value(snapshot['sum'])}")
        lines.append(f"{base}_count {snapshot['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def json_snapshot(metrics: "MetricInterface",
                  prefix: str | None = None) -> dict[str, Any]:
    """A JSON-serializable summary of every series under ``prefix``."""
    summary: dict[str, Any] = {}
    for name, series in metrics.walk(prefix):
        latest = series.latest()
        first = series.first()
        if latest is None:
            continue
        mean = series.mean()
        summary[name] = {
            "latest": _json_number(latest.value),
            "latest_time": latest.time,
            "first_time": first.time if first else None,
            "count": len(series),
            "mean": _json_number(mean) if mean is not None else None,
        }
    histograms = {name: histogram.snapshot()
                  for name, histogram in metrics.histograms(prefix)}
    return {"metrics": summary, "histograms": histograms}


def _json_number(value: float) -> float | None:
    """Strict-JSON float: non-finite values become None."""
    return value if math.isfinite(value) else None


def decision_traces_to_jsonl(traces: Iterable["DecisionTrace"]) -> str:
    """One JSON object per decision trace, newline-delimited."""
    return "".join(json.dumps(trace.to_dict(), sort_keys=True) + "\n"
                   for trace in traces)


def spans_to_jsonl(spans: Iterable["Span"]) -> str:
    """One JSON object per finished span, newline-delimited."""
    return "".join(json.dumps(span.to_dict(), sort_keys=True) + "\n"
                   for span in spans)
