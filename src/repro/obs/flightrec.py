"""The chaos flight recorder: a bounded ring of recent runtime events.

When a chaos or parity suite fails, the assertion message says *what*
diverged but not *what happened* — which frames were dropped, which
lease expired first, which batch the scheduler coalesced the victim
into.  The flight recorder answers that: every interesting runtime
event (RPCs in/out, fault injections, lease expiries, evictions,
batch dispatches, WAL appends, backpressure rejections, server errors)
lands in a fixed-capacity ring that can be dumped to JSONL on demand,
on an unhandled server error, or from a failing chaos test — turning
"seed-15 parity test failed" into a replayable event timeline.

The ring is deliberately cheap: one dict build outside the lock, one
lock-guarded deque append.  It is always on; the capacity bound (not a
sampling rate) is what keeps it safe at production rates.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import Counter, deque
from typing import Any, Callable

__all__ = ["FlightRecorder",
           "EVENT_RPC_IN", "EVENT_RPC_OUT", "EVENT_FAULT",
           "EVENT_LEASE_EXPIRED", "EVENT_EVICTION", "EVENT_BATCH",
           "EVENT_WAL_APPEND", "EVENT_BACKPRESSURE", "EVENT_PUSH",
           "EVENT_SERVER_ERROR", "EVENT_PROMOTION", "EVENT_DEMOTION",
           "EVENT_REPLICATION", "EVENT_HANDOFF", "EVENT_REBALANCE"]

#: Structured event kinds.  Free-form kinds are allowed; these are the
#: ones the built-in instrumentation emits.
EVENT_RPC_IN = "rpc_in"
EVENT_RPC_OUT = "rpc_out"
EVENT_FAULT = "fault_injected"
EVENT_LEASE_EXPIRED = "lease_expired"
EVENT_EVICTION = "eviction"
EVENT_BATCH = "batch_dispatch"
EVENT_WAL_APPEND = "wal_append"
EVENT_BACKPRESSURE = "backpressure_reject"
EVENT_PUSH = "push"
EVENT_SERVER_ERROR = "server_error"
EVENT_PROMOTION = "promotion"
EVENT_DEMOTION = "demotion"
EVENT_REPLICATION = "replication"
EVENT_HANDOFF = "shard_handoff"
EVENT_REBALANCE = "shard_rebalance"


class FlightRecorder:
    """Fixed-capacity, thread-safe ring of structured runtime events.

    >>> recorder = FlightRecorder(capacity=2, clock=lambda: 0.0)
    >>> recorder.record("rpc_in", rpc="register")
    >>> recorder.record("rpc_in", rpc="heartbeat")
    >>> recorder.record("fault_injected", fault="drop")
    >>> [event["kind"] for event in recorder.events()]
    ['rpc_in', 'fault_injected']
    >>> recorder.events_recorded      # total ever, beyond the ring bound
    3
    """

    def __init__(self, capacity: int = 4096,
                 clock: Callable[[], float] = time.time):
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.capacity = capacity
        self._clock = clock
        self._events: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._seq = itertools.count(1)
        self._lock = threading.Lock()
        self.events_recorded = 0

    def record(self, kind: str, **fields: Any) -> None:
        """Append one event; fields must be JSON-serializable."""
        event = {"seq": next(self._seq), "time": self._clock(),
                 "kind": kind}
        event.update(fields)
        with self._lock:
            self._events.append(event)
            self.events_recorded += 1

    def events(self, kind: str | None = None) -> list[dict[str, Any]]:
        """A snapshot of the ring (oldest first), optionally one kind."""
        with self._lock:
            snapshot = list(self._events)
        if kind is None:
            return snapshot
        return [event for event in snapshot if event["kind"] == kind]

    def counts(self) -> dict[str, int]:
        """Events currently in the ring, tallied by kind."""
        return dict(Counter(event["kind"] for event in self.events()))

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def to_jsonl(self) -> str:
        """One JSON object per event, newline-delimited, oldest first."""
        return "".join(json.dumps(event, sort_keys=True, default=str) + "\n"
                       for event in self.events())

    def dump(self, path: Any) -> str:
        """Write the ring as JSONL to ``path``; returns the path written."""
        text = self.to_jsonl()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        return str(path)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)
