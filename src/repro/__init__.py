"""repro — a reproduction of *Exposing Application Alternatives* (ICDCS 1999).

The paper is the early design paper of the **Active Harmony** automatic
runtime tuning system: applications export *bundles* of mutually exclusive
tuning options (with quantified resource requirements, written in a
TCL-hosted resource specification language) to a central adaptation
controller, which matches them to resources, predicts performance, and
reconfigures running applications to optimize a global objective.

Package map:

* :mod:`repro.rsl` — the Harmony RSL: tokenizer, parser, parametric
  expressions, constraints, Table 1 tags, bundle model;
* :mod:`repro.namespace` — the hierarchical
  ``app.instance.bundle.option.resource.tag`` namespace;
* :mod:`repro.cluster` — the simulated meta-computing environment
  (discrete-event kernel, fair-share CPUs and links, topology);
* :mod:`repro.metrics` — the metric interface;
* :mod:`repro.allocation` — demand instantiation and first-fit matching;
* :mod:`repro.prediction` — default and explicit performance models;
* :mod:`repro.controller` — the adaptation controller, objectives,
  greedy/pairwise/exhaustive optimizers, friction gating, policies;
* :mod:`repro.api` — the client library (``harmony_startup`` et al.),
  Harmony variables, wire protocol, in-process and TCP transports, server;
* :mod:`repro.apps` — harmonized applications: Simple, Bag, and the
  client-server database, plus the Figure 4 and Figure 7 experiment
  harnesses.

Quickstart::

    from repro import Cluster, AdaptationController

    cluster = Cluster.full_mesh([f"n{i}" for i in range(4)])
    controller = AdaptationController(cluster)
    app = controller.register_app("MyApp")
    controller.setup_bundle(app, '''
        harmonyBundle MyApp size {
            {small {node worker {seconds 100} {memory 16}}}
            {large {node worker {seconds 60} {memory 64}
                                {replicate 2}}}}
    ''')
    print(controller.describe_system())
"""

from repro.api import (
    HarmonyClient,
    HarmonyServer,
    HarmonyVariable,
    VariableType,
    connected_pair,
)
from repro.cluster import Cluster, Kernel
from repro.controller import (
    AdaptationController,
    ClientCountRulePolicy,
    FrictionPolicy,
    MeanResponseTime,
    ModelDrivenPolicy,
    ThroughputObjective,
)
from repro.errors import HarmonyError
from repro.metrics import MetricInterface
from repro.namespace import Namespace
from repro.rsl import Bundle, build_bundle, build_script, parse_expression

__version__ = "1.0.0"

__all__ = [
    "Cluster", "Kernel",
    "AdaptationController", "ModelDrivenPolicy", "ClientCountRulePolicy",
    "MeanResponseTime", "ThroughputObjective", "FrictionPolicy",
    "HarmonyClient", "HarmonyServer", "HarmonyVariable", "VariableType",
    "connected_pair",
    "Namespace", "MetricInterface",
    "Bundle", "build_bundle", "build_script", "parse_expression",
    "HarmonyError",
    "__version__",
]
