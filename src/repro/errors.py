"""Exception hierarchy shared across the Harmony reproduction.

Every package raises subclasses of :class:`HarmonyError` so that callers can
catch the whole family with a single ``except`` clause while still being able
to discriminate parse errors from allocation failures, protocol violations,
and so on.
"""

from __future__ import annotations


class HarmonyError(Exception):
    """Base class for all errors raised by this library."""


class RslError(HarmonyError):
    """Base class for errors in the resource specification language."""


class RslSyntaxError(RslError):
    """The RSL text could not be tokenized or parsed.

    Carries the ``line`` and ``column`` (1-based) of the offending input when
    they are known, so callers can point users at the problem.
    """

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class RslSemanticError(RslError):
    """The RSL parsed but describes something meaningless.

    Examples: a ``link`` naming a node that no option defines, a bundle with
    zero options, a ``variable`` tag with an empty value list.
    """


class ExpressionError(RslError):
    """An RSL parametric expression failed to parse or evaluate."""


class NamespaceError(HarmonyError):
    """A namespace path was malformed or did not resolve."""


class AllocationError(HarmonyError):
    """The resource matcher could not satisfy a set of requirements."""


class PredictionError(HarmonyError):
    """A performance model could not produce an estimate."""


class ControllerError(HarmonyError):
    """The adaptation controller was asked to do something inconsistent."""


class ProtocolError(HarmonyError):
    """A malformed or out-of-order message arrived on a transport."""


class TransportError(HarmonyError):
    """The underlying transport (socket or in-process queue) failed."""


class RequestTimeoutError(TransportError):
    """A single request/response round trip exceeded its timeout.

    Raised per attempt; the client's :class:`~repro.api.retry.RetryPolicy`
    decides whether the attempt is retried.  Carries the offending message
    type and the timeout that was applied.
    """

    def __init__(self, msg_type: str, timeout_seconds: float):
        super().__init__(
            f"no response to {msg_type!r} within {timeout_seconds:g}s")
        self.msg_type = msg_type
        self.timeout_seconds = timeout_seconds


class RetryExhaustedError(TransportError):
    """Every attempt allowed by the retry policy failed.

    ``__cause__`` is the final attempt's underlying error.
    """

    def __init__(self, msg_type: str, attempts: int):
        super().__init__(
            f"request {msg_type!r} failed after {attempts} attempt(s)")
        self.msg_type = msg_type
        self.attempts = attempts


class LeaseExpiredError(HarmonyError):
    """The server evicted this session after its lease lapsed.

    The application's registration, bundles, and allocations are gone
    server-side; call :meth:`~repro.api.client.HarmonyClient.rejoin` to
    re-register and replay the session.
    """


class WalCorruptionError(HarmonyError):
    """The write-ahead log contains a record that cannot be trusted.

    Raised when a checksum mismatch, malformed frame, or sequence-number
    gap appears *before* the end of the log — a torn tail (the common
    crash artifact) is silently truncated instead, because everything
    before it is intact.  Recovery never guesses past a corrupt record.
    """


class SnapshotCorruptionError(WalCorruptionError):
    """No usable snapshot exists but the WAL was compacted past genesis.

    Also raised per-file when a snapshot's envelope, checksum, or state
    digest does not verify; recovery falls back to the next older
    snapshot and only propagates this when no valid base state remains.
    """


class RecoveryError(HarmonyError):
    """Replaying the durability log did not reproduce the logged state.

    The WAL records each decision's resulting objective; if re-applying a
    record yields a different value (or a snapshot's self-digest fails),
    the replay is non-deterministic or the log lies — recovery stops
    rather than serving wrong placements.
    """


class ControllerBusyError(HarmonyError):
    """The server's admission queue is full; try again shortly.

    Raised client-side when a ``register``/``bundle_setup`` is refused
    with the wire code ``controller_busy``: more admissions are already
    waiting on the optimizer than the server's bounded pending-register
    queue allows.  The condition is transient — the client's
    :class:`~repro.api.retry.RetryPolicy` retries it with backoff like
    any other recoverable failure.
    """


class ControllerRecoveringError(HarmonyError):
    """The server is replaying its durability log; mutations are refused.

    While recovery is in flight the server runs in degraded read-only
    mode: ``status`` and queries are served, state-changing requests get
    a typed error (wire code ``controller_recovering``) so clients can
    back off and retry after recovery completes.
    """


class ControllerMovedError(HarmonyError):
    """This server is not the primary; the request belongs elsewhere.

    Raised client-side when a mutation is answered with the
    ``controller_moved`` redirect: the server is a standby (or a deposed
    primary fenced off by a higher term).  ``leader`` carries the
    ``host:port`` hint from the fencing record when one is known, and
    ``term`` the refusing server's term.  Typed and retryable — the
    client's retry loop reconnects to the hinted leader (or walks its
    static failover list) and replays the session there.
    """

    def __init__(self, message: str, leader: str | None = None,
                 term: int = 0):
        super().__init__(message)
        self.leader = leader
        self.term = term


class ShardMovedError(ControllerMovedError):
    """This shard handed the session to a sibling; reconnect there.

    Raised client-side when a request is answered with the federation's
    ``shard_moved`` redirect: a rebalance (or an explicit move) evicted
    the session from this shard and re-admitted it — allocations,
    tuned option, and pending pushes intact — on the shard named by
    ``leader``.  A subclass of :class:`ControllerMovedError` so the
    existing reconnect-and-replay retry loop follows the hint without
    new plumbing; the session resumes on the new shard via its
    ``resume_key``.
    """


class ReplicationError(HarmonyError):
    """The primary/standby replication stream is inconsistent.

    Raised for fencing violations (acquiring a lease someone else still
    holds, renewing with a stale term) and for replication-stream damage
    a standby cannot repair locally (it re-requests from its last
    acknowledged sequence number instead of applying a gap).
    """


class SimulationError(HarmonyError):
    """The discrete-event kernel detected an inconsistency."""


class DatabaseError(HarmonyError):
    """The mini relational engine detected an inconsistency."""
