"""Exception hierarchy shared across the Harmony reproduction.

Every package raises subclasses of :class:`HarmonyError` so that callers can
catch the whole family with a single ``except`` clause while still being able
to discriminate parse errors from allocation failures, protocol violations,
and so on.
"""

from __future__ import annotations


class HarmonyError(Exception):
    """Base class for all errors raised by this library."""


class RslError(HarmonyError):
    """Base class for errors in the resource specification language."""


class RslSyntaxError(RslError):
    """The RSL text could not be tokenized or parsed.

    Carries the ``line`` and ``column`` (1-based) of the offending input when
    they are known, so callers can point users at the problem.
    """

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class RslSemanticError(RslError):
    """The RSL parsed but describes something meaningless.

    Examples: a ``link`` naming a node that no option defines, a bundle with
    zero options, a ``variable`` tag with an empty value list.
    """


class ExpressionError(RslError):
    """An RSL parametric expression failed to parse or evaluate."""


class NamespaceError(HarmonyError):
    """A namespace path was malformed or did not resolve."""


class AllocationError(HarmonyError):
    """The resource matcher could not satisfy a set of requirements."""


class PredictionError(HarmonyError):
    """A performance model could not produce an estimate."""


class ControllerError(HarmonyError):
    """The adaptation controller was asked to do something inconsistent."""


class ProtocolError(HarmonyError):
    """A malformed or out-of-order message arrived on a transport."""


class TransportError(HarmonyError):
    """The underlying transport (socket or in-process queue) failed."""


class RequestTimeoutError(TransportError):
    """A single request/response round trip exceeded its timeout.

    Raised per attempt; the client's :class:`~repro.api.retry.RetryPolicy`
    decides whether the attempt is retried.  Carries the offending message
    type and the timeout that was applied.
    """

    def __init__(self, msg_type: str, timeout_seconds: float):
        super().__init__(
            f"no response to {msg_type!r} within {timeout_seconds:g}s")
        self.msg_type = msg_type
        self.timeout_seconds = timeout_seconds


class RetryExhaustedError(TransportError):
    """Every attempt allowed by the retry policy failed.

    ``__cause__`` is the final attempt's underlying error.
    """

    def __init__(self, msg_type: str, attempts: int):
        super().__init__(
            f"request {msg_type!r} failed after {attempts} attempt(s)")
        self.msg_type = msg_type
        self.attempts = attempts


class LeaseExpiredError(HarmonyError):
    """The server evicted this session after its lease lapsed.

    The application's registration, bundles, and allocations are gone
    server-side; call :meth:`~repro.api.client.HarmonyClient.rejoin` to
    re-register and replay the session.
    """


class SimulationError(HarmonyError):
    """The discrete-event kernel detected an inconsistency."""


class DatabaseError(HarmonyError):
    """The mini relational engine detected an inconsistency."""
