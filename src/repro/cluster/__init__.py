"""Simulated meta-computing environment.

This package stands in for the paper's IBM SP-2 testbed: a process-based
discrete-event kernel (:mod:`repro.cluster.kernel`), fair-share CPU and link
models (:mod:`repro.cluster.resources`), nodes and links with reservation
accounting, topology queries, and background-load injection.
"""

from repro.cluster.kernel import (
    AllOf,
    AnyOf,
    Event,
    Interrupted,
    Kernel,
    Process,
    Timeout,
)
from repro.cluster.link import SimLink
from repro.cluster.load import BackgroundCpuLoad, BackgroundTrafficLoad, LoadPhase
from repro.cluster.node import MemoryAccount, SimNode
from repro.cluster.resources import FairShareServer, SlotResource, Store
from repro.cluster.topology import Cluster

__all__ = [
    "Kernel", "Event", "Timeout", "Process", "AnyOf", "AllOf", "Interrupted",
    "FairShareServer", "SlotResource", "Store",
    "SimNode", "MemoryAccount", "SimLink", "Cluster",
    "LoadPhase", "BackgroundCpuLoad", "BackgroundTrafficLoad",
]
