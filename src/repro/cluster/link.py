"""Simulated network links.

A :class:`SimLink` is a bidirectional pipe between two hostnames with a
bandwidth (MB/s) shared fairly among concurrent transfers and a fixed
propagation latency.  Bandwidth *reservations* (what the matcher hands out)
are tracked separately from instantaneous usage, mirroring how Harmony
decrements available resources as applications are matched.
"""

from __future__ import annotations

from repro.cluster.kernel import Event, Kernel
from repro.cluster.resources import FairShareServer
from repro.errors import AllocationError, SimulationError

__all__ = ["SimLink"]


class SimLink:
    """One network link in the simulated cluster."""

    def __init__(self, kernel: Kernel, host_a: str, host_b: str,
                 bandwidth_mbps: float, latency_seconds: float = 0.0):
        if bandwidth_mbps <= 0:
            raise SimulationError(
                f"link {host_a}--{host_b}: bandwidth must be positive")
        if latency_seconds < 0:
            raise SimulationError(
                f"link {host_a}--{host_b}: latency must be non-negative")
        self.kernel = kernel
        self.host_a = host_a
        self.host_b = host_b
        self.bandwidth_mbps = bandwidth_mbps
        self.latency_seconds = latency_seconds
        self.pipe = FairShareServer(kernel, capacity=bandwidth_mbps,
                                    name=f"link:{host_a}--{host_b}")
        self._reserved_mbps = 0.0
        self._reservations: dict[str, float] = {}

    # -- data transfer -------------------------------------------------------

    def transfer(self, megabytes: float) -> Event:
        """Move ``megabytes`` across the link; completion event as result.

        Concurrent transfers share the bandwidth fairly; every transfer also
        pays the propagation latency once.
        """
        if megabytes < 0:
            raise SimulationError(f"negative transfer size {megabytes}")
        if self.latency_seconds == 0:
            return self.pipe.submit(megabytes)
        done = self.kernel.event()
        inner = self.pipe.submit(megabytes)

        def after_transfer(event: Event) -> None:
            tail = self.kernel.timeout(self.latency_seconds, event.value)
            tail.add_callback(lambda ev: done.succeed(
                ev.value + self.latency_seconds))

        inner.add_callback(after_transfer)
        return done

    # -- reservations ----------------------------------------------------------

    @property
    def available_mbps(self) -> float:
        return self.bandwidth_mbps - self._reserved_mbps

    def reserve(self, holder: str, mbps: float) -> None:
        """Reserve bandwidth for ``holder``; additive across calls."""
        if mbps < 0:
            raise SimulationError(f"negative bandwidth reservation {mbps}")
        if mbps > self.available_mbps + 1e-9:
            raise AllocationError(
                f"bandwidth reservation of {mbps} MB/s exceeds available "
                f"{self.available_mbps} MB/s on {self.host_a}--{self.host_b}")
        self._reserved_mbps += mbps
        self._reservations[holder] = self._reservations.get(holder, 0.0) + mbps

    def release(self, holder: str) -> float:
        """Release all bandwidth held by ``holder``; returns the amount."""
        amount = self._reservations.pop(holder, 0.0)
        self._reserved_mbps -= amount
        return amount

    def connects(self, host_a: str, host_b: str) -> bool:
        """Whether this link joins the two hostnames (either direction)."""
        return {self.host_a, self.host_b} == {host_a, host_b}

    def __repr__(self) -> str:
        return (f"SimLink({self.host_a!r} -- {self.host_b!r}, "
                f"{self.bandwidth_mbps} MB/s)")
