"""Shared-resource models for the simulated cluster.

The central model is :class:`FairShareServer`: a capacity that is divided
equally among all active jobs — *processor sharing*.  It models both CPUs
(capacity = node speed relative to the reference machine, demand = seconds
of reference-machine computation) and network links (capacity = bandwidth in
MB/s, demand = megabytes).  Processor sharing is what produces the paper's
Figure 7 behaviour: with two clients query-shipping against one server, each
query takes roughly twice as long.

Also provided: :class:`SlotResource` (bounded concurrency with FIFO
queueing) and :class:`Store` (an unbounded FIFO item queue used by the
bag-of-tasks application).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any

from repro.cluster.kernel import Event, Kernel
from repro.errors import SimulationError

__all__ = ["FairShareServer", "SlotResource", "Store"]

_EPSILON = 1e-9


@dataclass
class _Job:
    """One active job in a fair-share server."""

    job_id: int
    remaining: float
    completion: Event


class FairShareServer:
    """A resource whose capacity is equally shared by all active jobs.

    ``capacity`` is in demand-units per second.  Each active job receives a
    service rate of ``capacity / n`` where ``n`` is the number of active
    jobs; when jobs arrive or depart the rates of everyone else change, which
    the implementation handles by advancing all remaining demands lazily.

    The server also accumulates utilization statistics (busy seconds and
    job-seconds) for the metric interface.
    """

    def __init__(self, kernel: Kernel, capacity: float, name: str = ""):
        if capacity <= 0:
            raise SimulationError(
                f"fair-share server {name!r} needs positive capacity, "
                f"got {capacity}")
        self.kernel = kernel
        self.name = name
        self._capacity = capacity
        self._jobs: dict[int, _Job] = {}
        self._ids = itertools.count()
        self._last_update = kernel.now
        self._timer_generation = 0
        # statistics
        self._busy_seconds = 0.0
        self._job_seconds = 0.0
        self._completed_jobs = 0

    # -- public API ----------------------------------------------------------

    @property
    def capacity(self) -> float:
        return self._capacity

    @property
    def active_jobs(self) -> int:
        return len(self._jobs)

    @property
    def completed_jobs(self) -> int:
        return self._completed_jobs

    def submit(self, demand: float) -> Event:
        """Submit a job needing ``demand`` units; returns its completion event.

        The event's value is the job's sojourn time (seconds spent in the
        server), which response-time metrics consume directly.
        """
        if demand < 0:
            raise SimulationError(f"negative demand {demand}")
        completion = self.kernel.event()
        if demand <= _EPSILON:
            completion.succeed(0.0)
            return completion
        self._advance()
        job = _Job(job_id=next(self._ids), remaining=float(demand),
                   completion=completion)
        job.arrival_time = self.kernel.now  # type: ignore[attr-defined]
        self._jobs[job.job_id] = job
        self._reschedule()
        return completion

    def set_capacity(self, capacity: float) -> None:
        """Change the capacity (e.g. external load stealing cycles)."""
        if capacity <= 0:
            raise SimulationError(f"capacity must stay positive, got {capacity}")
        self._advance()
        self._capacity = capacity
        self._reschedule()

    def utilization(self, since_seconds: float | None = None) -> float:
        """Fraction of time busy since the start (approximate, cumulative)."""
        self._advance_statistics_only()
        elapsed = self.kernel.now
        if elapsed <= 0:
            return 1.0 if self._jobs else 0.0
        return min(1.0, self._busy_seconds / elapsed)

    def mean_load(self) -> float:
        """Time-averaged number of active jobs since the start."""
        self._advance_statistics_only()
        elapsed = self.kernel.now
        if elapsed <= 0:
            return float(len(self._jobs))
        return self._job_seconds / elapsed

    # -- internals -----------------------------------------------------------

    def _advance_statistics_only(self) -> None:
        # Statistics are folded in during _advance; calling it is safe even
        # with no membership change.
        self._advance()
        self._reschedule()

    def _advance(self) -> None:
        """Apply service accrued since the last update to all active jobs."""
        now = self.kernel.now
        elapsed = now - self._last_update
        self._last_update = now
        if elapsed <= 0 or not self._jobs:
            return
        n = len(self._jobs)
        self._busy_seconds += elapsed
        self._job_seconds += elapsed * n
        rate = self._capacity / n
        served = elapsed * rate
        finished: list[_Job] = []
        for job in self._jobs.values():
            job.remaining -= served
            if job.remaining <= _EPSILON:
                finished.append(job)
        for job in finished:
            del self._jobs[job.job_id]
            sojourn = now - job.arrival_time  # type: ignore[attr-defined]
            self._completed_jobs += 1
            job.completion.succeed(sojourn)

    def _reschedule(self) -> None:
        """Arrange a wakeup at the earliest projected completion."""
        self._timer_generation += 1
        if not self._jobs:
            return
        generation = self._timer_generation
        min_remaining = min(job.remaining for job in self._jobs.values())
        n = len(self._jobs)
        delay = max(0.0, min_remaining * n / self._capacity)
        timer = self.kernel.timeout(delay)
        timer.add_callback(lambda _ev: self._on_timer(generation))

    def _on_timer(self, generation: int) -> None:
        if generation != self._timer_generation:
            return  # superseded by a later arrival/departure
        self._advance()
        self._reschedule()


class SlotResource:
    """``capacity`` concurrent slots with FIFO queueing.

    ``request()`` returns an event that triggers when a slot is granted;
    callers must ``release()`` exactly once per granted request.
    """

    def __init__(self, kernel: Kernel, capacity: int, name: str = ""):
        if capacity < 1:
            raise SimulationError(f"slot resource needs capacity >= 1")
        self.kernel = kernel
        self.name = name
        self.capacity = capacity
        self._in_use = 0
        self._waiters: list[Event] = []

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def request(self) -> Event:
        event = self.kernel.event()
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(
                f"release() on slot resource {self.name!r} with no slot held")
        if self._waiters:
            waiter = self._waiters.pop(0)
            waiter.succeed()
        else:
            self._in_use -= 1


class Store:
    """An unbounded FIFO queue of items with blocking ``get``."""

    def __init__(self, kernel: Kernel, name: str = ""):
        self.kernel = kernel
        self.name = name
        self._items: list[Any] = []
        self._getters: list[Event] = []

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            getter = self._getters.pop(0)
            getter.succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event that triggers with the next item (immediately if present)."""
        event = self.kernel.event()
        if self._items:
            event.succeed(self._items.pop(0))
        else:
            self._getters.append(event)
        return event
