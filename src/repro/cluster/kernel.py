"""Discrete-event simulation kernel.

The paper's experiments ran on an IBM SP-2; this reproduction runs them on a
simulated cluster driven by the process-based discrete-event kernel in this
module.  Processes are Python generators that ``yield`` waitable
:class:`Event` objects; the kernel resumes a process when the event it waits
on triggers, sending the event's value back into the generator.

The design mirrors the classic SimPy core but is self-contained:

* :class:`Event` — one-shot waitable with success value or failure exception;
* :class:`Timeout` — triggers after a simulated delay;
* :class:`Process` — wraps a generator; itself an event that triggers when
  the generator returns (value = the ``return`` value);
* :class:`AnyOf` / :class:`AllOf` — combinators;
* :class:`Kernel` — the event loop with a monotonic simulated clock.

Processes may be interrupted (:meth:`Process.interrupt`), which raises
:class:`Interrupted` inside the generator at its current wait point — the
mechanism harmonized applications use to notice reconfiguration requests
between phases.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable

from repro.errors import SimulationError

__all__ = ["Kernel", "Event", "Timeout", "Process", "AnyOf", "AllOf",
           "Interrupted"]


class Interrupted(Exception):
    """Raised inside a process when another process interrupts it."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait for.

    Events move through three states: pending -> triggered -> processed.
    ``succeed(value)`` or ``fail(exc)`` triggers the event; its callbacks run
    when the kernel processes it (immediately scheduled at the current time).
    """

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self.callbacks: list[Callable[[Event], None]] | None = []
        self._value: Any = None
        self._exception: BaseException | None = None
        self._triggered = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value read before trigger")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> BaseException | None:
        return self._exception

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError("event triggered twice")
        self._triggered = True
        self._value = value
        self.kernel._enqueue(self, delay=0.0)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with a failure; waiters see the exception."""
        if self._triggered:
            raise SimulationError("event triggered twice")
        self._triggered = True
        self._exception = exception
        self.kernel._enqueue(self, delay=0.0)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            # Already processed: run at the current time.
            callback(self)
        else:
            self.callbacks.append(callback)


class Timeout(Event):
    """An event that triggers ``delay`` simulated seconds in the future.

    The value is fixed at creation but the event only *triggers* when the
    kernel reaches its scheduled time — conditions (AnyOf/AllOf) must not
    see a future timeout as already settled.
    """

    def __init__(self, kernel: "Kernel", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        super().__init__(kernel)
        self._value = value
        self.delay = delay
        kernel._enqueue(self, delay=delay)


class Process(Event):
    """A running process; also an event that triggers when it finishes."""

    def __init__(self, kernel: "Kernel",
                 generator: Generator[Event, Any, Any], name: str = ""):
        super().__init__(kernel)
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._waiting_on: Event | None = None
        self._interrupts: list[Interrupted] = []
        # Bootstrap: resume once at the current time.
        bootstrap = Event(kernel)
        bootstrap.add_callback(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupted` inside the process at its wait point."""
        if not self.is_alive:
            return
        self._interrupts.append(Interrupted(cause))
        waiting = self._waiting_on
        if waiting is not None:
            self._waiting_on = None
            if waiting.callbacks is not None and self._resume in waiting.callbacks:
                waiting.callbacks.remove(self._resume)
            # Deliver promptly via an immediate event.
            wakeup = Event(self.kernel)
            wakeup.add_callback(self._resume)
            wakeup.succeed()

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        while True:
            try:
                if self._interrupts:
                    interrupt = self._interrupts.pop(0)
                    target = self._generator.throw(interrupt)
                elif event is not None and event.exception is not None:
                    target = self._generator.throw(event.exception)
                else:
                    value = event.value if event is not None else None
                    target = self._generator.send(value)
            except StopIteration as stop:
                if not self._triggered:
                    self.succeed(stop.value)
                return
            except Interrupted as exc:
                # The process chose not to handle its interruption.
                if not self._triggered:
                    self.fail(exc)
                return
            except Exception as exc:
                if not self._triggered:
                    self.fail(exc)
                return

            if not isinstance(target, Event):
                self._generator.throw(SimulationError(
                    f"process {self.name!r} yielded non-event "
                    f"{target!r}"))
                continue
            if self._interrupts:
                # An interrupt arrived while the process was executing;
                # deliver it instead of waiting.
                event = None
                continue
            if target.processed:
                # Event already fully settled: continue immediately with its
                # outcome rather than waiting.
                event = target
                continue
            self._waiting_on = target
            target.add_callback(self._resume)
            return


class _Condition(Event):
    """Shared machinery for AnyOf/AllOf."""

    def __init__(self, kernel: "Kernel", events: Iterable[Event]):
        super().__init__(kernel)
        self.events = list(events)
        self._pending = 0
        for event in self.events:
            if not self._check_immediate(event):
                self._pending += 1
                event.add_callback(self._on_child)
        self._evaluate(initial=True)

    def _check_immediate(self, event: Event) -> bool:
        return event.processed

    def _on_child(self, event: Event) -> None:
        self._pending -= 1
        if not self._triggered:
            self._evaluate(initial=False)

    def _evaluate(self, initial: bool) -> None:
        raise NotImplementedError


class AnyOf(_Condition):
    """Triggers when the first of its child events settles.

    Value: the (event, value) pair of the first settled child.  A failing
    child fails the condition.
    """

    def _evaluate(self, initial: bool) -> None:
        for event in self.events:
            if event.triggered:
                if event.exception is not None:
                    self.fail(event.exception)
                else:
                    self.succeed((event, event._value))
                return
        if not self.events:
            self.succeed((None, None))


class AllOf(_Condition):
    """Triggers when every child has settled; value is the list of values."""

    def _evaluate(self, initial: bool) -> None:
        if all(event.triggered for event in self.events):
            for event in self.events:
                if event.exception is not None:
                    self.fail(event.exception)
                    return
            self.succeed([event._value for event in self.events])


class Kernel:
    """The event loop: a priority queue of (time, sequence, event)."""

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[tuple[float, int, Event]] = []
        self._sequence = itertools.count()

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- event factories ----------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def spawn(self, generator: Generator[Event, Any, Any],
              name: str = "") -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling ----------------------------------------------------------

    def _enqueue(self, event: Event, delay: float) -> None:
        heapq.heappush(self._queue,
                       (self._now + delay, next(self._sequence), event))

    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        time, _, event = heapq.heappop(self._queue)
        if time < self._now:
            raise SimulationError("event scheduled in the past")
        self._now = time
        event._triggered = True  # idempotent for already-succeeded events
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks or ():
            callback(event)
        if (event.exception is not None and not callbacks
                and not isinstance(event, Process)):
            # A failed event nobody waited on: surface the error rather
            # than losing it silently.
            raise event.exception

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the queue drains, a deadline passes, or an event fires.

        * ``until=None`` — run to quiescence;
        * ``until=<float>`` — advance the clock to exactly that time;
        * ``until=<Event>`` — run until that event is processed and return
          its value.
        """
        if isinstance(until, Event):
            sentinel = until
            while not sentinel.processed:
                if not self._queue:
                    raise SimulationError(
                        "simulation ran out of events before the awaited "
                        "event triggered (deadlock?)")
                self.step()
            return sentinel.value

        deadline = float(until) if until is not None else None
        while self._queue:
            next_time = self._queue[0][0]
            if deadline is not None and next_time > deadline:
                break
            self.step()
        if deadline is not None and self._now < deadline:
            self._now = deadline
        return None

    def advance_to(self, time: float) -> None:
        """Jump the clock forward to ``time`` without running events.

        Used by durability-log replay, which must re-apply each recorded
        decision at its original timestamp: the clock is advanced to the
        record's time and the decision re-executed against it.  Going
        backwards is an error; an advance past pending events would
        reorder history, so that is rejected too.
        """
        if time < self._now:
            raise SimulationError(
                f"advance_to({time}) would move time backwards "
                f"(now={self._now})")
        if self._queue and self._queue[0][0] < time:
            raise SimulationError(
                f"advance_to({time}) would skip over a pending event at "
                f"t={self._queue[0][0]}")
        self._now = time
