"""Simulated cluster nodes.

A :class:`SimNode` couples the static description Harmony sees (hostname,
speed relative to the 400 MHz Pentium II reference machine, memory, OS) with
runtime state: a processor-sharing CPU and a memory accountant.  CPU demand
everywhere in this library is expressed in *reference seconds*; a node of
speed 2.0 serves one reference second in half a wall-clock (simulated)
second, matching the paper's relative-speed convention.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.cluster.kernel import Event, Kernel
from repro.cluster.resources import FairShareServer
from repro.errors import AllocationError, SimulationError
from repro.rsl.model import NodeAdvertisement

__all__ = ["SimNode", "MemoryAccount"]


@dataclass
class MemoryAccount:
    """Tracks reserved memory (MB) on a node."""

    total_mb: float
    reserved_mb: float = 0.0
    _holders: dict[str, float] = field(default_factory=dict)

    @property
    def available_mb(self) -> float:
        return self.total_mb - self.reserved_mb

    def reserve(self, holder: str, amount_mb: float) -> None:
        """Reserve memory for ``holder``; additive across calls."""
        if amount_mb < 0:
            raise SimulationError(f"negative memory reservation {amount_mb}")
        if amount_mb > self.available_mb + 1e-9:
            raise AllocationError(
                f"memory reservation of {amount_mb} MB exceeds available "
                f"{self.available_mb} MB")
        self.reserved_mb += amount_mb
        self._holders[holder] = self._holders.get(holder, 0.0) + amount_mb

    def release(self, holder: str) -> float:
        """Release everything held by ``holder``; returns the amount."""
        amount = self._holders.pop(holder, 0.0)
        self.reserved_mb -= amount
        return amount

    def held_by(self, holder: str) -> float:
        return self._holders.get(holder, 0.0)


class SimNode:
    """One machine in the simulated cluster."""

    def __init__(self, kernel: Kernel, hostname: str, speed: float = 1.0,
                 memory_mb: float = 256.0, os: str = "linux",
                 attributes: Mapping[str, str] | None = None):
        if speed <= 0:
            raise SimulationError(f"node {hostname!r}: speed must be positive")
        self.kernel = kernel
        self.hostname = hostname
        self.speed = speed
        self.os = os
        self.attributes = dict(attributes or {})
        self.cpu = FairShareServer(kernel, capacity=speed,
                                   name=f"cpu:{hostname}")
        self.memory = MemoryAccount(total_mb=memory_mb)
        #: False once the machine has left the meta-computer ("the
        #: addition or deletion of nodes" from the paper's abstract).
        #: Failed nodes are invisible to the matcher; in-flight simulated
        #: work is not interrupted (callers decide what failure means for
        #: running jobs).
        self.available = True

    def fail(self) -> None:
        """Remove this machine from the pool of allocatable nodes."""
        self.available = False

    def restore(self) -> None:
        """Return this machine to the pool."""
        self.available = True

    def compute(self, reference_seconds: float) -> Event:
        """Run ``reference_seconds`` of reference-machine work on this CPU.

        Returns the completion event; its value is the job's sojourn time.
        With no contention the sojourn is ``reference_seconds / speed``.
        """
        return self.cpu.submit(reference_seconds)

    def advertisement(self) -> NodeAdvertisement:
        """The RSL ``harmonyNode`` view of this node."""
        return NodeAdvertisement(
            hostname=self.hostname, speed=self.speed,
            memory=self.memory.total_mb, os=self.os,
            attributes=dict(self.attributes))

    def __repr__(self) -> str:
        return (f"SimNode({self.hostname!r}, speed={self.speed}, "
                f"memory={self.memory.total_mb} MB)")
