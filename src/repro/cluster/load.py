"""External background load injection.

The paper's controller re-evaluates options periodically "to adapt the
system due to changes out of Harmony's control (such as network traffic due
to other applications)".  This module provides deterministic generators of
exactly such out-of-band load: CPU jobs and network transfers that arrive on
a schedule and are invisible to the controller except through the metric
interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.cluster.kernel import Interrupted, Kernel, Process
from repro.cluster.topology import Cluster

__all__ = ["LoadPhase", "BackgroundCpuLoad", "BackgroundTrafficLoad"]


@dataclass(frozen=True)
class LoadPhase:
    """One phase of a load schedule.

    During the phase, jobs of ``demand`` units are issued back-to-back with
    ``think_seconds`` gaps, keeping roughly ``parallelism`` jobs in flight.
    """

    duration_seconds: float
    parallelism: int = 1
    demand: float = 1.0
    think_seconds: float = 0.0


class BackgroundCpuLoad:
    """Synthetic competing computation on one node."""

    def __init__(self, cluster: Cluster, hostname: str,
                 phases: list[LoadPhase]):
        self.cluster = cluster
        self.hostname = hostname
        self.phases = list(phases)
        self.jobs_issued = 0
        self._process: Process | None = None

    def start(self) -> Process:
        self._process = self.cluster.kernel.spawn(
            self._run(), name=f"bg-cpu:{self.hostname}")
        return self._process

    def stop(self) -> None:
        if self._process is not None and self._process.is_alive:
            self._process.interrupt("stop")

    def _run(self) -> Iterator:
        kernel = self.cluster.kernel
        node = self.cluster.node(self.hostname)
        try:
            for phase in self.phases:
                phase_end = kernel.now + phase.duration_seconds
                workers = [
                    kernel.spawn(
                        self._worker(node, phase, phase_end),
                        name=f"bg-cpu-worker:{self.hostname}")
                    for _ in range(phase.parallelism)
                ]
                yield kernel.all_of(workers)
        except Interrupted:
            return

    def _worker(self, node, phase: LoadPhase, phase_end: float) -> Iterator:
        kernel = self.cluster.kernel
        while kernel.now < phase_end:
            self.jobs_issued += 1
            yield node.compute(phase.demand)
            if phase.think_seconds > 0:
                yield kernel.timeout(phase.think_seconds)


class BackgroundTrafficLoad:
    """Synthetic competing traffic on one link."""

    def __init__(self, cluster: Cluster, host_a: str, host_b: str,
                 phases: list[LoadPhase]):
        self.cluster = cluster
        self.host_a = host_a
        self.host_b = host_b
        self.phases = list(phases)
        self.transfers_issued = 0
        self._process: Process | None = None

    def start(self) -> Process:
        self._process = self.cluster.kernel.spawn(
            self._run(), name=f"bg-net:{self.host_a}-{self.host_b}")
        return self._process

    def stop(self) -> None:
        if self._process is not None and self._process.is_alive:
            self._process.interrupt("stop")

    def _run(self) -> Iterator:
        kernel = self.cluster.kernel
        link = self.cluster.link_between(self.host_a, self.host_b)
        if link is None:
            links = self.cluster.path_links(self.host_a, self.host_b)
            link = links[0]
        try:
            for phase in self.phases:
                phase_end = kernel.now + phase.duration_seconds
                while kernel.now < phase_end:
                    self.transfers_issued += 1
                    yield link.transfer(phase.demand)
                    if phase.think_seconds > 0:
                        yield kernel.timeout(phase.think_seconds)
        except Interrupted:
            return
