"""Cluster topology: the set of nodes and the links joining them.

:class:`Cluster` owns the simulation kernel, the nodes, and the links, and
answers the topology questions the matcher asks ("is there a path between
these two assigned nodes with enough bandwidth?").  Convenience constructors
build the shapes the paper's experiments need: a full mesh behind a single
switch (the SP-2's high-performance switch) and a star around a server.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import networkx as nx

from repro.cluster.kernel import Kernel
from repro.cluster.link import SimLink
from repro.cluster.node import SimNode
from repro.errors import SimulationError

__all__ = ["Cluster"]


class Cluster:
    """A simulated collection of nodes and links with a shared clock."""

    def __init__(self, kernel: Kernel | None = None):
        self.kernel = kernel or Kernel()
        self._nodes: dict[str, SimNode] = {}
        self._links: list[SimLink] = []
        self._graph = nx.Graph()
        #: Bumped whenever the graph itself changes (nodes/links added).
        #: Consumers caching routing-derived state (SystemView's per-link
        #: indexes) compare against it and rebuild lazily.  Node failure
        #: and restoration do not change the graph, only availability.
        self.topology_version: int = 0

    # -- construction ----------------------------------------------------------

    def add_node(self, hostname: str, speed: float = 1.0,
                 memory_mb: float = 256.0, os: str = "linux",
                 attributes: dict[str, str] | None = None) -> SimNode:
        if hostname in self._nodes:
            raise SimulationError(f"duplicate node {hostname!r}")
        node = SimNode(self.kernel, hostname, speed=speed,
                       memory_mb=memory_mb, os=os, attributes=attributes)
        self._nodes[hostname] = node
        self._graph.add_node(hostname)
        self.topology_version += 1
        return node

    def add_link(self, host_a: str, host_b: str, bandwidth_mbps: float,
                 latency_seconds: float = 0.0) -> SimLink:
        for host in (host_a, host_b):
            if host not in self._nodes:
                raise SimulationError(
                    f"link endpoint {host!r} is not a cluster node")
        if host_a == host_b:
            raise SimulationError(f"self-link on {host_a!r}")
        if self.link_between(host_a, host_b) is not None:
            raise SimulationError(
                f"duplicate link {host_a!r} -- {host_b!r}")
        link = SimLink(self.kernel, host_a, host_b, bandwidth_mbps,
                       latency_seconds)
        self._links.append(link)
        self._graph.add_edge(host_a, host_b, link=link)
        self.topology_version += 1
        return link

    @classmethod
    def full_mesh(cls, hostnames: Iterable[str], speed: float = 1.0,
                  memory_mb: float = 256.0, bandwidth_mbps: float = 40.0,
                  latency_seconds: float = 0.0,
                  kernel: Kernel | None = None) -> "Cluster":
        """All-pairs connectivity — a switch-backed machine room.

        The default 40 MB/s matches the paper's 320 Mbps SP-2 switch.
        """
        cluster = cls(kernel)
        names = list(hostnames)
        for name in names:
            cluster.add_node(name, speed=speed, memory_mb=memory_mb)
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                cluster.add_link(a, b, bandwidth_mbps, latency_seconds)
        return cluster

    @classmethod
    def star(cls, center: str, leaves: Iterable[str], speed: float = 1.0,
             memory_mb: float = 256.0, bandwidth_mbps: float = 40.0,
             latency_seconds: float = 0.0,
             kernel: Kernel | None = None) -> "Cluster":
        """A hub-and-spoke topology around ``center``."""
        cluster = cls(kernel)
        cluster.add_node(center, speed=speed, memory_mb=memory_mb)
        for leaf in leaves:
            cluster.add_node(leaf, speed=speed, memory_mb=memory_mb)
            cluster.add_link(center, leaf, bandwidth_mbps, latency_seconds)
        return cluster

    # -- queries ---------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.kernel.now

    def node(self, hostname: str) -> SimNode:
        if hostname not in self._nodes:
            raise SimulationError(f"unknown node {hostname!r}")
        return self._nodes[hostname]

    def nodes(self) -> Iterator[SimNode]:
        return iter(self._nodes.values())

    def hostnames(self) -> list[str]:
        return list(self._nodes)

    def links(self) -> Iterator[SimLink]:
        return iter(self._links)

    def link_between(self, host_a: str, host_b: str) -> SimLink | None:
        """The direct link joining two hosts, or ``None``."""
        data = self._graph.get_edge_data(host_a, host_b)
        if data is None:
            return None
        return data["link"]

    def path_links(self, host_a: str, host_b: str) -> list[SimLink]:
        """Links along a max-bottleneck-bandwidth path between two hosts.

        Raises :class:`SimulationError` when the hosts are disconnected.
        Used by the matcher when nodes are not directly linked: bandwidth
        must be reservable on *every* hop.
        """
        if host_a == host_b:
            return []
        direct = self.link_between(host_a, host_b)
        if direct is not None:
            return [direct]
        try:
            # Widest path: maximize the minimum available bandwidth by
            # searching over -available as edge weight via Dijkstra on the
            # bottleneck criterion (simple approach: shortest hop path among
            # those with positive availability).
            path = nx.shortest_path(self._graph, host_a, host_b)
        except nx.NetworkXNoPath:
            raise SimulationError(
                f"no path between {host_a!r} and {host_b!r}") from None
        return [self._graph.edges[u, v]["link"]
                for u, v in zip(path, path[1:])]

    def path_available_mbps(self, host_a: str, host_b: str) -> float:
        """Bottleneck available bandwidth between two hosts (inf if same)."""
        links = self.path_links(host_a, host_b)
        if not links:
            return float("inf")
        return min(link.available_mbps for link in links)

    def advertisements(self) -> list:
        """RSL ``harmonyNode`` advertisements for every node."""
        return [node.advertisement() for node in self._nodes.values()]

    def run(self, until=None):
        """Delegate to the kernel's run loop."""
        return self.kernel.run(until)
