"""Frictional-cost gating of reconfigurations (paper Sections 2 and 3).

"Since changing implementations or data layout could require significant
time, Harmony's interface includes a frictional cost function that can be
used by the tuning system to evaluate if a tuning option is worth the
effort required."

:class:`FrictionPolicy` amortizes the one-time switching cost over a time
horizon: a switch is worthwhile when the objective improvement, accumulated
over ``amortization_seconds`` of continued execution, exceeds the friction.
The objective is in seconds-of-mean-response, so the improvement *rate* is
interpreted as seconds saved per job and scaled by the expected number of
jobs in the horizon (``horizon / new_response``).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FrictionPolicy", "SwitchDecision"]


@dataclass(frozen=True)
class SwitchDecision:
    """The outcome of a friction evaluation, kept for explainability."""

    worthwhile: bool
    objective_gain: float
    friction_cost: float
    amortized_gain: float

    def __bool__(self) -> bool:
        return self.worthwhile


@dataclass
class FrictionPolicy:
    """Decides whether an objective improvement justifies switching.

    ``amortization_seconds`` — how far ahead the controller credits gains;
    the paper targets long-lived/persistent applications precisely so such
    costs "can be amortized across the life of the object".

    ``min_relative_gain`` — hysteresis: improvements smaller than this
    fraction of the current objective are ignored even when frictionless,
    preventing oscillation on prediction noise.
    """

    amortization_seconds: float = 600.0
    min_relative_gain: float = 0.01

    def evaluate(self, current_objective: float, candidate_objective: float,
                 friction_cost_seconds: float,
                 candidate_response_seconds: float | None = None,
                 ) -> SwitchDecision:
        """Is moving from current to candidate worth ``friction_cost``?"""
        gain = current_objective - candidate_objective
        if gain <= 0:
            return SwitchDecision(False, gain, friction_cost_seconds, 0.0)
        if current_objective > 0 and \
                gain / current_objective < self.min_relative_gain:
            return SwitchDecision(False, gain, friction_cost_seconds, 0.0)
        if friction_cost_seconds <= 0:
            return SwitchDecision(True, gain, 0.0, float("inf"))
        # Jobs completed over the horizon at the *candidate* speed; each
        # saves `gain` seconds relative to staying put.
        response = candidate_response_seconds or candidate_objective
        if response <= 0:
            jobs_in_horizon = 1.0
        else:
            jobs_in_horizon = max(1.0, self.amortization_seconds / response)
        amortized_gain = gain * jobs_in_horizon
        return SwitchDecision(amortized_gain > friction_cost_seconds,
                              gain, friction_cost_seconds, amortized_gain)
