"""Parallel per-partition sweeps over a process pool.

:class:`ParallelSweepExecutor` ships each independent partition of the
:class:`~repro.controller.partition.PartitionIndex` to a worker process as
a picklable :class:`PartitionTask`: the partition's slice of the cluster
(nodes, links, failure state, external load), its members' bundles and
live configurations, and — crucially — the *full parent system's*
prediction vector.  The worker rebuilds a miniature controller, replays
the members' reservations and placements, and runs the same per-bundle
greedy evaluation the serial sweep would, scoring every candidate with an
:class:`_OverlayObjective` that substitutes the partition's local
predictions into the parent vector **at their original positions** — the
float summation order is the parent's, so objective values (and therefore
gains, friction decisions, and reason strings) are bitwise-identical to
the serial sweep's.

Workers return *proposals* (the candidates they applied locally), not
decisions: the parent merges them back under its own lock, in global
registry order, re-running the friction gate against the live objective
before each apply.  Partitions are provably independent (that is what the
index's connected components mean), so proposals cannot conflict; the
re-gate exists for the one documented epsilon: a hysteresis threshold
crossed only because *another* partition improved first.

The pool is only consulted when pruning is provably safe (decomposable
objective, no opaque models — the same condition as clean-skip) because
concurrent evaluation freezes the rest-of-system vector at sweep start.
With ``parallel_workers <= 1``, a single partition, or unpicklable state,
everything silently falls back to the inline partitioned sweep.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import pickle
import time as _time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from repro.allocation.allocation import allocate
from repro.controller.optimizer import Candidate
from repro.errors import AllocationError, ControllerError, HarmonyError
from repro.obs.flightrec import EVENT_SERVER_ERROR

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.controller.controller import AdaptationController
    from repro.controller.partition import PartitionIndex
    from repro.controller.registry import AppInstance, BundleState

__all__ = ["ParallelSweepExecutor", "PartitionTask", "PoolSweepResult",
           "run_partition_task"]

BundleKey = tuple[str, str]


@dataclass
class MemberTask:
    """One bundle of the partition, with everything needed to replay it."""

    app_name: str
    instance_id: int
    registered_at: float
    bundle: object                      # repro.rsl.model.Bundle
    clean: bool                         # skip evaluation, placement only
    last_switch_time: float | None
    switch_count: int
    #: Current configuration, or None when unconfigured: (option_name,
    #: variable_assignment, demands, assignment, predicted_seconds,
    #: chosen_at, memory_grants).
    chosen: tuple | None

    @property
    def key(self) -> str:
        return f"{self.app_name}.{self.instance_id}"


@dataclass
class PartitionTask:
    """A picklable, self-contained view of one partition."""

    pid: int
    now: float
    #: (hostname, speed, memory_mb, os, attributes, available) in parent
    #: cluster insertion order — candidate ordering depends on it.
    hosts: list[tuple]
    #: (host_a, host_b, bandwidth_mbps, latency_seconds), parent order.
    links: list[tuple]
    #: Members in partition-local *registry* order (evaluation order).
    members: list[MemberTask]
    #: Member keys in parent *view* order (placement replay order).
    placement_order: list[str]
    #: Full-system predictions [(app_key, seconds)] in parent view order.
    base_predictions: list[tuple[str, float]]
    external_cpu: dict[str, float]
    external_links: list[tuple[str, str, float]]
    objective: object
    friction_policy: object
    default_model: object
    match_strategy: object
    allow_colocation: bool
    #: When True the worker runs a local tracer and ships its span
    #: subtree back in the outcome (stitched by the parent into the
    #: propagated trace).
    trace: bool = False


@dataclass
class PoolSweepResult:
    """What the pool produced, consumed by the inline merge pass."""

    pooled_pids: set[int] = field(default_factory=set)
    #: key -> (candidate, gain) for bundles the worker reconfigured.
    proposals: dict[BundleKey, tuple[Candidate, float]] = \
        field(default_factory=dict)
    stable: set[BundleKey] = field(default_factory=set)
    gains: dict[BundleKey, float] = field(default_factory=dict)
    errors: int = 0


class _OverlayObjective:
    """Scores local predictions inside the parent's full-system vector.

    ``base`` is the parent's prediction mapping in parent iteration
    order.  Member entries are overwritten in place (dict assignment on
    an existing key keeps its position), so ``inner.evaluate`` sums the
    floats in exactly the order the serial sweep would.
    """

    def __init__(self, inner, base: list[tuple[str, float]],
                 member_keys: set[str]):
        self.inner = inner
        self.name = getattr(inner, "name", "overlay")
        self.decomposable = getattr(inner, "decomposable", False)
        self._base = dict(base)
        self._members = member_keys

    def evaluate(self, predictions: Mapping[str, float]) -> float:
        full = dict(self._base)
        for key in self._members:
            if key in predictions:
                full[key] = predictions[key]
            else:
                full.pop(key, None)
        return self.inner.evaluate(full)


def run_partition_task(task: PartitionTask) -> dict:
    """Worker entry point: sweep one partition, return proposals.

    Deliberately a module-level function (process pools pickle it by
    reference).  Builds a fresh miniature deployment — cluster slice,
    controller, adopted instances, replayed reservations — then runs the
    standard per-bundle evaluation in partition-local registry order,
    applying improvements locally so later members see earlier changes
    exactly as the serial sweep interleaves them.
    """
    from repro.cluster.topology import Cluster
    from repro.controller.controller import (
        AdaptationController,
        ModelDrivenPolicy,
    )
    from repro.controller.registry import AppInstance, ChosenConfiguration
    from repro.obs.trace import Tracer

    started = _time.perf_counter()
    # A worker-local tracer: its finished spans travel back with the
    # result and the parent stitches them under the sweep's worker span,
    # so one trace id covers work done in another process.
    tracer = Tracer() if task.trace else None
    cluster = Cluster()
    for hostname, speed, memory_mb, os_name, attributes, available in \
            task.hosts:
        node = cluster.add_node(hostname, speed=speed, memory_mb=memory_mb,
                                os=os_name, attributes=dict(attributes))
        if not available:
            node.fail()
    for host_a, host_b, bandwidth, latency in task.links:
        cluster.add_link(host_a, host_b, bandwidth_mbps=bandwidth,
                         latency_seconds=latency)
    cluster.kernel.advance_to(task.now)

    member_keys = {member.key for member in task.members}
    objective = _OverlayObjective(task.objective, task.base_predictions,
                                  member_keys)
    controller = AdaptationController(
        cluster, objective=objective,
        policy=ModelDrivenPolicy(pairwise_exchange=False),
        friction_policy=task.friction_policy,
        default_model=task.default_model,
        match_strategy=task.match_strategy,
        incremental=True, partitioned=False)
    controller.matcher.allow_colocation = task.allow_colocation
    if tracer is not None:
        controller.tracer = tracer

    by_key: dict[str, tuple] = {}
    for member in task.members:
        instance = AppInstance(app_name=member.app_name,
                               instance_id=member.instance_id,
                               registered_at=member.registered_at)
        controller.registry.adopt(instance)
        state = controller.registry.add_bundle(instance, member.bundle)
        state.last_switch_time = member.last_switch_time
        state.switch_count = member.switch_count
        by_key[member.key] = (instance, state, member)

    # Replay current placements in the parent view's order so the local
    # prediction vector iterates like the parent's restriction.
    for key in task.placement_order:
        instance, state, member = by_key[key]
        (option_name, variable_assignment, demands, assignment,
         predicted_seconds, chosen_at, grants) = member.chosen
        allocation = allocate(
            cluster, demands, assignment, memory_grants=grants,
            predicted_duration_seconds=None,
            holder=f"{instance.key}:{state.bundle.bundle_name}")
        state.chosen = ChosenConfiguration(
            option_name=option_name,
            variable_assignment=dict(variable_assignment),
            demands=demands, assignment=assignment,
            allocation=allocation, predicted_seconds=predicted_seconds,
            chosen_at=chosen_at)
        controller.view.place(instance.key, demands, assignment)
    for hostname, load in task.external_cpu.items():
        controller.view.set_external_cpu_load(hostname, load)
    for host_a, host_b, flows in task.external_links:
        controller.view.set_external_link_load(host_a, host_b, flows)

    policy = controller.policy
    proposals: list[tuple[BundleKey, Candidate, float]] = []
    stable: list[BundleKey] = []
    gains: dict[BundleKey, float] = {}
    sweep_span = (tracer.span("sweep.partition", partition=task.pid,
                              members=len(task.members))
                  if tracer is not None else None)
    try:
        if sweep_span is not None:
            sweep_span.__enter__()
        for member in task.members:
            if member.clean:
                continue
            instance, state, _ = by_key[member.key]
            bkey = (member.key, member.bundle.bundle_name)
            changed, is_stable, gain, applied = \
                policy._reevaluate_bundle_outcome(controller, instance,
                                                  state)
            if gain is not None:
                gains[bkey] = gain
            if changed:
                proposals.append((bkey, applied, gain))
            elif is_stable:
                stable.append(bkey)
    finally:
        if sweep_span is not None:
            sweep_span.set("proposals", len(proposals))
            sweep_span.__exit__(None, None, None)
    return {
        "pid": task.pid,
        "proposals": proposals,
        "stable": stable,
        "gains": gains,
        "stats": controller.stats.snapshot(),
        "elapsed": _time.perf_counter() - started,
        "spans": tracer.to_dicts() if tracer is not None else [],
    }


class ParallelSweepExecutor:
    """Fans independent partitions out to a process pool.

    Created by the controller when ``parallel_workers >= 2``.  The pool
    is forked lazily on first use and reused across sweeps; call
    :meth:`close` (or let the process exit) to reap the workers.
    ``min_members`` keeps trivial partitions inline — a one-bundle task
    costs more to pickle than to evaluate.
    """

    def __init__(self, controller: "AdaptationController",
                 workers: int, min_members: int = 2):
        self.controller = controller
        self.workers = workers
        self.min_members = min_members
        self.merge_failures = 0
        self.pool_errors = 0
        self._pool: concurrent.futures.ProcessPoolExecutor | None = None

    # -- pool lifecycle ----------------------------------------------------

    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._pool is None:
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context("fork"))
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    # -- the fan-out -------------------------------------------------------

    def sweep_partitions(self, index: "PartitionIndex",
                         entries: list, keys: list[BundleKey],
                         ) -> PoolSweepResult:
        """Run every eligible partition's evaluation in the pool.

        Returns an empty result (no pooled pids) when fewer than two
        partitions are worth shipping — the caller's inline pass then
        handles everything, so this method can never make a sweep wrong,
        only concurrent.
        """
        result = PoolSweepResult()
        controller = self.controller
        by_pid: dict[int, list] = {}
        for (instance, state), key in zip(entries, keys):
            part = index.partition_of(key)
            if part is None:
                continue
            by_pid.setdefault(part.pid, []).append((instance, state, key))
        tasks: list[PartitionTask] = []
        for pid, members in sorted(by_pid.items()):
            if len(members) < self.min_members:
                continue
            if all(index.is_clean(key) for _, _, key in members):
                continue  # the inline pass prunes these for free
            if any(instance.models or len(instance.bundles) != 1
                   or state.chosen is None
                   for instance, state, _ in members):
                # Explicitly registered models cannot be shipped (opaque
                # callables), multi-bundle instances share one view slot,
                # and unconfigured bundles have nothing to replay: all
                # three stay on the inline path.
                continue
            tasks.append(self._build_task(index, pid, members))
        if len(tasks) < 2:
            return result
        controller.stats.parallel_sweeps += 1
        pool = self._ensure_pool()
        futures = {pool.submit(run_partition_task, task): task.pid
                   for task in tasks}
        tracer = controller.tracer
        for future in concurrent.futures.as_completed(futures):
            pid = futures[future]
            try:
                outcome = future.result()
            except (HarmonyError, concurrent.futures.BrokenExecutor,
                    concurrent.futures.CancelledError,
                    pickle.PickleError, OSError):
                # The expected pool failures — a worker-side controller
                # error, a crashed/cancelled worker, unpicklable state,
                # an IPC error: that partition simply falls back to the
                # inline sweep.
                self.pool_errors += 1
                continue
            except Exception as exc:
                # A programming error is *also* safe to fall back from
                # (the inline sweep recomputes the partition), but it
                # must not be silently mistaken for a transport hiccup:
                # flight-record it so the bug is visible.
                self.pool_errors += 1
                recorder = getattr(controller, "flight_recorder", None)
                if recorder is not None:
                    recorder.record(EVENT_SERVER_ERROR,
                                    error=type(exc).__name__,
                                    message=str(exc),
                                    partition=pid)
                continue
            result.pooled_pids.add(pid)
            for bkey, candidate, gain in outcome["proposals"]:
                result.proposals[bkey] = (candidate, gain)
            result.stable.update(outcome["stable"])
            result.gains.update(outcome["gains"])
            stats = controller.stats
            worker_stats = outcome["stats"]
            stats.candidates_evaluated += \
                worker_stats["candidates_evaluated"]
            stats.predictions_recomputed += \
                worker_stats["predictions_recomputed"]
            stats.full_view_recomputes += \
                worker_stats["full_view_recomputes"]
            stats.match_calls += worker_stats["match_calls"]
            if tracer.enabled:
                worker_span = tracer.record_span(
                    "optimizer.partition_worker",
                    max(0.0, tracer.elapsed() - outcome["elapsed"]),
                    outcome["elapsed"], partition=pid,
                    proposals=len(outcome["proposals"]))
                # Stitch the worker's own span subtree (shipped back as
                # plain dicts) under the worker span, so the propagated
                # trace id spans the process-pool boundary.
                tracer.adopt_subtree(outcome.get("spans") or (),
                                     worker_span)
        return result

    def _build_task(self, index: "PartitionIndex", pid: int,
                    members: list) -> PartitionTask:
        controller = self.controller
        cluster = controller.cluster
        part = index._parts[pid]
        hosts: set[str] = set()
        for resource in part.resources:
            if resource[0] == "h":
                hosts.add(resource[1])
            else:
                hosts.update(resource[1])
        host_rows = []
        for hostname in cluster.hostnames():  # parent insertion order
            if hostname not in hosts:
                continue
            node = cluster.node(hostname)
            host_rows.append((hostname, node.speed, node.memory.total_mb,
                              node.os, dict(node.attributes),
                              node.available))
        link_rows = [(link.host_a, link.host_b, link.bandwidth_mbps,
                      link.latency_seconds)
                     for link in cluster.links()
                     if link.host_a in hosts and link.host_b in hosts]
        member_rows: dict[str, MemberTask] = {}
        for instance, state, key in members:
            chosen = state.chosen
            member_rows[instance.key] = MemberTask(
                app_name=instance.app_name,
                instance_id=instance.instance_id,
                registered_at=instance.registered_at,
                bundle=state.bundle,
                clean=index.is_clean(key),
                last_switch_time=state.last_switch_time,
                switch_count=state.switch_count,
                chosen=(chosen.option_name,
                        dict(chosen.variable_assignment),
                        chosen.demands, chosen.assignment,
                        chosen.predicted_seconds, chosen.chosen_at,
                        chosen.allocation.memory_grants()))
        placement_order = [placed.app_key
                           for placed in controller.view.configurations()
                           if placed.app_key in member_rows]
        engine = controller._engine
        live = engine.live_predictions() if engine is not None \
            else controller.predict_all(controller.view)
        external_cpu = {h: controller.view.external_cpu_load(h)
                        for h in hosts
                        if controller.view.external_cpu_load(h) > 0}
        external_links = []
        for link in cluster.links():
            if link.host_a in hosts and link.host_b in hosts:
                flows = controller.view.external_link_load(link.host_a,
                                                           link.host_b)
                if flows > 0:
                    external_links.append((link.host_a, link.host_b,
                                           flows))
        return PartitionTask(
            pid=pid, now=controller.now, hosts=host_rows, links=link_rows,
            members=[member_rows[instance.key]
                     for instance, _, _ in members],
            placement_order=placement_order,
            base_predictions=list(live.items()),
            external_cpu=external_cpu, external_links=external_links,
            objective=controller.objective,
            friction_policy=controller.friction_policy,
            default_model=controller.default_model,
            match_strategy=controller.matcher.strategy,
            allow_colocation=controller.matcher.allow_colocation,
            trace=controller.tracer.enabled)

    # -- the merge ---------------------------------------------------------

    def merge_one(self, controller: "AdaptationController", policy,
                  instance: "AppInstance", state: "BundleState",
                  key: BundleKey, pool_result: PoolSweepResult,
                  ) -> tuple[bool, bool, float | None]:
        """Consume one pooled bundle's result, in registry order.

        Called under the parent's lock (the same context as the serial
        sweep).  Proposals re-run the friction gate against the *live*
        objective — the worker's gate used the sweep-start snapshot — so
        the applied set matches the serial sweep wherever the serial
        sweep would have decided the same way.  Gains are rest-invariant
        for decomposable objectives, so the candidate's live objective
        is ``current - gain`` without re-prediction.
        """
        entry = pool_result.proposals.get(key)
        if entry is None:
            stable = key in pool_result.stable
            return False, stable, pool_result.gains.get(key)
        candidate, gain = entry
        if state.chosen is None or \
                not state.granularity_allows_switch(controller.now):
            return False, False, gain
        current = controller.current_objective()
        friction_cost = controller.friction_cost(state,
                                                 candidate.option_name)
        live_candidate = candidate.clone()
        live_candidate.objective_value = current - gain
        decision = controller.friction_policy.evaluate(
            current_objective=current,
            candidate_objective=live_candidate.objective_value,
            friction_cost_seconds=friction_cost,
            candidate_response_seconds=live_candidate.predicted_seconds)
        if not decision:
            return False, False, max(0.0, gain)
        try:
            controller.apply_candidate(
                instance, state, live_candidate,
                reason=f"reevaluation "
                       f"(gain {decision.objective_gain:.3g}s, "
                       f"friction {friction_cost:.3g}s)",
                objective_before=current)
        except (AllocationError, ControllerError):
            # Should be unreachable (partitions are independent); keep
            # the sweep correct by re-evaluating this bundle inline.
            self.merge_failures += 1
            outcome = policy._reevaluate_bundle_outcome(controller,
                                                        instance, state)
            return outcome[0], outcome[1], outcome[2]
        return True, False, gain
