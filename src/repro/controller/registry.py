"""Application registry: the controller's book-keeping of running apps.

Each registered application gets a system-chosen instance id (the paper's
two-part ``application.instance`` names), carries its declared bundles, the
currently chosen configuration per bundle, its allocations, and any explicit
performance models.  The registry also publishes all of it into the shared
hierarchical namespace, so paths like ``DBclient.66.where.DS.client.memory``
resolve as in Section 3.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.allocation.allocation import Allocation
from repro.allocation.instantiate import ConcreteDemands
from repro.allocation.matcher import Assignment
from repro.errors import ControllerError
from repro.namespace import Namespace, join_path
from repro.prediction.models import PerformanceModel, model_for_spec
from repro.rsl.model import Bundle

__all__ = ["ChosenConfiguration", "BundleState", "AppInstance",
           "ApplicationRegistry"]


@dataclass
class ChosenConfiguration:
    """What the controller currently has an app's bundle set to."""

    option_name: str
    variable_assignment: dict[str, float]
    demands: ConcreteDemands
    assignment: Assignment
    allocation: Allocation
    predicted_seconds: float
    chosen_at: float

    def describe(self) -> str:
        if self.variable_assignment:
            variables = ",".join(f"{k}={_fmt(v)}" for k, v in
                                 sorted(self.variable_assignment.items()))
            return f"{self.option_name}({variables})"
        return self.option_name


def _fmt(value: float) -> str:
    return str(int(value)) if value == int(value) else repr(value)


@dataclass
class BundleState:
    """One bundle of one application instance."""

    bundle: Bundle
    chosen: ChosenConfiguration | None = None
    last_switch_time: float | None = None
    switch_count: int = 0

    def granularity_allows_switch(self, now: float) -> bool:
        """Whether enough time has passed since the last option switch."""
        if self.chosen is None or self.last_switch_time is None:
            return True
        option = self.bundle.option_named(self.chosen.option_name)
        if option.granularity is None:
            return True
        return (now - self.last_switch_time
                >= option.granularity.min_interval_seconds)


@dataclass
class AppInstance:
    """One running harmonized application."""

    app_name: str
    instance_id: int
    registered_at: float
    bundles: dict[str, BundleState] = field(default_factory=dict)
    models: dict[str, PerformanceModel] = field(default_factory=dict)
    ended: bool = False
    #: option name -> owning bundle name (bundles are only ever added,
    #: so resolved lookups stay valid for the instance's lifetime).
    _option_bundles: dict[str, str] = field(default_factory=dict,
                                            repr=False, compare=False)

    @property
    def key(self) -> str:
        """Registry key and namespace root: ``app.instance``."""
        return f"{self.app_name}.{self.instance_id}"

    def bundle_of_option(self, option_name: str) -> str:
        """The bundle declaring ``option_name`` (cached after first scan)."""
        cached = self._option_bundles.get(option_name)
        if cached is not None:
            return cached
        for bundle_name, state in self.bundles.items():
            if any(option.name == option_name
                   for option in state.bundle.options):
                self._option_bundles[option_name] = bundle_name
                return bundle_name
        raise ControllerError(
            f"{self.key}: no bundle contains option {option_name!r}")

    def bundle_state(self, bundle_name: str) -> BundleState:
        if bundle_name not in self.bundles:
            raise ControllerError(
                f"{self.key}: unknown bundle {bundle_name!r}")
        return self.bundles[bundle_name]

    def model_for(self, bundle_name: str, option_name: str,
                  default: PerformanceModel | None = None,
                  ) -> PerformanceModel:
        """The model for an option: app-registered > RSL spec > default."""
        override = (self.models.get(f"{bundle_name}.{option_name}")
                    or self.models.get(bundle_name))
        if override is not None:
            return override
        option = self.bundle_state(bundle_name).bundle.option_named(
            option_name)
        return model_for_spec(option.performance, default=default)


class ApplicationRegistry:
    """All currently registered application instances."""

    def __init__(self, namespace: Namespace | None = None):
        self.namespace = namespace or Namespace()
        self._instances: dict[str, AppInstance] = {}
        # A plain integer (not itertools.count) so the durability layer
        # can snapshot and restore the id sequence exactly.
        self._next_id = 1

    @property
    def next_instance_id(self) -> int:
        """The id the next registration will receive (snapshot state)."""
        return self._next_id

    @next_instance_id.setter
    def next_instance_id(self, value: int) -> None:
        self._next_id = int(value)

    def register(self, app_name: str, now: float,
                 resume_key: str | None = None) -> AppInstance:
        """Create an instance with a fresh system-chosen id.

        ``resume_key`` is a rejoining client's previous ``app.instance``
        name: when that instance is still registered under the same
        application name, it is returned as-is — re-registration after a
        reconnect dedupes instead of leaking a second instance.  A stale
        or mismatched resume key falls through to a fresh registration.
        """
        if resume_key is not None:
            existing = self._instances.get(resume_key)
            if existing is not None and existing.app_name == app_name \
                    and not existing.ended:
                return existing
        instance = AppInstance(app_name=app_name,
                               instance_id=self._next_id,
                               registered_at=now)
        self._next_id += 1
        self._instances[instance.key] = instance
        return instance

    def adopt(self, instance: AppInstance) -> None:
        """Re-admit a fully-built instance (snapshot restore path)."""
        if instance.key in self._instances:
            raise ControllerError(
                f"instance {instance.key!r} already registered")
        self._instances[instance.key] = instance
        self._next_id = max(self._next_id, instance.instance_id + 1)

    def add_bundle(self, instance: AppInstance, bundle: Bundle) -> BundleState:
        if bundle.bundle_name in instance.bundles:
            raise ControllerError(
                f"{instance.key}: bundle {bundle.bundle_name!r} already set up")
        state = BundleState(bundle=bundle)
        instance.bundles[bundle.bundle_name] = state
        return state

    def find(self, key: str) -> AppInstance | None:
        """Non-raising lookup (lease bookkeeping probes liberally)."""
        return self._instances.get(key)

    def remove(self, instance: AppInstance) -> None:
        """Drop an instance, releasing every allocation it still holds."""
        instance.ended = True
        for state in instance.bundles.values():
            if state.chosen is not None:
                state.chosen.allocation.release()
                state.chosen = None
        self._instances.pop(instance.key, None)
        if self.namespace.exists(instance.key):
            self.namespace.delete(instance.key)

    def instances(self) -> list[AppInstance]:
        """Active instances in registration order (the paper's greedy
        optimizer walks them in this order)."""
        return list(self._instances.values())

    def instance(self, key: str) -> AppInstance:
        if key not in self._instances:
            raise ControllerError(f"unknown application instance {key!r}")
        return self._instances[key]

    def __len__(self) -> int:
        return len(self._instances)

    # -- namespace publication -------------------------------------------------

    def publish_choice(self, instance: AppInstance, bundle_name: str,
                       memory_grants: Mapping[str, float] | None = None,
                       ) -> None:
        """Write the chosen configuration into the shared namespace.

        Produces the Section 3.2 layout, e.g. for instance 66 of DBclient
        choosing data shipping::

            DBclient.66.where.DS.client.memory = 32
            DBclient.66.where.DS.client.hostname = "c1"
            DBclient.66.where.option = "DS"
        """
        state = instance.bundle_state(bundle_name)
        chosen = state.chosen
        if chosen is None:
            return
        root = join_path(instance.key, bundle_name)
        # Clear any previous option subtree to avoid stale resources.
        if self.namespace.exists(root):
            self.namespace.delete(root)
        self.namespace.set(join_path(root, "option"), chosen.option_name)
        for name, value in chosen.variable_assignment.items():
            self.namespace.set(join_path(root, "variables", name), value)
        option_root = join_path(root, chosen.option_name)
        grants = memory_grants or {}
        for demand in chosen.demands.nodes:
            hostname = chosen.assignment.hostname_of(demand.local_name)
            # Bracketed replica names are one namespace component.
            node_root = join_path(option_root, demand.local_name)
            self.namespace.set(join_path(node_root, "hostname"), hostname)
            granted = grants.get(f"{demand.local_name}.memory",
                                 demand.memory_min_mb)
            self.namespace.set(join_path(node_root, "memory"), granted)
            if demand.seconds is not None:
                self.namespace.set(join_path(node_root, "seconds"),
                                   demand.seconds)
        for index, link in enumerate(chosen.demands.links):
            link_root = join_path(option_root, f"link{index}")
            self.namespace.set(join_path(link_root, "endpoints"),
                               f"{link.endpoint_a}-{link.endpoint_b}")
            self.namespace.set(join_path(link_root, "megabytes"),
                               link.total_mb)
