"""Alternative decision policies.

The paper's Figure 7 experiment did not yet use the full optimizer: "For our
initial experiments, the controller was configured with a simple rule for
changing configurations based on the number of active clients."
:class:`ClientCountRulePolicy` reproduces that rule; the benchmark harness
runs the database experiment under both it and the model-driven policy and
shows both produce the same query-shipping -> data-shipping switch.
"""

from __future__ import annotations

from dataclasses import dataclass

import math

from repro.allocation.instantiate import instantiate_option
from repro.controller.controller import (
    AdaptationController,
    DecisionPolicy,
)
from repro.controller.optimizer import Candidate, bundle_holder
from repro.controller.registry import AppInstance, BundleState
from repro.controller.trial import ViewTrial
from repro.errors import AllocationError
from repro.obs.trace import (
    REJECT_INFEASIBLE,
    REJECT_RULE_NOT_SELECTED,
    CandidateTrace,
)

__all__ = ["ClientCountRulePolicy"]


@dataclass
class ClientCountRulePolicy(DecisionPolicy):
    """Choose options by counting active instances of one application.

    Instances of ``app_name`` with a bundle named ``bundle_name`` are set to
    ``below_option`` while fewer than ``threshold`` of them are active, and
    to ``at_or_above_option`` once the count reaches the threshold.  For the
    paper's experiment: app ``DBclient``, bundle ``where``, threshold 3,
    ``QS`` below, ``DS`` at or above.

    ``reaction_seconds`` makes the rule fire only after its condition has
    held that long, reproducing the paper's "the addition of the third
    client also *eventually* triggers the Harmony system to send a
    re-configuration event": the transient spike of three query-shipping
    clients is visible before the switch.  Set to 0 for instant switching.
    """

    app_name: str
    bundle_name: str
    threshold: int
    below_option: str
    at_or_above_option: str
    reaction_seconds: float = 0.0
    _condition_since: float | None = None

    def _count_active(self, controller: AdaptationController) -> int:
        return sum(1 for instance in controller.registry.instances()
                   if instance.app_name == self.app_name
                   and self.bundle_name in instance.bundles)

    def _target_option(self, controller: AdaptationController) -> str:
        if self._count_active(controller) >= self.threshold:
            if self._condition_since is None:
                self._condition_since = controller.now
            if controller.now - self._condition_since \
                    >= self.reaction_seconds:
                return self.at_or_above_option
            return self.below_option
        self._condition_since = None
        return self.below_option

    def configure_new_bundle(self, controller: AdaptationController,
                             instance: AppInstance,
                             state: BundleState) -> None:
        if instance.app_name == self.app_name and \
                state.bundle.bundle_name == self.bundle_name:
            target = self._target_option(controller)
        else:
            target = state.bundle.options[0].name
        self._set(controller, instance, state, target, reason="initial",
                  required=True)

    def reevaluate(self, controller: AdaptationController) -> int:
        changes = 0
        target = self._target_option(controller)
        for instance in controller.registry.instances():
            if instance.app_name != self.app_name:
                continue
            state = instance.bundles.get(self.bundle_name)
            if state is None or state.chosen is None:
                continue
            if state.chosen.option_name == target:
                continue
            if not state.granularity_allows_switch(controller.now):
                continue
            self._set(controller, instance, state, target,
                      reason=f"rule: {self._describe_rule()}")
            changes += 1
        return changes

    def _describe_rule(self) -> str:
        return (f"#active({self.app_name}) >= {self.threshold} -> "
                f"{self.at_or_above_option}")

    def _evaluate_option(self, controller: AdaptationController,
                         instance: AppInstance, state: BundleState,
                         option_name: str) -> Candidate:
        """Instantiate, match, and score one option on the live view.

        Raises :class:`AllocationError` when the option has no feasible
        placement.  Scoring is by trial-and-rollback: the placement is
        applied in place and undone before returning.
        """
        option = state.bundle.option_named(option_name)
        assignment_vars = {spec.name: spec.default_value()
                           for spec in option.variables}
        demands = instantiate_option(option, assignment_vars)
        # A reconfiguring application may re-use the resources it
        # currently holds, so its own reservations are ignored.
        assignment = controller.matcher.match(
            demands,
            ignore_holders={bundle_holder(instance, state)})
        candidate = Candidate(
            option_name=option_name,
            variable_assignment=assignment_vars,
            memory_grants={},
            demands=demands,
            assignment=assignment)
        with ViewTrial(controller.view) as trial:
            trial.place(instance.key, demands, assignment)
            predictions = controller.predict_all(controller.view)
        candidate.predicted_seconds = predictions.get(
            instance.key, float("inf"))
        candidate.objective_value = controller.objective.evaluate(predictions)
        return candidate

    def _set(self, controller: AdaptationController, instance: AppInstance,
             state: BundleState, option_name: str, reason: str,
             required: bool = False) -> None:
        try:
            candidate = self._evaluate_option(controller, instance, state,
                                              option_name)
        except AllocationError:
            if required:
                raise  # an initial configuration must exist
            return  # re-evaluation: keep the current configuration
        objective_before = controller.current_objective()
        controller.apply_candidate(
            instance, state, candidate, reason=reason,
            objective_before=objective_before,
            trace_candidates=self._trace_alternatives(
                controller, instance, state, candidate, objective_before))

    def _trace_alternatives(self, controller: AdaptationController,
                            instance: AppInstance, state: BundleState,
                            chosen: Candidate, objective_before: float,
                            ) -> list[CandidateTrace]:
        """Score every option of the bundle, purely for the decision trace.

        The rule picks its target without comparing objectives, so the
        alternatives are evaluated here — the trace must still explain
        what the rule's choice cost relative to the other options (the
        "why QS beat DS" record for Figure 7).
        """
        records: list[CandidateTrace] = []
        for option in state.bundle.options:
            if option.name == chosen.option_name:
                records.append(CandidateTrace(
                    option_name=chosen.option_name,
                    variable_assignment=dict(chosen.variable_assignment),
                    placements=dict(chosen.assignment.placements),
                    predicted_seconds=chosen.predicted_seconds,
                    objective_value=chosen.objective_value,
                    objective_delta=chosen.objective_value
                    - objective_before,
                    friction_cost_seconds=controller.friction_cost(
                        state, chosen.option_name),
                    chosen=True,
                    rejection_reason=None))
                continue
            try:
                alternative = self._evaluate_option(controller, instance,
                                                    state, option.name)
            except AllocationError:
                records.append(CandidateTrace(
                    option_name=option.name,
                    variable_assignment={},
                    placements={},
                    predicted_seconds=math.inf,
                    objective_value=math.inf,
                    objective_delta=math.inf,
                    friction_cost_seconds=controller.friction_cost(
                        state, option.name),
                    chosen=False,
                    rejection_reason=REJECT_INFEASIBLE,
                    detail="no feasible placement"))
                continue
            records.append(CandidateTrace(
                option_name=option.name,
                variable_assignment=dict(alternative.variable_assignment),
                placements=dict(alternative.assignment.placements),
                predicted_seconds=alternative.predicted_seconds,
                objective_value=alternative.objective_value,
                objective_delta=alternative.objective_value
                - objective_before,
                friction_cost_seconds=controller.friction_cost(
                    state, option.name),
                chosen=False,
                rejection_reason=REJECT_RULE_NOT_SELECTED,
                detail=f"rule selected {chosen.option_name!r} "
                       f"({self._describe_rule()})"))
        return records
