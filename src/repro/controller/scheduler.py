"""Coalescing reevaluation scheduler: batch the controller's sweeps.

The paper's centralized controller recomputes the global configuration on
every application event — register, bundle setup, end, metric change.
Serially that is fine; under a burst of N concurrent admissions it costs
N full greedy sweeps, each O(apps) model evaluations, all serialized
behind one lock.  Tuning systems only scale when evaluation work is
batched and decoupled from request handling (BestConfig; the multi-agent
distributed-tuning line of work), so this module decouples the two:

* Admission handlers **request** a reevaluation
  (:meth:`CoalescingScheduler.request`) instead of running one inline.
  The new bundle still gets its initial configuration synchronously —
  the client's ``bundle_ok`` answer never waits on a batch.
* Requests landing within ``coalesce_window`` seconds of each other
  merge into one pending batch; a batch runs once the window has been
  quiet, or unconditionally ``max_delay`` seconds after its *first*
  request — no application waits forever behind a chatty burst.
* Each completed batch advances an explicit **generation number**.  The
  generation orders reconfiguration pushes (the API server drops a
  staged batch older than what a client already received, rather than
  applying updates out of order), keys the one-per-batch WAL record
  (``reevaluation_batch``), and is what callers wait on
  (:meth:`wait_for_generation`) to know their request was covered.

Telemetry: every batch bumps ``controller.coalesced_batches`` and
reports ``controller.batch_size`` (requests merged into the batch), and
runs inside a ``scheduler.batch`` span.

Deterministic tests drive the scheduler synchronously with an injected
``clock`` and :meth:`run_pending` / :meth:`flush`; servers call
:meth:`start` for the threaded loop, passing the lock their optimizer
state is guarded by (batches then serialize against admissions exactly
like any other controller mutation — but heartbeats, status queries, and
metric reports do not).
"""

from __future__ import annotations

import threading
import time
from contextlib import nullcontext
from typing import TYPE_CHECKING, Callable, ContextManager

from repro.metrics.histogram import COUNT_BOUNDS
from repro.obs.flightrec import EVENT_BATCH
from repro.obs.trace import TraceContext

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.controller.controller import AdaptationController

__all__ = ["CoalescingScheduler"]

#: How many request reasons one WAL batch record lists verbatim; the
#: remainder is summarized as a count so a metric storm cannot bloat the
#: durability log.
MAX_JOURNALED_REASONS = 32

#: How many coalesced trace contexts one batch span links back to; a
#: metric storm must not grow the span's link list without bound.
MAX_BATCH_TRACE_LINKS = 32


class CoalescingScheduler:
    """Debounce reevaluation triggers into batched sweeps.

    ``coalesce_window`` — quiescence window: a batch runs once no new
    request has arrived for this long.
    ``max_delay`` — staleness bound: a batch runs at the latest this long
    after its first pending request, even under continuous new requests.
    ``clock`` — injectable time source (defaults to ``time.monotonic``).
    ``lock`` — context manager held while a batch runs; a server passes
    its controller lock so batches serialize with admissions.

    Constructing the scheduler attaches it to the controller
    (``controller.scheduler``), which re-routes the controller's inline
    reevaluation triggers through :meth:`request`.
    """

    def __init__(self, controller: "AdaptationController",
                 coalesce_window: float = 0.05,
                 max_delay: float = 0.5,
                 clock: Callable[[], float] | None = None,
                 lock: ContextManager | None = None):
        if coalesce_window < 0 or max_delay < coalesce_window:
            raise ValueError(
                "need 0 <= coalesce_window <= max_delay")
        self.controller = controller
        self.coalesce_window = coalesce_window
        self.max_delay = max_delay
        self.clock: Callable[[], float] = clock or time.monotonic
        self.reevaluation_lock: ContextManager = \
            lock if lock is not None else nullcontext()
        #: Completed-batch count; request N is covered once
        #: ``generation`` reaches the value :meth:`request` returned.
        self.generation = 0
        self.batches_run = 0
        self.requests_coalesced = 0
        self.last_batch_changes = 0
        self._pending: list[str] = []
        #: Trace contexts of the coalesced triggers (bounded): the batch
        #: span links back to every request it covered.
        self._pending_ctxs: list[TraceContext] = []
        metrics = controller.metrics
        # Always-on health distributions: how long batches take, and how
        # deep the backlog was when each trigger arrived.
        self._batch_hist = metrics.histogram("scheduler.batch_seconds")
        self._backlog_hist = metrics.histogram("scheduler.batch_backlog",
                                               bounds=COUNT_BOUNDS)
        #: Generation of the last batch *popped* for execution (it may
        #: still be running); requests arriving mid-batch are covered by
        #: the batch after it, not the one in flight.
        self._dispatched = 0
        self._first_request_at: float | None = None
        self._last_request_at: float | None = None
        self._cond = threading.Condition()
        self._thread: threading.Thread | None = None
        self._stopping = False
        controller.scheduler = self

    # -- requesting -----------------------------------------------------------

    def request(self, reason: str,
                trace_ctx: TraceContext | None = None) -> int:
        """Note one reevaluation trigger; returns the covering generation.

        The returned generation is the batch that will include this
        request — pass it to :meth:`wait_for_generation` to block until
        the sweep has actually run.  ``trace_ctx`` (optional) links the
        batch span back to the request that triggered it.
        """
        with self._cond:
            now = self.clock()
            if not self._pending:
                self._first_request_at = now
            self._pending.append(reason)
            if trace_ctx is not None \
                    and len(self._pending_ctxs) < MAX_BATCH_TRACE_LINKS:
                self._pending_ctxs.append(trace_ctx)
            backlog = len(self._pending)
            self._last_request_at = now
            covering = self._dispatched + 1
            self._cond.notify_all()
        self._backlog_hist.observe(float(backlog))
        return covering

    @property
    def pending_requests(self) -> int:
        with self._cond:
            return len(self._pending)

    def due_at(self) -> float | None:
        """When the pending batch becomes runnable (None if none pending)."""
        with self._cond:
            return self._due_at_locked()

    def _due_at_locked(self) -> float | None:
        if not self._pending:
            return None
        assert self._first_request_at is not None
        assert self._last_request_at is not None
        return min(self._last_request_at + self.coalesce_window,
                   self._first_request_at + self.max_delay)

    # -- running --------------------------------------------------------------

    def run_pending(self, now: float | None = None,
                    force: bool = False) -> bool:
        """Run the pending batch if it is due (or ``force``); returns
        whether a batch ran.  This is the synchronous drive used by
        deterministic tests and simulated deployments; the threaded loop
        calls it too."""
        with self._cond:
            if not self._pending:
                return False
            if not force:
                due = self._due_at_locked()
                if now is None:
                    now = self.clock()
                if due is None or now < due:
                    return False
            reasons = self._pending
            ctxs = self._pending_ctxs
            self._pending = []
            self._pending_ctxs = []
            self._first_request_at = None
            self._last_request_at = None
            generation = self._dispatched + 1
            self._dispatched = generation
        self._run_batch(generation, reasons, ctxs)
        return True

    def flush(self) -> bool:
        """Force the pending batch (if any) to run now; returns whether
        one ran."""
        return self.run_pending(force=True)

    def _run_batch(self, generation: int, reasons: list[str],
                   ctxs: list[TraceContext] | None = None) -> None:
        controller = self.controller
        started = time.perf_counter()
        with self.reevaluation_lock:
            pruned_before = controller.stats.pruned_candidates
            with controller.tracer.span("scheduler.batch",
                                        generation=generation,
                                        size=len(reasons)) as span:
                if ctxs and controller.tracer.enabled:
                    # One batch covers many coalesced requests: adopt the
                    # first linked trace as this span's trace and record
                    # every parent as an explicit link.
                    span.trace_id = ctxs[0].trace_id
                    if span.parent_id is None:
                        span.parent_id = ctxs[0].span_id
                    span.set("links", [f"{ctx.trace_id}:{ctx.span_id}"
                                       for ctx in ctxs])
                changes = controller.reevaluate()
                span.set("changes", changes)
                index = controller.partition_index
                partitions = index.partition_count if index is not None \
                    else 0
                pruned = controller.stats.pruned_candidates - pruned_before
                span.set("partitions", partitions)
                span.set("pruned_candidates", pruned)
            controller.metrics.increment("controller.coalesced_batches",
                                         controller.now)
            controller.metrics.report("controller.batch_size",
                                      controller.now, float(len(reasons)))
            if controller.journal is not None:
                controller.journal.record_reevaluation_batch(
                    generation, reasons, changes,
                    partitions=partitions, pruned_candidates=pruned)
        elapsed = time.perf_counter() - started
        self._batch_hist.observe(elapsed)
        controller.flight_recorder.record(
            EVENT_BATCH, generation=generation, size=len(reasons),
            changes=changes, seconds=round(elapsed, 6))
        with self._cond:
            self.generation = generation
            self.batches_run += 1
            self.requests_coalesced += len(reasons)
            self.last_batch_changes = changes
            self._cond.notify_all()

    def wait_for_generation(self, generation: int,
                            timeout: float | None = None) -> bool:
        """Block until ``self.generation >= generation`` (threaded mode).

        Returns False on timeout.  Only useful while the background
        thread runs (or another thread drives :meth:`run_pending`).

        The deadline runs on the injected ``self.clock`` — a simulated
        clock drives the timeout deterministically.  The condition wait
        itself still slices real time: an injected clock cannot wake a
        sleeping thread, so the loop polls in short real-time slices
        and re-reads the injected clock on each pass.
        """
        deadline = None if timeout is None else self.clock() + timeout
        with self._cond:
            while self.generation < generation:
                remaining = None if deadline is None \
                    else deadline - self.clock()
                if remaining is not None and remaining <= 0:
                    return False
                if remaining is None:
                    self._cond.wait(None)
                else:
                    self._cond.wait(min(remaining, 0.05))
        return True

    # -- the background loop --------------------------------------------------

    def start(self) -> None:
        """Run batches on a daemon thread as they become due."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stopping = False
        self._thread = threading.Thread(
            target=self._loop, name="harmony-coalescing-scheduler",
            daemon=True)
        self._thread.start()

    def stop(self, flush: bool = True) -> None:
        """Stop the thread (joined); ``flush`` drains any pending batch."""
        thread = self._thread
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
        if thread is not None and thread.is_alive() \
                and thread is not threading.current_thread():
            thread.join(timeout=5.0)
        self._thread = None
        if flush:
            self.run_pending(force=True)

    def _loop(self) -> None:
        while True:
            with self._cond:
                while not self._stopping and not self._pending:
                    self._cond.wait()
                if self._stopping:
                    return
                due = self._due_at_locked()
                now = self.clock()
                if due is not None and now < due:
                    # New requests re-notify; waking early just re-checks.
                    self._cond.wait(due - now)
                    continue
            self.run_pending()
