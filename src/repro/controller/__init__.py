"""The Harmony adaptation controller: objectives, optimizers, policies."""

from repro.controller.controller import (
    AdaptationController,
    DecisionPolicy,
    DecisionRecord,
    ModelDrivenPolicy,
    ReconfigurationEvent,
    SessionLifecycleEvent,
)
from repro.controller.events import PerformanceEvent, PerformanceEventMonitor
from repro.controller.federation import (
    ControllerShard,
    Federation,
    RootArbiter,
    ShardMap,
    shard_hash,
)
from repro.controller.friction import FrictionPolicy, SwitchDecision
from repro.controller.objective import (
    MaxResponseTime,
    MeanResponseTime,
    Objective,
    ThroughputObjective,
    WeightedMeanResponseTime,
)
from repro.controller.optimizer import (
    Candidate,
    ConfigurationCache,
    ExhaustiveOptimizer,
    GreedyOptimizer,
    OptimizationContext,
    enumerate_candidates,
)
from repro.controller.parallel import ParallelSweepExecutor
from repro.controller.partition import GainPriorityQueue, PartitionIndex
from repro.controller.policies import ClientCountRulePolicy
from repro.controller.scheduler import CoalescingScheduler
from repro.controller.trial import OptimizerStats, TrialEngine, ViewTrial
from repro.controller.registry import (
    AppInstance,
    ApplicationRegistry,
    BundleState,
    ChosenConfiguration,
)

__all__ = [
    "AdaptationController", "DecisionPolicy", "ModelDrivenPolicy",
    "ClientCountRulePolicy", "DecisionRecord", "ReconfigurationEvent",
    "SessionLifecycleEvent", "CoalescingScheduler",
    "Objective", "MeanResponseTime", "MaxResponseTime",
    "ThroughputObjective", "WeightedMeanResponseTime",
    "GreedyOptimizer", "ExhaustiveOptimizer", "Candidate",
    "OptimizationContext", "ConfigurationCache", "enumerate_candidates",
    "OptimizerStats", "TrialEngine", "ViewTrial",
    "PartitionIndex", "GainPriorityQueue", "ParallelSweepExecutor",
    "Federation", "ControllerShard", "RootArbiter", "ShardMap",
    "shard_hash",
    "FrictionPolicy", "SwitchDecision",
    "PerformanceEventMonitor", "PerformanceEvent",
    "ApplicationRegistry", "AppInstance", "BundleState",
    "ChosenConfiguration",
]
