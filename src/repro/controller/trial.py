"""Transactional candidate trials and delta prediction.

The optimizer's inner loop scores hundreds of candidate configurations per
decision.  The original implementation paid for each score twice over: a
full ``SystemView.copy()`` to build the trial state, then a from-scratch
``predict_all`` over *every* placed application.  Both costs grow linearly
with system size, making each candidate O(apps) and the whole greedy pass
roughly O(apps**2) per new application.

This module removes both:

* :class:`ViewTrial` — a mutate-and-rollback context.  Trial placements
  are applied to the *live* view; every mutation returns a
  :class:`~repro.prediction.contention.PlacementToken` which the trial
  replays in reverse on exit.  No copies, and the tokens double as an
  exact description of what changed.

* :class:`TrialEngine` — delta prediction.  The engine caches the
  predictions of the live view (keyed by ``SystemView.version``) and, for
  a trial, recomputes only the *dirty set*: the mutated applications, the
  applications whose placements share a node or link with the mutation
  (``SystemView.apps_affected_by`` over the tokens' footprints), and any
  application whose performance model the engine cannot see through
  (custom callables, critical-path models).  Everything else reuses its
  cached value — which the dirty-set contract guarantees is identical to
  what a full recompute would produce.

:class:`OptimizerStats` counts the work actually done so benchmarks can
report candidates evaluated, per-app predictions recomputed, and full-view
recomputes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.allocation.instantiate import ConcreteDemands
from repro.allocation.matcher import Assignment
from repro.prediction.contention import PlacementToken, SystemView

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.controller.controller import AdaptationController

__all__ = ["OptimizerStats", "ViewTrial", "TrialEngine"]


@dataclass
class OptimizerStats:
    """Counters for optimizer work, surfaced by benchmarks and telemetry."""

    candidates_evaluated: int = 0
    predictions_recomputed: int = 0
    full_view_recomputes: int = 0
    match_calls: int = 0
    #: Partitioned-sweep accounting (zero on the serial path).
    partition_sweeps: int = 0
    pruned_bundles: int = 0
    pruned_candidates: int = 0
    parallel_sweeps: int = 0

    def snapshot(self) -> dict[str, int]:
        return {"candidates_evaluated": self.candidates_evaluated,
                "predictions_recomputed": self.predictions_recomputed,
                "full_view_recomputes": self.full_view_recomputes,
                "match_calls": self.match_calls,
                "partition_sweeps": self.partition_sweeps,
                "pruned_bundles": self.pruned_bundles,
                "pruned_candidates": self.pruned_candidates,
                "parallel_sweeps": self.parallel_sweeps}


class ViewTrial:
    """Mutate the live view inside ``with``, roll back on exit.

    All mutations must go through :meth:`place`/:meth:`remove` so their
    undo tokens are recorded.  Trials nest: an inner trial's rollback
    restores the state the outer trial established.  ``tokens`` (in
    application order) describe the net mutation and feed
    :meth:`TrialEngine.trial_predictions`.
    """

    def __init__(self, view: SystemView):
        self.view = view
        self.tokens: list[PlacementToken] = []

    def __enter__(self) -> "ViewTrial":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.rollback()

    def place(self, app_key: str, demands: ConcreteDemands,
              assignment: Assignment) -> PlacementToken:
        token = self.view.place(app_key, demands, assignment)
        self.tokens.append(token)
        return token

    def remove(self, app_key: str) -> PlacementToken:
        token = self.view.remove(app_key)
        self.tokens.append(token)
        return token

    def rollback(self) -> None:
        while self.tokens:
            self.view.restore(self.tokens.pop())


class TrialEngine:
    """Delta prediction over one controller's live view.

    The cache maps the live view's ``version`` to its prediction
    dictionary.  Two operations consume it:

    * :meth:`trial_predictions` — score a trial already applied to the
      view, recomputing only the dirty set implied by its tokens;
    * :meth:`commit` — after the controller applies a candidate for real,
      advance the cached predictions by the same delta rule instead of
      rebuilding.

    Any mutation the engine did not see (external-load updates, app
    removal, topology reindex) leaves the cached version behind; the next
    :meth:`live_predictions` notices the mismatch and rebuilds in full.
    """

    def __init__(self, controller: "AdaptationController"):
        self.controller = controller
        self._predictions: dict[str, float] | None = None
        self._version: int | None = None
        #: Apps whose models may read state outside their footprint —
        #: always recomputed, never trusted from cache.
        self._opaque: set[str] = set()

    # -- cache lifecycle ---------------------------------------------------

    def invalidate(self) -> None:
        self._predictions = None
        self._version = None

    def live_predictions(self) -> dict[str, float]:
        """Predictions for the live view, rebuilt only when stale."""
        view = self.controller.view
        if self._predictions is None or self._version != view.version:
            self._rebuild()
        assert self._predictions is not None
        return self._predictions

    def _rebuild(self) -> None:
        controller = self.controller
        view = controller.view
        controller.stats.full_view_recomputes += 1
        with controller.tracer.span("prediction.rebuild") as span:
            predictions: dict[str, float] = {}
            opaque: set[str] = set()
            for placed in view.configurations():
                value = controller.predict_app(view, placed)
                if value is not None:
                    predictions[placed.app_key] = value
                if not controller.model_is_footprint_safe(placed):
                    opaque.add(placed.app_key)
            span.set("apps", len(predictions))
        self._predictions = predictions
        self._opaque = opaque
        self._version = view.version

    # -- trials ------------------------------------------------------------

    def dirty_set(self, tokens: Iterable[PlacementToken]) -> set[str]:
        """App keys whose predictions may differ after these mutations.

        The union of: the mutated apps themselves, every app whose
        placement reads a node or link written by a removed or added
        footprint, and every opaque-model app.
        """
        view = self.controller.view
        dirty = set(self._opaque)
        for token in tokens:
            dirty.add(token.app_key)
            for footprint in (token.removed_footprint,
                              token.added_footprint):
                if footprint is not None:
                    dirty |= view.apps_affected_by(footprint)
        return dirty

    def trial_predictions(self, base: Mapping[str, float],
                          tokens: Iterable[PlacementToken],
                          ) -> dict[str, float]:
        """Predictions for the view as currently mutated by ``tokens``.

        ``base`` must be the prediction dictionary of the view state the
        tokens were applied to (the live cache, or a previous trial's
        result when trials nest).  Clean apps reuse their ``base`` value;
        the result preserves the view's configuration iteration order, so
        objective evaluation sums in the same order as a full recompute.
        """
        controller = self.controller
        view = controller.view
        with controller.tracer.span("prediction.trial") as span:
            dirty = self.dirty_set(tokens)
            predictions: dict[str, float] = {}
            for placed in view.configurations():
                app_key = placed.app_key
                if app_key not in dirty and app_key in base:
                    predictions[app_key] = base[app_key]
                    continue
                value = controller.predict_app(view, placed)
                if value is not None:
                    predictions[app_key] = value
            span.set("dirty", len(dirty))
        return predictions

    # -- commits -----------------------------------------------------------

    def commit(self, tokens: list[PlacementToken]) -> None:
        """Advance the cache over mutations applied to the live view.

        Valid only when ``tokens`` account for every version bump since
        the cache was built; otherwise the cache is dropped and the next
        read rebuilds.
        """
        view = self.controller.view
        if self._predictions is None or self._version is None or \
                view.version != self._version + len(tokens):
            self.invalidate()
            return
        self._predictions = self.trial_predictions(self._predictions,
                                                   tokens)
        for token in tokens:
            self._opaque.discard(token.app_key)
            placed = view.configuration_of(token.app_key)
            if placed is not None and \
                    not self.controller.model_is_footprint_safe(placed):
                self._opaque.add(token.app_key)
        self._version = view.version
