"""Performance-event-driven adaptation (paper Section 5).

"The Harmony process is an event driven system that waits for application
and performance events.  When an event happens, it triggers the automatic
application adaptation system, and each of the option bundles for each
application gets re-evaluated."

*Application events* (registration, bundle setup, termination) already
trigger re-evaluation synchronously inside the controller.  This module
adds the *performance* half: :class:`PerformanceEventMonitor` subscribes to
application-reported response times through the metric interface, compares
them with the controller's own predictions, and fires a re-evaluation as
soon as an application is persistently slower than promised — without
waiting for the periodic timer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.controller.controller import (
    AdaptationController,
    SessionLifecycleEvent,
)
from repro.errors import ControllerError
from repro.metrics.history import Observation

__all__ = ["PerformanceEvent", "PerformanceEventMonitor",
           "SessionLifecycleEvent"]


@dataclass(frozen=True)
class PerformanceEvent:
    """One detected deviation between promise and observation."""

    time: float
    app_key: str
    bundle_name: str
    predicted_seconds: float
    observed_seconds: float
    changes_applied: int

    @property
    def slowdown(self) -> float:
        if self.predicted_seconds <= 0:
            return float("inf")
        return self.observed_seconds / self.predicted_seconds


@dataclass
class PerformanceEventMonitor:
    """Watches ``app.<key>.response_time`` metrics for sustained slowdown.

    A re-evaluation fires when ``consecutive_violations`` successive
    reports exceed ``tolerance`` times the prediction the controller made
    when it chose the configuration.  ``cooldown_seconds`` bounds how often
    one application can trigger (the periodic loop still provides the
    baseline cadence).
    """

    controller: AdaptationController
    tolerance: float = 1.5
    consecutive_violations: int = 3
    cooldown_seconds: float = 30.0
    events: list[PerformanceEvent] = field(default_factory=list)
    _violation_counts: dict[str, int] = field(default_factory=dict)
    _last_trigger: dict[str, float] = field(default_factory=dict)
    _unsubscribe = None

    def start(self) -> "PerformanceEventMonitor":
        """Subscribe to application metrics; returns self for chaining."""
        if self._unsubscribe is not None:
            return self
        self._unsubscribe = self.controller.metrics.subscribe(
            "app", self._on_metric)
        return self

    def stop(self) -> None:
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None

    # -- internals ---------------------------------------------------------

    def _on_metric(self, name: str, observation: Observation) -> None:
        parts = name.split(".")
        # app.<app>.<instance>.response_time
        if len(parts) != 4 or parts[3] != "response_time":
            return
        app_key = f"{parts[1]}.{parts[2]}"
        prediction = self._current_prediction(app_key)
        if prediction is None:
            return
        bundle_name, predicted = prediction
        if predicted <= 0:
            return

        if observation.value > predicted * self.tolerance:
            count = self._violation_counts.get(app_key, 0) + 1
            self._violation_counts[app_key] = count
            if count >= self.consecutive_violations:
                self._maybe_trigger(app_key, bundle_name, predicted,
                                    observation)
        else:
            self._violation_counts[app_key] = 0

    def _current_prediction(self, app_key: str,
                            ) -> tuple[str, float] | None:
        try:
            instance = self.controller.registry.instance(app_key)
        except ControllerError:
            # Unknown key: the app ended/was evicted between the metric
            # arriving and this lookup.  Never a blanket except — an
            # AttributeError here is a bug, not a missing registration.
            return None
        for bundle_name, state in instance.bundles.items():
            if state.chosen is not None:
                return bundle_name, state.chosen.predicted_seconds
        return None

    def _maybe_trigger(self, app_key: str, bundle_name: str,
                       predicted: float, observation: Observation) -> None:
        now = self.controller.now
        last = self._last_trigger.get(app_key)
        if last is not None and now - last < self.cooldown_seconds:
            return
        self._last_trigger[app_key] = now
        self._violation_counts[app_key] = 0
        changes = self.controller.reevaluate()
        self.events.append(PerformanceEvent(
            time=now, app_key=app_key, bundle_name=bundle_name,
            predicted_seconds=predicted,
            observed_seconds=observation.value,
            changes_applied=changes))
        self.controller.metrics.report(
            "controller.performance_events", now, float(len(self.events)))
