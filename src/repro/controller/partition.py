"""Partitioned optimization: connected components over resource reach.

The greedy sweep (paper Section 4.3) re-scores every bundle on every
trigger, which is O(apps**2) model work per admission burst — the
BENCH_scale numbers show the wall superlinear in system size.  But most
bundles cannot interact at all: a bundle constrained to the hosts of one
pod shares no node, no link, and no memory pool with a bundle constrained
to another pod, so neither's reconfiguration can change anything the
other's evaluation reads.  This module makes that independence explicit:

* :class:`PartitionIndex` — decomposes the system into connected
  components over each bundle's **reach**: every host its hostname
  patterns could ever match, plus every link on a path between reach
  hosts (when the bundle declares links or communication).  Reach is a
  *potential* footprint — it covers every candidate the matcher could
  produce, every memory reservation, every contention read the
  prediction model performs, and the load-ordering inputs, so two
  bundles in different components are provably independent.  Components
  are maintained incrementally as bundles register, reconfigure, and
  end; a new bundle whose reach spans two components merges them.

* **Partition epochs** — each component carries an epoch counter bumped
  by any event that can change a member's evaluation (membership
  change, applied reconfiguration, external-load change on a reach
  host/link, node failure or restoration).  A bundle whose last
  evaluation found nothing to change records a *watermark* (component,
  epoch); while the watermark holds, re-evaluating it is provably a
  no-op — the explicit no-improvement bound that lets sweeps skip it.
  Watermarks are only recorded for outcomes that stay no-ops under
  other partitions' improvements (see
  ``ModelDrivenPolicy._reevaluate_bundle_outcome``) and only honoured
  when pruning is provably safe (:meth:`PartitionIndex.prunable`:
  an additively decomposable objective and no opaque models).

* :class:`GainPriorityQueue` — orders dirty bundles by their last
  observed achievable objective gain.  With ``top_k`` set, only the
  ``top_k`` most promising bundles are evaluated per sweep and the rest
  stay dirty for later sweeps — an explicitly approximate mode (off by
  default; every equivalence guarantee assumes ``top_k=None``).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterable

from repro.allocation.matcher import _hostname_matches
from repro.controller.optimizer import DEFAULT_MEMORY_PROBE_LIMIT
from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.controller.controller import AdaptationController
    from repro.controller.registry import AppInstance, BundleState

__all__ = ["PartitionIndex", "Partition", "GainPriorityQueue",
           "bundle_key"]

#: How many bundle removals accumulate before the index rebuilds its
#: components from scratch.  Removal never *splits* a component lazily
#: (over-broad components are always safe, just prune less), so a rebuild
#: only recovers pruning opportunity — it is never needed for
#: correctness.
REBUILD_AFTER_REMOVALS = 16

BundleKey = tuple[str, str]  # (app_key, bundle_name)
ResourceKey = tuple  # ("h", hostname) | ("l", frozenset({a, b}))


def bundle_key(instance: "AppInstance", state: "BundleState") -> BundleKey:
    return (instance.key, state.bundle.bundle_name)


class Partition:
    """One connected component of bundles sharing potential resources."""

    __slots__ = ("pid", "epoch", "members", "resources")

    def __init__(self, pid: int):
        self.pid = pid
        #: Bumped by every event that can change a member's evaluation.
        self.epoch = 0
        self.members: set[BundleKey] = set()
        self.resources: set[ResourceKey] = set()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Partition(pid={self.pid}, epoch={self.epoch}, "
                f"members={len(self.members)}, "
                f"resources={len(self.resources)})")


class PartitionIndex:
    """Connected components over bundle reach, with dirtiness epochs."""

    def __init__(self, controller: "AdaptationController"):
        self.controller = controller
        self._parts: dict[int, Partition] = {}
        self._owner: dict[ResourceKey, int] = {}
        self._member_pid: dict[BundleKey, int] = {}
        #: (pid, epoch) recorded when a bundle's evaluation was a proven
        #: no-op; valid while it still equals the live (pid, epoch).
        self._clean_at: dict[BundleKey, tuple[int, int]] = {}
        #: Reach memo: id(bundle) -> (bundle, topology_version, reach).
        #: The bundle object is stored to pin its id (same idiom as
        #: ConfigurationCache).
        self._reach: dict[int, tuple[object, int, frozenset]] = {}
        #: (pattern, topology_version) -> frozenset of matching hostnames.
        self._pattern_hosts: dict[tuple[str, int], frozenset[str]] = {}
        #: frozenset(hosts) -> frozenset of link resource keys (memoized
        #: per topology version via _edges_version).
        self._edge_sets: dict[frozenset, frozenset] = {}
        self._edges_version = -1
        #: Apps whose models may read state outside their reach: while
        #: any exists, every partition couples with every other and
        #: pruning is disabled.
        self._opaque: set[str] = set()
        self._models_rescan = False
        self._topology_version = getattr(controller.cluster,
                                         "topology_version", 0)
        self._next_pid = 1
        self._removals = 0
        self.merges = 0
        self.rebuilds = 0

    # -- queries -------------------------------------------------------------

    @property
    def partition_count(self) -> int:
        return len(self._parts)

    def partitions(self) -> list[Partition]:
        return list(self._parts.values())

    def partition_of(self, key: BundleKey) -> Partition | None:
        pid = self._member_pid.get(key)
        return None if pid is None else self._parts[pid]

    def is_clean(self, key: BundleKey) -> bool:
        """Whether re-evaluating this bundle is provably a no-op."""
        pid = self._member_pid.get(key)
        if pid is None:
            return False
        return self._clean_at.get(key) == (pid, self._parts[pid].epoch)

    def mark_clean(self, key: BundleKey) -> None:
        pid = self._member_pid.get(key)
        if pid is not None:
            self._clean_at[key] = (pid, self._parts[pid].epoch)

    def prunable(self, objective: object) -> bool:
        """Whether clean-skip pruning is provably serial-equivalent.

        Requires an additively decomposable objective (a clean bundle's
        candidate ranking and gain are then invariant under other
        partitions' changes) and no opaque models (an opaque model may
        read any partition's state, coupling everything).
        """
        return not self._opaque and \
            bool(getattr(objective, "decomposable", False))

    def candidate_count(self, state: "BundleState") -> int:
        """Cached configuration-space size, for pruned-candidate counts."""
        cache = self.controller._config_cache
        if cache is None:
            return 0
        return cache.peek_space_len(state.bundle,
                                    DEFAULT_MEMORY_PROBE_LIMIT)

    # -- membership maintenance ----------------------------------------------

    def add_bundle(self, instance: "AppInstance",
                   state: "BundleState") -> int:
        """Index a registered bundle; returns its partition id.

        Components whose resources the bundle's reach touches are merged
        (this is how two partitions merge mid-run when a new bundle
        spans both); the touched component's epoch is bumped so every
        member is re-evaluated against the newcomer.
        """
        key = bundle_key(instance, state)
        existing = self._member_pid.get(key)
        if existing is not None:
            return existing
        reach = self._reach_of(state)
        pids = sorted({self._owner[r] for r in reach if r in self._owner})
        if not pids:
            part = Partition(self._next_pid)
            self._next_pid += 1
            self._parts[part.pid] = part
        else:
            part = self._parts[pids[0]]
            for other_pid in pids[1:]:
                self._absorb(part, self._parts[other_pid])
                self.merges += 1
        part.members.add(key)
        part.resources |= reach
        for resource in reach:
            self._owner[resource] = part.pid
        self._member_pid[key] = part.pid
        part.epoch += 1
        return part.pid

    def _absorb(self, part: Partition, other: Partition) -> None:
        for key in other.members:
            self._member_pid[key] = part.pid
        for resource in other.resources:
            self._owner[resource] = part.pid
        part.members |= other.members
        part.resources |= other.resources
        # Merged members must all re-evaluate: their watermarks name the
        # dead component, so bumping the survivor's epoch suffices.
        part.epoch = max(part.epoch, other.epoch) + 1
        del self._parts[other.pid]

    def remove_app(self, app_key: str) -> None:
        """Drop every bundle of an ended/evicted application.

        The freed resources can improve surviving members' options, so
        the component's epoch is bumped.  Components are not split
        eagerly — an over-broad component is always safe — but enough
        removals trigger a rebuild (see :meth:`refresh`).
        """
        for key in [k for k in self._member_pid if k[0] == app_key]:
            pid = self._member_pid.pop(key)
            self._clean_at.pop(key, None)
            part = self._parts[pid]
            part.members.discard(key)
            part.epoch += 1
            self._removals += 1
            if not part.members:
                for resource in part.resources:
                    if self._owner.get(resource) == pid:
                        del self._owner[resource]
                del self._parts[pid]
        self._opaque.discard(app_key)

    def note_apply(self, app_key: str, bundle_name: str) -> None:
        """An applied reconfiguration dirties the bundle's component."""
        pid = self._member_pid.get((app_key, bundle_name))
        if pid is not None:
            self._parts[pid].epoch += 1
        placed = self.controller.view.configuration_of(app_key)
        if placed is not None:
            self._note_opacity(app_key, placed)

    def _note_opacity(self, app_key: str, placed) -> None:
        safe = self.controller.model_is_footprint_safe(placed)
        if safe and app_key in self._opaque:
            self._opaque.discard(app_key)
            self.touch_all()
        elif not safe and app_key not in self._opaque:
            self._opaque.add(app_key)
            self.touch_all()

    def note_models_changed(self) -> None:
        """An explicit model was registered: rescan opacity, dirty all."""
        self._models_rescan = True
        self.touch_all()

    # -- dirtiness -----------------------------------------------------------

    def touch_all(self) -> None:
        for part in self._parts.values():
            part.epoch += 1

    def touch_host(self, hostname: str) -> None:
        pid = self._owner.get(("h", hostname))
        if pid is not None:
            self._parts[pid].epoch += 1

    def touch_link(self, host_a: str, host_b: str) -> None:
        pid = self._owner.get(("l", frozenset((host_a, host_b))))
        if pid is not None:
            self._parts[pid].epoch += 1

    # -- lifecycle -----------------------------------------------------------

    def refresh(self) -> None:
        """Sweep preamble: react to topology changes and deferred work."""
        current = getattr(self.controller.cluster, "topology_version", 0)
        registered = sum(len(instance.bundles) for instance
                         in self.controller.registry.instances())
        if current != self._topology_version or \
                self._removals >= REBUILD_AFTER_REMOVALS or \
                registered != len(self._member_pid):
            # The membership check self-heals paths that rebuild
            # controller state without going through setup_bundle
            # (crash recovery reconstructs the registry via the codec).
            self.rebuild()
        if self._models_rescan:
            self._models_rescan = False
            self._opaque.clear()
            for placed in self.controller.view.configurations():
                if not self.controller.model_is_footprint_safe(placed):
                    self._opaque.add(placed.app_key)

    def rebuild(self) -> None:
        """Recompute components from scratch; everything becomes dirty.

        Used after topology changes (patterns may match new hosts,
        merging components) and after enough removals (components may
        split, restoring pruning opportunity).  Clearing the watermarks
        keeps the rebuild trivially serial-equivalent: the next sweep
        evaluates every bundle.
        """
        self._parts.clear()
        self._owner.clear()
        self._member_pid.clear()
        self._clean_at.clear()
        self._removals = 0
        self._topology_version = getattr(self.controller.cluster,
                                         "topology_version", 0)
        self.rebuilds += 1
        for instance in self.controller.registry.instances():
            for state in instance.bundles.values():
                self.add_bundle(instance, state)

    # -- reach computation -----------------------------------------------------

    def _reach_of(self, state: "BundleState") -> frozenset:
        """Every resource key this bundle's evaluation could ever read.

        Hosts: the union of its configuration space's hostname patterns,
        matched against the cluster (memoized per pattern and topology
        version).  Links: every link on a routing path between two reach
        hosts, when any option declares links or communication.  Current
        placements are included for safety, though matching guarantees
        they already lie inside the pattern union.
        """
        bundle = state.bundle
        tv = self._topology_version
        hit = self._reach.get(id(bundle))
        if hit is not None and hit[0] is bundle and hit[1] == tv:
            return hit[2]
        patterns: set[str] = set()
        needs_links = False
        for option in bundle.options:
            if option.links or option.communication is not None:
                needs_links = True
            for requirement in option.nodes:
                patterns.add(requirement.hostname)
        all_hosts = self.controller.cluster.hostnames()
        if "*" in patterns:
            hosts = frozenset(all_hosts)
        else:
            hosts = frozenset().union(
                *(self._hosts_matching(p, all_hosts) for p in patterns)) \
                if patterns else frozenset()
        if state.chosen is not None:
            hosts |= frozenset(state.chosen.assignment.hostnames())
        resources: set[ResourceKey] = {("h", h) for h in hosts}
        if needs_links and len(hosts) < len(all_hosts):
            resources |= self._edges_among(frozenset(hosts))
        reach = frozenset(resources)
        self._reach[id(bundle)] = (bundle, tv, reach)
        return reach

    def _hosts_matching(self, pattern: str,
                        all_hosts: Iterable[str]) -> frozenset[str]:
        key = (pattern, self._topology_version)
        hit = self._pattern_hosts.get(key)
        if hit is None:
            hit = frozenset(h for h in all_hosts
                            if _hostname_matches(pattern, h))
            self._pattern_hosts[key] = hit
        return hit

    def _edges_among(self, hosts: frozenset[str]) -> frozenset:
        """Link keys on any routing path between two reach hosts.

        Paths may transit hosts outside the reach (a shared hub), so the
        returned keys are what connect two components that only interact
        through link contention or bandwidth.  Skipped entirely when the
        reach already spans the whole cluster (the component then merges
        with everything through host keys alone).
        """
        if self._edges_version != self._topology_version:
            self._edge_sets.clear()
            self._edges_version = self._topology_version
        hit = self._edge_sets.get(hosts)
        if hit is not None:
            return hit
        cluster = self.controller.cluster
        edges: set[ResourceKey] = set()
        ordered = sorted(hosts)
        for i, host_a in enumerate(ordered):
            for host_b in ordered[i + 1:]:
                try:
                    links = cluster.path_links(host_a, host_b)
                except SimulationError:
                    continue
                for link in links:
                    edges.add(("l", frozenset((link.host_a, link.host_b))))
        result = frozenset(edges)
        self._edge_sets[hosts] = result
        return result


class GainPriorityQueue:
    """Gain-ordered bundle selection with top-k pruning.

    Priorities are each bundle's last observed achievable gain (current
    objective minus its best candidate's); never-evaluated bundles rank
    highest.  :meth:`select` keeps the caller's order for the selected
    bundles — the queue decides *which* bundles a bounded sweep
    evaluates, never the order they are evaluated in, so with
    ``top_k=None`` (the default everywhere) it is a no-op and the sweep
    is byte-identical to the serial oracle.
    """

    def __init__(self) -> None:
        self._gains: dict[BundleKey, float] = {}

    def record(self, key: BundleKey, gain: float) -> None:
        self._gains[key] = max(0.0, gain)

    def forget(self, key: BundleKey) -> None:
        self._gains.pop(key, None)

    def gain_of(self, key: BundleKey) -> float:
        return self._gains.get(key, math.inf)

    def select(self, keys: list[BundleKey], top_k: int | None,
               ) -> tuple[list[BundleKey], list[BundleKey]]:
        """Split ``keys`` into (selected, deferred), preserving order.

        ``top_k=None`` selects everything.  Ties break by position, so
        selection is deterministic.
        """
        if top_k is None or len(keys) <= top_k:
            return list(keys), []
        ranked = sorted(range(len(keys)),
                        key=lambda i: (-self.gain_of(keys[i]), i))
        picked = set(ranked[:top_k])
        selected = [k for i, k in enumerate(keys) if i in picked]
        deferred = [k for i, k in enumerate(keys) if i not in picked]
        return selected, deferred
