"""Hierarchical controller federation: N shards under a root arbiter.

The paper's Harmony process is a single server, and PR 6 (parallel
sweeps) and PR 9 (replication) both kept it that way — every session
still funnels through one controller.  This module scales *out* instead:
sessions are sharded across N controller workers by consistent hash on
the application name, under a root arbiter that

* answers ``shard_lookup`` for connecting clients (the shard directory),
* owns cross-shard resources — hosts claimed by more than one shard are
  arbiter-owned and pinned to their first claimant, so a rebalance never
  moves a session whose placement straddles shards, and
* periodically rebalances, moving whole sessions between shards.

Each shard is an ordinary :class:`~repro.api.server.HarmonyServer` over
its own :class:`~repro.controller.controller.AdaptationController` and
(optionally) its own per-shard durability journal directory — shard
crash/recovery is the existing WAL/snapshot stack, unchanged.

Cross-shard handoff composes two machines that already exist: the origin
shard *evicts* the session while exporting a descriptor
(:meth:`~repro.api.server.HarmonyServer.begin_handoff`), the target
shard *adopts* it under the original key
(:meth:`~repro.api.server.HarmonyServer.adopt_handoff`), and the client
— answered with a retryable ``shard_moved`` redirect modeled on PR 9's
``controller_moved`` — reconnects to the target and rejoins with its
``resume_key``, replaying its bundles against the new shard's resources.

Known race, by design: between the origin's ``begin_handoff`` and the
target's ``adopt_handoff`` there is a microseconds-wide window in which
a redirected client could re-register on the target before the adoption
lands (it would register fresh instead of resuming).  In-process the
two halves run back to back inside :meth:`Federation.move_session`
while the client needs a full network round trip to even learn the
redirect, so the window is unreachable in practice; a cross-process
arbiter would close it by adopting before tombstoning.

This federation is in-process multi-worker: N servers on N ports inside
one process (the CLI's ``serve --shards N``).  Cross-process federation
needs only a wire codec for the handoff descriptor — the protocol
vocabulary (``shard_moved``, ``shard_lookup``, ``shard_map``) is already
in place.  See docs/federation.md.
"""

from __future__ import annotations

import bisect
import threading
import zlib
from typing import TYPE_CHECKING, Any, Callable

from repro.controller.controller import AdaptationController
from repro.errors import ControllerError
from repro.obs.flightrec import EVENT_HANDOFF, EVENT_REBALANCE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    # The server imports the controller package; ours goes the other
    # way only at runtime, inside the constructors below.
    from repro.api.server import HarmonyServer

__all__ = ["ShardMap", "RootArbiter", "ControllerShard", "Federation",
           "shard_hash"]


def shard_hash(key: str) -> int:
    """The federation's stable 32-bit hash (``zlib.crc32``).

    Deliberately *not* Python's builtin ``hash()``, which varies per
    process with ``PYTHONHASHSEED`` — shard placement must agree across
    every process that ever computes it.
    """
    return zlib.crc32(key.encode("utf-8")) & 0xFFFFFFFF


class ShardMap:
    """Consistent-hash ring mapping application names to shard indexes.

    Each shard contributes ``vnodes`` points to the ring; a key is owned
    by the first point clockwise from its hash.  Virtual nodes smooth
    the load split, and consistent hashing keeps most assignments stable
    when the shard count changes.

    >>> shard_map = ShardMap(["h:1", "h:2", "h:3", "h:4"])
    >>> 0 <= shard_map.shard_for("app-17") < 4
    True
    >>> shard_map.shard_for("app-17") == shard_map.shard_for("app-17")
    True
    """

    def __init__(self, addresses: list[str], vnodes: int = 64):
        if not addresses:
            raise ControllerError("a shard map needs at least one shard")
        if vnodes < 1:
            raise ControllerError("vnodes must be >= 1")
        self.addresses = list(addresses)
        self.vnodes = vnodes
        points: list[tuple[int, int]] = []
        for index in range(len(self.addresses)):
            for vnode in range(vnodes):
                points.append((shard_hash(f"shard-{index}#{vnode}"), index))
        points.sort()
        self._hashes = [point[0] for point in points]
        self._owners = [point[1] for point in points]

    def __len__(self) -> int:
        return len(self.addresses)

    def shard_for(self, key: str) -> int:
        """The shard index owning ``key`` (first ring point clockwise)."""
        position = bisect.bisect_left(self._hashes, shard_hash(key))
        if position == len(self._hashes):
            position = 0
        return self._owners[position]

    def address_of(self, index: int) -> str:
        return self.addresses[index]

    def to_payload(self) -> list[dict[str, Any]]:
        """The wire form for ``shard_map`` replies."""
        return [{"index": index, "address": address}
                for index, address in enumerate(self.addresses)]


class RootArbiter:
    """The federation's root: shard directory plus cross-shard resources.

    Holds the :class:`ShardMap`, the explicit per-key assignment
    overrides created by handoffs (an assignment always wins over the
    hash), and the host-claim table: every shard claims the hostnames
    its cluster serves, and a host claimed by two or more shards is
    *cross-shard* — arbiter-owned, pinned to its first claimant, and a
    reason :meth:`Federation.rebalance` refuses to move sessions placed
    on it.
    """

    def __init__(self, shard_map: ShardMap):
        self.shard_map = shard_map
        self._assignments: dict[str, int] = {}
        self._host_claims: dict[str, list[int]] = {}
        self._lock = threading.Lock()

    # -- host ownership ------------------------------------------------------

    def claim_hosts(self, shard_index: int,
                    hostnames: list[str]) -> None:
        """A shard declares the hosts its cluster reaches."""
        with self._lock:
            for hostname in hostnames:
                claims = self._host_claims.setdefault(hostname, [])
                if shard_index not in claims:
                    claims.append(shard_index)

    @property
    def cross_shard_hosts(self) -> frozenset[str]:
        """Hosts reachable from more than one shard (arbiter-owned)."""
        with self._lock:
            return frozenset(host for host, claims
                             in self._host_claims.items()
                             if len(claims) > 1)

    def host_owner(self, hostname: str) -> int | None:
        """The shard a (cross-shard) host is pinned to: first claimant."""
        with self._lock:
            claims = self._host_claims.get(hostname)
            return claims[0] if claims else None

    # -- session placement ---------------------------------------------------

    def assign(self, key: str, shard_index: int) -> None:
        """Record an explicit placement (a handoff moved ``key``)."""
        with self._lock:
            self._assignments[key] = shard_index

    def forget(self, key: str) -> None:
        with self._lock:
            self._assignments.pop(key, None)

    def assignment_count(self) -> int:
        with self._lock:
            return len(self._assignments)

    def shard_for(self, app_name: str | None = None,
                  resume_key: str | None = None) -> int:
        """Resolve a session to its shard.

        An explicit assignment (from a handoff) wins; otherwise the
        consistent hash of the application name decides.  A
        ``resume_key`` is ``app_name.instance_id`` — its name half
        hashes identically to the original registration.
        """
        with self._lock:
            if resume_key is not None and resume_key in self._assignments:
                return self._assignments[resume_key]
        if resume_key is not None and app_name is None:
            app_name = str(resume_key).rsplit(".", 1)[0]
        if app_name is None:
            raise ControllerError(
                "shard lookup needs an app_name or resume_key")
        return self.shard_map.shard_for(str(app_name))

    def lookup(self, app_name: str | None = None,
               resume_key: str | None = None) -> dict[str, Any]:
        """The ``shard_lookup`` answer: full map plus the resolved owner."""
        index = self.shard_for(app_name=app_name, resume_key=resume_key)
        return {"shards": self.shard_map.to_payload(),
                "leader": self.shard_map.address_of(index)}


class ControllerShard:
    """One federation worker: a controller, its server, its journal."""

    def __init__(self, index: int, controller: AdaptationController,
                 server: HarmonyServer, journal=None,
                 journal_dir: str | None = None):
        self.index = index
        self.controller = controller
        self.server = server
        self.journal = journal
        self.journal_dir = journal_dir
        #: ``host:port``, set once the front end binds (see
        #: :meth:`Federation.serve`).
        self.address: str | None = None

    @property
    def session_count(self) -> int:
        return len(self.controller.registry)


class Federation:
    """N sharded controller workers under one root arbiter.

    ``controller_factory(index)`` builds each shard's controller — each
    call must return a *fresh* controller over its own cluster replica
    (shards do not share mutable cluster state).  With ``directory``
    set, every shard journals under ``<directory>/shard-<index>`` using
    the existing WAL/snapshot stack unchanged.

    Serving is front-end agnostic: :meth:`serve` takes a callable that
    binds one :class:`HarmonyServer` and returns its ``(host, port)`` —
    ``lambda s: s.serve_tcp(port=0)`` for the threaded front end, or a
    wrapper over the asyncio front end / the test fixtures.  The arbiter
    server binds last and answers ``shard_lookup`` from then on.
    """

    def __init__(self, controller_factory: Callable[[int],
                                                    AdaptationController],
                 shard_count: int, *,
                 directory: str | None = None,
                 lease_seconds: float | None = None,
                 vnodes: int = 64,
                 server_kwargs: dict[str, Any] | None = None,
                 journal_kwargs: dict[str, Any] | None = None,
                 arbiter_controller: AdaptationController | None = None):
        from repro.api.server import HarmonyServer

        if shard_count < 1:
            raise ControllerError("federation needs at least one shard")
        self.vnodes = vnodes
        self.shards: list[ControllerShard] = []
        server_kwargs = dict(server_kwargs or {})
        for index in range(shard_count):
            controller = controller_factory(index)
            journal = None
            journal_dir = None
            if directory is not None:
                import os

                from repro.persistence import DurabilityJournal

                journal_dir = os.path.join(directory, f"shard-{index}")
                os.makedirs(journal_dir, exist_ok=True)
                kwargs = dict(journal_kwargs or {"fsync": "never"})
                journal = DurabilityJournal(journal_dir, **kwargs)
                journal.attach(controller)
            server = HarmonyServer(controller,
                                   lease_seconds=lease_seconds,
                                   **server_kwargs)
            self.shards.append(ControllerShard(index, controller, server,
                                               journal=journal,
                                               journal_dir=journal_dir))
        if arbiter_controller is None:
            arbiter_controller = self._default_arbiter_controller()
        self.arbiter_server = HarmonyServer(arbiter_controller)
        self.arbiter_address: str | None = None
        self.shard_map: ShardMap | None = None
        self.arbiter: RootArbiter | None = None
        self.handoffs = 0
        self.rebalances = 0
        self._rebalance_thread: threading.Thread | None = None
        self._rebalance_stop: threading.Event | None = None

    @staticmethod
    def _default_arbiter_controller() -> AdaptationController:
        # The arbiter never places applications; a one-node cluster is
        # enough to host its server (status queries, shard lookups).
        from repro.cluster.topology import Cluster

        return AdaptationController(
            Cluster.full_mesh(["arbiter0"], memory_mb=1.0))

    # -- serving -------------------------------------------------------------

    def serve(self, start: Callable[[HarmonyServer],
                                    tuple[str, int]]) -> str:
        """Bind every shard, then the arbiter; returns the arbiter address.

        ``start(server)`` must bind one server and return ``(host,
        port)``.  Once every shard has an address the shard map is
        sealed, the arbiter starts answering ``shard_lookup``, and each
        shard claims its cluster's hostnames (overlaps become
        arbiter-owned cross-shard hosts).
        """
        if self.arbiter is not None:
            raise ControllerError("federation is already serving")
        for shard in self.shards:
            host, port = start(shard.server)
            shard.address = f"{host}:{port}"
        host, port = start(self.arbiter_server)
        self.arbiter_address = f"{host}:{port}"
        self.shard_map = ShardMap(
            [shard.address for shard in self.shards], vnodes=self.vnodes)
        self.arbiter = RootArbiter(self.shard_map)
        for shard in self.shards:
            self.arbiter.claim_hosts(
                shard.index,
                [node.hostname
                 for node in shard.controller.cluster.nodes()])
        self.arbiter_server.shard_router = self.arbiter
        return self.arbiter_address

    def shard_for(self, app_name: str | None = None,
                  resume_key: str | None = None) -> ControllerShard:
        """The shard that owns (or would own) a session."""
        self._require_serving()
        index = self.arbiter.shard_for(app_name=app_name,
                                       resume_key=resume_key)
        return self.shards[index]

    def shard_owning(self, key: str) -> ControllerShard | None:
        """The shard whose registry actually holds ``key`` right now."""
        for shard in self.shards:
            try:
                instance = shard.controller.registry.instance(key)
            except ControllerError:
                continue
            if not instance.ended:
                return shard
        return None

    # -- handoff and rebalance ----------------------------------------------

    def move_session(self, key: str, target_index: int) -> bool:
        """Hand one session from its current shard to ``target_index``.

        Atomic in-process: the origin's export/evict/tombstone and the
        target's adoption run back to back, so the client's next request
        — wherever it lands — either reaches the origin's ``shard_moved``
        redirect or resumes directly on the target.  Returns ``False``
        when the key is unknown, already on the target, or mid-teardown.
        """
        self._require_serving()
        if not 0 <= target_index < len(self.shards):
            raise ControllerError(f"no shard {target_index}")
        target = self.shards[target_index]
        origin = self.shard_owning(key)
        if origin is None or origin.index == target_index:
            return False
        assert target.address is not None
        descriptor = origin.server.begin_handoff(key, target.address)
        if descriptor is None:
            return False
        target.server.adopt_handoff(descriptor)
        self.arbiter.assign(key, target_index)
        self.handoffs += 1
        controller = self.arbiter_server.controller
        controller.metrics.increment("federation.handoffs", controller.now)
        recorder = origin.controller.flight_recorder
        if recorder is not None:
            recorder.record(EVENT_HANDOFF, client=key,
                            origin=origin.index, target=target_index)
        return True

    def movable(self, shard: ControllerShard, key: str) -> bool:
        """Whether a rebalance may move ``key`` off ``shard``.

        A session placed on any arbiter-owned cross-shard host is pinned
        to that host's owner shard — moving it would double-allocate the
        host on two shards' cluster replicas.
        """
        self._require_serving()
        cross = self.arbiter.cross_shard_hosts
        if not cross:
            return True
        try:
            instance = shard.controller.registry.instance(key)
        except ControllerError:
            return False
        for state in instance.bundles.values():
            chosen = state.chosen
            if chosen is None:
                continue
            if set(chosen.assignment.hostnames()) & cross:
                return False
        return True

    def rebalance(self, max_moves: int = 8) -> int:
        """Even out session counts: move from fullest to emptiest shard.

        Stops when the spread is ≤ 1 session, nothing movable remains,
        or ``max_moves`` is reached.  Returns the number of sessions
        moved.
        """
        self._require_serving()
        moves = 0
        while moves < max_moves:
            ranked = sorted(self.shards,
                            key=lambda s: (s.session_count, s.index))
            least, most = ranked[0], ranked[-1]
            if most.session_count - least.session_count <= 1:
                break
            candidate = None
            for instance in most.controller.registry.instances():
                if not instance.ended and self.movable(most, instance.key):
                    candidate = instance.key
                    break
            if candidate is None:
                break
            if not self.move_session(candidate, least.index):
                break
            moves += 1
        if moves:
            self.rebalances += 1
            controller = self.arbiter_server.controller
            controller.metrics.increment("federation.rebalances",
                                         controller.now)
            recorder = controller.flight_recorder
            if recorder is not None:
                recorder.record(EVENT_REBALANCE, moves=moves)
        return moves

    def start_rebalancer(self, period_seconds: float = 5.0) -> None:
        """Run :meth:`rebalance` periodically on a background thread."""
        if self._rebalance_thread is not None \
                and self._rebalance_thread.is_alive():
            return
        stop = threading.Event()
        self._rebalance_stop = stop

        def loop() -> None:
            while not stop.wait(period_seconds):
                self.rebalance()

        self._rebalance_thread = threading.Thread(
            target=loop, name="federation-rebalancer", daemon=True)
        self._rebalance_thread.start()

    def stop_rebalancer(self) -> None:
        thread = self._rebalance_thread
        if self._rebalance_stop is not None:
            self._rebalance_stop.set()
        if thread is not None and thread.is_alive() \
                and thread is not threading.current_thread():
            thread.join(timeout=5.0)
        self._rebalance_thread = None
        self._rebalance_stop = None

    # -- lifecycle -----------------------------------------------------------

    def status(self) -> dict[str, Any]:
        """Per-shard session counts plus federation-wide counters."""
        payload: dict[str, Any] = {
            "arbiter": self.arbiter_address,
            "shards": [{"index": shard.index, "address": shard.address,
                        "sessions": shard.session_count}
                       for shard in self.shards],
            "handoffs": self.handoffs,
            "rebalances": self.rebalances,
        }
        if self.arbiter is not None:
            payload["cross_shard_hosts"] = sorted(
                self.arbiter.cross_shard_hosts)
            payload["assignments"] = self.arbiter.assignment_count()
        return payload

    def stop(self, stop_servers: bool = False) -> None:
        """Stop the rebalancer (and, optionally, every shard server).

        Front ends started by an external factory (the test fixtures,
        the asyncio server) are owned by their starter; pass
        ``stop_servers=True`` only when the federation's servers were
        bound with ``serve_tcp`` and nothing else will stop them.
        """
        self.stop_rebalancer()
        if stop_servers:
            for shard in self.shards:
                shard.server.stop()
            self.arbiter_server.stop()

    def _require_serving(self) -> None:
        if self.arbiter is None or self.shard_map is None:
            raise ControllerError(
                "federation is not serving yet (call serve() first)")
