"""Option-setting optimizers (paper Section 4.3).

"Currently, we optimize one bundle at a time when adding new applications to
the system.  Bundles are evaluated in the same lexical order as they were
defined.  This is a simple form of greedy optimization that will not
necessarily produce a globally optimal value, but it is simple and easy to
implement."

:class:`GreedyOptimizer` is that algorithm: for one bundle it enumerates the
configuration space (options x variable assignments x elastic-memory
grants), matches each against the cluster, evaluates the global objective
with every *other* application held fixed, and returns the best candidate.
:class:`ExhaustiveOptimizer` searches the full cross-product of all
applications' configurations — exponential, provided for the ablation
benchmark quantifying the greedy gap.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping

from repro.allocation.allocation import Allocation
from repro.allocation.instantiate import (
    ConcreteDemands,
    NodeDemand,
    instantiate_option,
)
from repro.allocation.matcher import Assignment, Matcher
from repro.controller.objective import Objective
from repro.controller.registry import AppInstance, BundleState
from repro.errors import AllocationError, RslSemanticError
from repro.prediction.contention import SystemView
from repro.rsl.model import TuningOption

__all__ = ["Candidate", "OptimizationContext", "GreedyOptimizer",
           "ExhaustiveOptimizer", "enumerate_candidates"]

#: predict_all(view) -> {app_key: predicted seconds} for every placed app.
PredictAll = Callable[[SystemView], Mapping[str, float]]


@dataclass
class Candidate:
    """One concrete, matchable configuration of one bundle."""

    option_name: str
    variable_assignment: dict[str, float]
    memory_grants: dict[str, float]
    demands: ConcreteDemands
    assignment: Assignment
    objective_value: float = math.inf
    predicted_seconds: float = math.inf

    def describe(self) -> str:
        parts = [self.option_name]
        if self.variable_assignment:
            parts.append(",".join(
                f"{k}={v:g}" for k, v in
                sorted(self.variable_assignment.items())))
        return ":".join(parts)


@dataclass
class OptimizationContext:
    """Everything an optimizer needs to score candidates."""

    view: SystemView              # all apps' current placements
    matcher: Matcher
    objective: Objective
    predict_all: PredictAll
    now: float = 0.0
    #: Cap on elastic-memory probe values per node demand.
    memory_probe_limit: int = 3


def bundle_holder(instance: AppInstance, state: BundleState) -> str:
    """The allocation-holder id for one (instance, bundle) pair."""
    return f"{instance.key}:{state.bundle.bundle_name}"


def enumerate_candidates(instance: AppInstance, state: BundleState,
                         context: OptimizationContext,
                         extra_ignore_holders: frozenset[str] = frozenset(),
                         ordering_view: SystemView | None = None,
                         ) -> Iterator[Candidate]:
    """Yield every matchable configuration of ``state``'s bundle.

    The application's own current reservations are ignored while matching
    (``ignore_holders``), so it can re-use the resources it currently
    holds.  Placements prefer the least CPU-loaded nodes of
    ``ordering_view`` (default: the context view without this application),
    so new configurations spread away from other applications when room
    exists.
    """
    ignore = frozenset({bundle_holder(instance, state)}) \
        | extra_ignore_holders
    if ordering_view is None:
        ordering_view = context.view.copy()
        ordering_view.remove(instance.key)
    order_key = _load_order_key(ordering_view)
    for option in state.bundle.options:
        for variable_assignment in option.variable_assignments():
            yield from _candidates_for_assignment(
                option, dict(variable_assignment), context, ignore,
                order_key)


def _load_order_key(view: SystemView):
    """Prefer idle nodes; among equally loaded ones, prefer faster nodes.

    Load includes measured external consumers, so candidates also spread
    away from work Harmony does not manage.
    """
    keys = {}
    for hostname in view.cluster.hostnames():
        load = (float(view.cpu_consumers(hostname))
                + view.external_cpu_load(hostname))
        speed = view.cluster.node(hostname).speed
        keys[hostname] = (load, -speed)
    return lambda hostname: keys.get(hostname, (0.0, 0.0))


def _candidates_for_assignment(option: TuningOption,
                               variable_assignment: dict[str, float],
                               context: OptimizationContext,
                               ignore_holders: frozenset[str],
                               order_key,
                               ) -> Iterator[Candidate]:
    try:
        base = instantiate_option(option, variable_assignment)
    except RslSemanticError:
        return
    for grants in _memory_grant_choices(option, base,
                                        context.memory_probe_limit):
        try:
            demands = (base if not grants
                       else instantiate_option(option, variable_assignment,
                                               grants=grants))
            assignment = context.matcher.match(
                demands, extra_memory=_extra_memory(demands, grants),
                ignore_holders=ignore_holders, order_key=order_key)
        except (AllocationError, RslSemanticError):
            continue
        yield Candidate(option_name=option.name,
                        variable_assignment=dict(variable_assignment),
                        memory_grants=dict(grants),
                        demands=demands,
                        assignment=assignment)


def _extra_memory(demands: ConcreteDemands,
                  grants: Mapping[str, float]) -> dict[str, float]:
    extra: dict[str, float] = {}
    for demand in demands.nodes:
        granted = grants.get(f"{demand.local_name}.memory")
        if granted is not None and granted > demand.memory_min_mb:
            extra[demand.local_name] = granted - demand.memory_min_mb
    return extra


def _memory_grant_choices(option: TuningOption, base: ConcreteDemands,
                          probe_limit: int,
                          ) -> Iterator[dict[str, float]]:
    """Enumerate elastic-memory grants worth considering.

    The controller gives extra memory only when it changes something it can
    see — i.e. when a link/communication expression depends on the node's
    memory (Figure 3's data-shipping bandwidth).  For each such node we probe
    integer memory values above the minimum and keep the earliest value that
    minimizes total traffic; the choices offered are then {minimum} and
    {minimum with that node boosted}.
    """
    yield {}
    dependent = _memory_dependent_demands(option, base)
    for demand in dependent[:probe_limit]:
        best = _best_memory_for(option, base, demand)
        if best is not None and best > demand.memory_min_mb:
            yield {f"{demand.local_name}.memory": best}


def _memory_dependent_demands(option: TuningOption, base: ConcreteDemands,
                              ) -> list[NodeDemand]:
    referenced: set[str] = set()
    for link in option.links:
        referenced |= link.megabytes.free_variables()
    if option.communication is not None:
        referenced |= option.communication.megabytes.free_variables()
    wanted = []
    for demand in base.nodes:
        if demand.memory_elastic and \
                f"{demand.local_name}.memory" in referenced:
            wanted.append(demand)
    return wanted


def _best_memory_for(option: TuningOption, base: ConcreteDemands,
                     demand: NodeDemand, span_mb: float = 64.0,
                     ) -> float | None:
    """Probe integer memory values; return the cheapest-traffic one."""
    low = int(math.ceil(demand.memory_min_mb))
    high = int(min(demand.memory_max_mb, demand.memory_min_mb + span_mb))
    best_memory: float | None = None
    best_traffic = math.inf
    key = f"{demand.local_name}.memory"
    for memory in range(low, high + 1):
        try:
            probed = instantiate_option(option, base.variable_assignment,
                                        grants={key: float(memory)})
        except RslSemanticError:
            continue
        traffic = probed.total_traffic_mb()
        if traffic < best_traffic - 1e-9:
            best_traffic = traffic
            best_memory = float(memory)
    return best_memory


@dataclass
class OptimizationResult:
    """Best candidate found for one bundle, with search statistics."""

    best: Candidate | None
    candidates_evaluated: int = 0
    current_objective: float = math.inf


class GreedyOptimizer:
    """The paper's one-bundle-at-a-time greedy search.

    :meth:`optimize_pair` extends it with a joint search over *two* bundles
    at once.  Pure coordinate descent cannot reach the equal partitions of
    the paper's Figure 4(b) — from a (5 nodes, 3 nodes) split neither app
    improves alone, but (4, 4) is globally better — while a pairwise
    exchange pass finds them.  This is the concrete form of the paper's
    "allocation decisions that require running applications to be
    reconfigured".
    """

    def optimize_pair(self, first: tuple[AppInstance, BundleState],
                      second: tuple[AppInstance, BundleState],
                      context: OptimizationContext,
                      ) -> tuple[Candidate, Candidate, float] | None:
        """Jointly choose configurations for two bundles.

        Returns ``(candidate_first, candidate_second, objective)`` for the
        best feasible combination, or ``None`` when either side has no
        feasible candidate.
        """
        instance_a, state_a = first
        instance_b, state_b = second
        ignore = frozenset({bundle_holder(instance_a, state_a),
                            bundle_holder(instance_b, state_b)})
        base_view = context.view.copy()
        base_view.remove(instance_a.key)
        base_view.remove(instance_b.key)
        candidates_a = list(enumerate_candidates(
            instance_a, state_a, context, extra_ignore_holders=ignore,
            ordering_view=base_view))
        if not candidates_a:
            return None

        best: tuple[Candidate, Candidate, float] | None = None
        for cand_a in candidates_a:
            # Re-enumerate the second bundle with the first candidate
            # placed, so its placements spread away from cand_a's nodes.
            view_with_a = base_view.copy()
            view_with_a.place(instance_a.key, cand_a.demands,
                              cand_a.assignment)
            for cand_b in enumerate_candidates(
                    instance_b, state_b, context,
                    extra_ignore_holders=ignore,
                    ordering_view=view_with_a):
                if not _pair_memory_ok(context.view.cluster, ignore,
                                       cand_a, cand_b):
                    continue
                trial_view = view_with_a.copy()
                trial_view.place(instance_b.key, cand_b.demands,
                                 cand_b.assignment)
                predictions = context.predict_all(trial_view)
                objective = context.objective.evaluate(predictions)
                if best is None or objective < best[2] - 1e-12:
                    copy_a = Candidate(**{**cand_a.__dict__})
                    copy_b = Candidate(**{**cand_b.__dict__})
                    copy_a.objective_value = objective
                    copy_b.objective_value = objective
                    copy_a.predicted_seconds = predictions.get(
                        instance_a.key, math.inf)
                    copy_b.predicted_seconds = predictions.get(
                        instance_b.key, math.inf)
                    best = (copy_a, copy_b, objective)
        return best

    def optimize_bundle(self, instance: AppInstance, state: BundleState,
                        context: OptimizationContext) -> OptimizationResult:
        """Pick the configuration of this bundle minimizing the objective,
        holding every other application (and bundle) fixed."""
        current_objective = context.objective.evaluate(
            context.predict_all(context.view))

        best: Candidate | None = None
        evaluated = 0
        for candidate in enumerate_candidates(instance, state, context):
            evaluated += 1
            trial_view = context.view.copy()
            trial_view.place(instance.key, candidate.demands,
                             candidate.assignment)
            predictions = context.predict_all(trial_view)
            candidate.objective_value = context.objective.evaluate(predictions)
            candidate.predicted_seconds = predictions.get(
                instance.key, math.inf)
            if best is None or \
                    candidate.objective_value < best.objective_value - 1e-12:
                best = candidate
        return OptimizationResult(best=best, candidates_evaluated=evaluated,
                                  current_objective=current_objective)


class ExhaustiveOptimizer:
    """Joint search over all applications' configurations (ablation only).

    Searches the cross-product of candidate lists, one per (instance,
    bundle).  ``max_combinations`` guards against explosion; the search
    raises when exceeded so callers notice rather than silently truncate.
    """

    def __init__(self, max_combinations: int = 200_000):
        self.max_combinations = max_combinations

    def optimize_all(self, instances: list[AppInstance],
                     context: OptimizationContext,
                     ) -> tuple[dict[str, Candidate], float, int]:
        """Returns (choice per app key, objective, combinations tried)."""
        per_app: list[tuple[AppInstance, BundleState, list[Candidate]]] = []
        for instance in instances:
            for state in instance.bundles.values():
                candidates = list(enumerate_candidates(
                    instance, state, context))
                if not candidates:
                    raise AllocationError(
                        f"{instance.key}: no feasible configuration for "
                        f"bundle {state.bundle.bundle_name!r}")
                per_app.append((instance, state, candidates))

        total = math.prod(len(c) for _, _, c in per_app) if per_app else 0
        if total > self.max_combinations:
            raise AllocationError(
                f"exhaustive search space {total} exceeds cap "
                f"{self.max_combinations}")

        best_choice: dict[str, Candidate] = {}
        best_objective = math.inf
        combinations = 0
        for combo in itertools.product(*(c for _, _, c in per_app)):
            combinations += 1
            trial_view = context.view.copy()
            feasible = True
            usage: dict[str, float] = {}
            for (instance, _state, _), candidate in zip(per_app, combo):
                if not _memory_feasible(trial_view, candidate, usage):
                    feasible = False
                    break
                trial_view.place(instance.key, candidate.demands,
                                 candidate.assignment)
            if not feasible:
                continue
            objective = context.objective.evaluate(
                context.predict_all(trial_view))
            if objective < best_objective - 1e-12:
                best_objective = objective
                best_choice = {
                    instance.key: candidate
                    for (instance, _s, _c), candidate in zip(per_app, combo)
                }
        return best_choice, best_objective, combinations


def _pair_memory_ok(cluster, ignore_holders: frozenset[str],
                    cand_a: Candidate, cand_b: Candidate) -> bool:
    """Joint memory check for a candidate pair against the live cluster.

    Each candidate matched individually (its own holder ignored); the pair
    must also fit *together*: per node, both claims plus everyone else's
    live reservations must not exceed total memory.
    """
    claims: dict[str, float] = {}
    for candidate in (cand_a, cand_b):
        for demand in candidate.demands.nodes:
            hostname = candidate.assignment.hostname_of(demand.local_name)
            granted = demand.memory_granted(candidate.memory_grants)
            claims[hostname] = claims.get(hostname, 0.0) + granted
    for hostname, claim in claims.items():
        node = cluster.node(hostname)
        free = node.memory.available_mb
        for holder in ignore_holders:
            free += node.memory.held_by(holder)
        if claim > free + 1e-9:
            return False
    return True


def _memory_feasible(view: SystemView, candidate: Candidate,
                     usage: dict[str, float]) -> bool:
    """Joint memory check across a combination under construction.

    Per-candidate matching verified memory against the *live* cluster, but a
    joint assignment must not oversubscribe a node across candidates.
    ``usage`` accumulates MB already claimed by earlier combo members.
    """
    cluster = view.cluster
    claims: dict[str, float] = {}
    for demand in candidate.demands.nodes:
        hostname = candidate.assignment.hostname_of(demand.local_name)
        granted = demand.memory_granted(candidate.memory_grants)
        claims[hostname] = claims.get(hostname, 0.0) + granted
    for hostname, claim in claims.items():
        node = cluster.node(hostname)
        total_free = node.memory.total_mb  # joint check from a blank slate
        if usage.get(hostname, 0.0) + claim > total_free + 1e-9:
            return False
    for hostname, claim in claims.items():
        usage[hostname] = usage.get(hostname, 0.0) + claim
    return True
