"""Option-setting optimizers (paper Section 4.3).

"Currently, we optimize one bundle at a time when adding new applications to
the system.  Bundles are evaluated in the same lexical order as they were
defined.  This is a simple form of greedy optimization that will not
necessarily produce a globally optimal value, but it is simple and easy to
implement."

:class:`GreedyOptimizer` is that algorithm: for one bundle it enumerates the
configuration space (options x variable assignments x elastic-memory
grants), matches each against the cluster, evaluates the global objective
with every *other* application held fixed, and returns the best candidate.
:class:`ExhaustiveOptimizer` searches the full cross-product of all
applications' configurations — exponential, provided for the ablation
benchmark quantifying the greedy gap.

Candidate scoring runs in one of two modes, chosen by the context:

* **naive** (no :class:`~repro.controller.trial.TrialEngine` attached) —
  the original algorithm: copy the view, place the candidate, predict every
  application from scratch.  Kept both for contexts assembled by hand and
  as the reference implementation the equivalence tests compare against.
* **incremental** — trial placements mutate the live view and roll back
  through undo tokens (:class:`~repro.controller.trial.ViewTrial`), and
  predictions are delta-computed over the dirty set only.  A
  :class:`ConfigurationCache` additionally memoizes each bundle's resolved
  configuration space so re-evaluation sweeps and the pairwise pass stop
  re-instantiating options.  Both modes make identical decisions.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator, Mapping

from repro.allocation.instantiate import (
    ConcreteDemands,
    InstantiationCache,
    NodeDemand,
    instantiate_option,
)
from repro.allocation.matcher import Assignment, Matcher
from repro.controller.objective import Objective
from repro.controller.registry import AppInstance, BundleState
from repro.errors import AllocationError, RslSemanticError, SimulationError
from repro.obs.trace import NULL_TRACER
from repro.prediction.contention import SystemView
from repro.rsl.expressions import MapEnvironment
from repro.rsl.model import Bundle, TuningOption

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.controller.trial import OptimizerStats, TrialEngine

__all__ = ["Candidate", "OptimizationContext", "ConfigurationCache",
           "GreedyOptimizer", "ExhaustiveOptimizer", "enumerate_candidates"]

#: predict_all(view) -> {app_key: predicted seconds} for every placed app.
PredictAll = Callable[[SystemView], Mapping[str, float]]

#: Default cap on elastic-memory probe values per node demand (must match
#: ``OptimizationContext.memory_probe_limit``'s default — the partition
#: index keys cache peeks on it).
DEFAULT_MEMORY_PROBE_LIMIT = 3


@dataclass
class Candidate:
    """One concrete, matchable configuration of one bundle."""

    option_name: str
    variable_assignment: dict[str, float]
    memory_grants: dict[str, float]
    demands: ConcreteDemands
    assignment: Assignment
    objective_value: float = math.inf
    predicted_seconds: float = math.inf

    def clone(self) -> "Candidate":
        """An independent copy (own mutable dicts, shared frozen demands)."""
        return Candidate(
            option_name=self.option_name,
            variable_assignment=dict(self.variable_assignment),
            memory_grants=dict(self.memory_grants),
            demands=self.demands,
            assignment=self.assignment,
            objective_value=self.objective_value,
            predicted_seconds=self.predicted_seconds)

    def describe(self) -> str:
        parts = [self.option_name]
        if self.variable_assignment:
            parts.append(",".join(
                f"{k}={v:g}" for k, v in
                sorted(self.variable_assignment.items())))
        return ":".join(parts)


@dataclass
class OptimizationContext:
    """Everything an optimizer needs to score candidates."""

    view: SystemView              # all apps' current placements
    matcher: Matcher
    objective: Objective
    predict_all: PredictAll
    now: float = 0.0
    #: Cap on elastic-memory probe values per node demand.
    memory_probe_limit: int = DEFAULT_MEMORY_PROBE_LIMIT
    #: Delta-prediction engine; None selects the naive scoring path.
    engine: "TrialEngine | None" = None
    #: Memoized configuration spaces; None re-enumerates from the RSL.
    cache: "ConfigurationCache | None" = None
    #: Work counters (candidates, recomputes); optional.
    stats: "OptimizerStats | None" = None
    #: Span recorder; the no-op singleton keeps tracing zero-cost-when-off.
    tracer: object = NULL_TRACER


def bundle_holder(instance: AppInstance, state: BundleState) -> str:
    """The allocation-holder id for one (instance, bundle) pair."""
    return f"{instance.key}:{state.bundle.bundle_name}"


@dataclass(frozen=True)
class ConfigurationEntry:
    """One pre-resolved configuration of a bundle, ready to match."""

    option: TuningOption
    variable_assignment: Mapping[str, float]
    grants: Mapping[str, float]
    demands: ConcreteDemands
    extra_memory: Mapping[str, float]


class ConfigurationCache:
    """Memoizes each bundle's resolved configuration space.

    A bundle's space — every (option, variable assignment, memory grants)
    triple with its instantiated demands — depends only on the RSL, never
    on cluster state, so it is computed once per bundle and reused by
    every enumeration: initial configuration, re-evaluation sweeps, the
    pairwise pass.  Only *matching* (which reads live reservations and
    load ordering) runs per call.

    The elastic-memory probe (:func:`_best_memory_for`) is memoized here
    too, and — when the probed grant cannot change the option's node
    structure — evaluated directly on the link/communication expressions
    instead of fully re-instantiating the option per probed value.
    """

    def __init__(self) -> None:
        self.instantiations = InstantiationCache()
        self._spaces: dict[tuple[int, int],
                           tuple[Bundle, list[ConfigurationEntry]]] = {}
        self._memory_probes: dict[tuple, float | None] = {}
        self.space_hits = 0
        self.space_misses = 0
        self.probe_hits = 0
        self.probe_misses = 0

    def snapshot(self) -> dict[str, int]:
        """Hit/miss counters, for the telemetry layer."""
        return {"space_hits": self.space_hits,
                "space_misses": self.space_misses,
                "probe_hits": self.probe_hits,
                "probe_misses": self.probe_misses}

    def space_for(self, bundle: Bundle,
                  probe_limit: int) -> list[ConfigurationEntry]:
        key = (id(bundle), probe_limit)
        hit = self._spaces.get(key)
        if hit is not None:
            self.space_hits += 1
            return hit[1]
        self.space_misses += 1
        entries: list[ConfigurationEntry] = []
        for option in bundle.options:
            for variable_assignment in option.variable_assignments():
                try:
                    base = self.instantiations.instantiate(
                        option, variable_assignment)
                except RslSemanticError:
                    continue
                for grants in _memory_grant_choices(option, base,
                                                    probe_limit, cache=self):
                    try:
                        demands = base if not grants else \
                            self.instantiations.instantiate(
                                option, variable_assignment, grants=grants)
                    except RslSemanticError:
                        continue
                    entries.append(ConfigurationEntry(
                        option=option,
                        variable_assignment=dict(variable_assignment),
                        grants=dict(grants),
                        demands=demands,
                        extra_memory=_extra_memory(demands, grants)))
        self._spaces[key] = (bundle, entries)
        return entries

    def peek_space_len(self, bundle: Bundle, probe_limit: int) -> int:
        """Size of a bundle's cached space without computing it (0 when
        never enumerated).  Used for pruned-candidate accounting — a skip
        must not itself pay the enumeration it avoided."""
        hit = self._spaces.get((id(bundle), probe_limit))
        return len(hit[1]) if hit is not None and hit[0] is bundle else 0

    def best_memory_for(self, option: TuningOption, base: ConcreteDemands,
                        demand: NodeDemand,
                        span_mb: float = 64.0) -> float | None:
        key = (id(option),
               tuple(sorted(base.variable_assignment.items())),
               demand.local_name, span_mb)
        if key in self._memory_probes:
            self.probe_hits += 1
            return self._memory_probes[key]
        self.probe_misses += 1
        grant_key = f"{demand.local_name}.memory"
        if _grant_affects_nodes(option, grant_key):
            best = _best_memory_for(option, base, demand, span_mb)
        else:
            best = _best_memory_by_expression(option, base, demand, span_mb)
        self._memory_probes[key] = best
        return best


def enumerate_candidates(instance: AppInstance, state: BundleState,
                         context: OptimizationContext,
                         extra_ignore_holders: frozenset[str] = frozenset(),
                         ordering_view: SystemView | None = None,
                         ) -> Iterator[Candidate]:
    """Yield every matchable configuration of ``state``'s bundle.

    The application's own current reservations are ignored while matching
    (``ignore_holders``), so it can re-use the resources it currently
    holds.  Placements prefer the least CPU-loaded nodes as seen without
    this application — by default computed directly from the context view
    with the application's own footprint subtracted, so no per-bundle view
    copy is needed; ``ordering_view`` overrides that (the pairwise search
    orders against partially-built trial states).
    """
    ignore = frozenset({bundle_holder(instance, state)}) \
        | extra_ignore_holders
    if ordering_view is not None:
        order_key = _load_order_key(ordering_view)
    else:
        order_key = _load_order_key(context.view,
                                    exclude_apps=(instance.key,))
    stats = context.stats
    if context.cache is not None:
        with context.tracer.span("optimizer.configuration_space",
                                 bundle=state.bundle.bundle_name) as span:
            entries = context.cache.space_for(state.bundle,
                                              context.memory_probe_limit)
            span.set("entries", len(entries))
        for entry in entries:
            if stats is not None:
                stats.match_calls += 1
            try:
                assignment = context.matcher.match(
                    entry.demands, extra_memory=entry.extra_memory,
                    ignore_holders=ignore, order_key=order_key)
            except AllocationError:
                continue
            yield Candidate(option_name=entry.option.name,
                            variable_assignment=dict(
                                entry.variable_assignment),
                            memory_grants=dict(entry.grants),
                            demands=entry.demands,
                            assignment=assignment)
        return
    for option in state.bundle.options:
        for variable_assignment in option.variable_assignments():
            yield from _candidates_for_assignment(
                option, dict(variable_assignment), context, ignore,
                order_key, stats)


def _load_order_key(view: SystemView,
                    exclude_apps: tuple[str, ...] = ()):
    """Prefer idle nodes; among equally loaded ones, prefer faster nodes.

    Load includes measured external consumers, so candidates also spread
    away from work Harmony does not manage.  ``exclude_apps`` subtracts
    the named applications' own demands from the per-node counts —
    equivalent to (but cheaper than) copying the view and removing them.
    """
    excluded: dict[str, int] = {}
    for app_key in exclude_apps:
        footprint = view.footprint_of(app_key)
        if footprint is None:
            continue
        for hostname, seconds in footprint.cpu.items():
            excluded[hostname] = excluded.get(hostname, 0) + len(seconds)
    # Lazily memoized: pattern-restricted matching only ever asks about
    # the hosts a bundle can reach, so eagerly scoring the whole cluster
    # would dominate per-bundle cost on large topologies.
    keys: dict[str, tuple[float, float]] = {}

    def order_key(hostname: str) -> tuple[float, float]:
        hit = keys.get(hostname)
        if hit is None:
            try:
                speed = view.cluster.node(hostname).speed
            except SimulationError:
                keys[hostname] = (0.0, 0.0)
                return keys[hostname]
            load = (float(view.cpu_consumers(hostname)
                          - excluded.get(hostname, 0))
                    + view.external_cpu_load(hostname))
            hit = keys[hostname] = (load, -speed)
        return hit

    return order_key


def _candidates_for_assignment(option: TuningOption,
                               variable_assignment: dict[str, float],
                               context: OptimizationContext,
                               ignore_holders: frozenset[str],
                               order_key,
                               stats: "OptimizerStats | None" = None,
                               ) -> Iterator[Candidate]:
    try:
        base = instantiate_option(option, variable_assignment)
    except RslSemanticError:
        return
    for grants in _memory_grant_choices(option, base,
                                        context.memory_probe_limit):
        if stats is not None:
            stats.match_calls += 1
        try:
            demands = (base if not grants
                       else instantiate_option(option, variable_assignment,
                                               grants=grants))
            assignment = context.matcher.match(
                demands, extra_memory=_extra_memory(demands, grants),
                ignore_holders=ignore_holders, order_key=order_key)
        except (AllocationError, RslSemanticError):
            continue
        yield Candidate(option_name=option.name,
                        variable_assignment=dict(variable_assignment),
                        memory_grants=dict(grants),
                        demands=demands,
                        assignment=assignment)


def _extra_memory(demands: ConcreteDemands,
                  grants: Mapping[str, float]) -> dict[str, float]:
    extra: dict[str, float] = {}
    for demand in demands.nodes:
        granted = grants.get(f"{demand.local_name}.memory")
        if granted is not None and granted > demand.memory_min_mb:
            extra[demand.local_name] = granted - demand.memory_min_mb
    return extra


def _memory_grant_choices(option: TuningOption, base: ConcreteDemands,
                          probe_limit: int,
                          cache: ConfigurationCache | None = None,
                          ) -> Iterator[dict[str, float]]:
    """Enumerate elastic-memory grants worth considering.

    The controller gives extra memory only when it changes something it can
    see — i.e. when a link/communication expression depends on the node's
    memory (Figure 3's data-shipping bandwidth).  For each such node we probe
    integer memory values above the minimum and keep the earliest value that
    minimizes total traffic; the choices offered are then {minimum} and
    {minimum with that node boosted}.
    """
    yield {}
    dependent = _memory_dependent_demands(option, base)
    for demand in dependent[:probe_limit]:
        if cache is not None:
            best = cache.best_memory_for(option, base, demand)
        else:
            best = _best_memory_for(option, base, demand)
        if best is not None and best > demand.memory_min_mb:
            yield {f"{demand.local_name}.memory": best}


def _memory_dependent_demands(option: TuningOption, base: ConcreteDemands,
                              ) -> list[NodeDemand]:
    referenced: set[str] = set()
    for link in option.links:
        referenced |= link.megabytes.free_variables()
    if option.communication is not None:
        referenced |= option.communication.megabytes.free_variables()
    wanted = []
    for demand in base.nodes:
        if demand.memory_elastic and \
                f"{demand.local_name}.memory" in referenced:
            wanted.append(demand)
    return wanted


def _best_memory_for(option: TuningOption, base: ConcreteDemands,
                     demand: NodeDemand, span_mb: float = 64.0,
                     ) -> float | None:
    """Probe integer memory values; return the cheapest-traffic one."""
    low = int(math.ceil(demand.memory_min_mb))
    high = int(min(demand.memory_max_mb, demand.memory_min_mb + span_mb))
    best_memory: float | None = None
    best_traffic = math.inf
    key = f"{demand.local_name}.memory"
    for memory in range(low, high + 1):
        try:
            probed = instantiate_option(option, base.variable_assignment,
                                        grants={key: float(memory)})
        except RslSemanticError:
            continue
        traffic = probed.total_traffic_mb()
        if traffic < best_traffic - 1e-9:
            best_traffic = traffic
            best_memory = float(memory)
    return best_memory


def _grant_affects_nodes(option: TuningOption, grant_key: str) -> bool:
    """Whether a memory grant can alter the option's node demands.

    When a node's replicate count, CPU seconds, or memory bounds reference
    the granted name, probing it needs full re-instantiation; otherwise
    only link/communication expressions can change.
    """
    for requirement in option.nodes:
        for quantity in (requirement.replicate, requirement.seconds,
                         requirement.memory):
            if quantity is not None and \
                    grant_key in quantity.free_variables():
                return True
    return False


def _best_memory_by_expression(option: TuningOption, base: ConcreteDemands,
                               demand: NodeDemand, span_mb: float = 64.0,
                               ) -> float | None:
    """The memory probe without per-value re-instantiation.

    Valid only when the grant cannot affect node demands
    (:func:`_grant_affects_nodes` is false): the node set is then fixed,
    and total traffic is the sum of the link/communication expressions
    under an environment where only the probed grant varies.  Replicates
    the exhaustive probe's exact semantics — same scan range, same
    earliest-strict-improvement rule, same skip-on-semantic-error —
    and therefore returns the identical value.
    """
    low = int(math.ceil(demand.memory_min_mb))
    high = int(min(demand.memory_max_mb, demand.memory_min_mb + span_mb))
    key = f"{demand.local_name}.memory"
    env_values = dict(base.variable_assignment)
    for node in base.nodes:
        env_values.setdefault(f"{node.local_name}.memory",
                              node.memory_granted(None))
    best_memory: float | None = None
    best_traffic = math.inf
    for memory in range(low, high + 1):
        env_values[key] = float(memory)
        env = MapEnvironment(env_values)
        traffic = 0.0
        try:
            for link in option.links:
                total_mb = link.megabytes.value(env)
                if total_mb < 0:
                    raise RslSemanticError(
                        f"link {link.endpoint_a}-{link.endpoint_b}: "
                        f"negative traffic {total_mb}")
                traffic += total_mb
            if option.communication is not None:
                communication_mb = option.communication.megabytes.value(env)
                if communication_mb < 0:
                    raise RslSemanticError(
                        f"communication: negative traffic "
                        f"{communication_mb}")
                traffic += communication_mb
        except RslSemanticError:
            continue
        if traffic < best_traffic - 1e-9:
            best_traffic = traffic
            best_memory = float(memory)
    return best_memory


@dataclass
class OptimizationResult:
    """Best candidate found for one bundle, with search statistics.

    ``evaluated`` holds every scored candidate (``best`` is one of them,
    by identity) so decision traces can record the alternatives the
    winner beat.
    """

    best: Candidate | None
    candidates_evaluated: int = 0
    current_objective: float = math.inf
    evaluated: list[Candidate] = field(default_factory=list)


class GreedyOptimizer:
    """The paper's one-bundle-at-a-time greedy search.

    :meth:`optimize_pair` extends it with a joint search over *two* bundles
    at once.  Pure coordinate descent cannot reach the equal partitions of
    the paper's Figure 4(b) — from a (5 nodes, 3 nodes) split neither app
    improves alone, but (4, 4) is globally better — while a pairwise
    exchange pass finds them.  This is the concrete form of the paper's
    "allocation decisions that require running applications to be
    reconfigured".
    """

    def optimize_pair(self, first: tuple[AppInstance, BundleState],
                      second: tuple[AppInstance, BundleState],
                      context: OptimizationContext,
                      ) -> tuple[Candidate, Candidate, float] | None:
        """Jointly choose configurations for two bundles.

        Returns ``(candidate_first, candidate_second, objective)`` for the
        best feasible combination, or ``None`` when either side has no
        feasible candidate.
        """
        with context.tracer.span("optimizer.optimize_pair",
                                 first=first[0].key,
                                 second=second[0].key):
            if context.engine is not None:
                return self._optimize_pair_incremental(first, second,
                                                       context)
            return self._optimize_pair_naive(first, second, context)

    def _optimize_pair_naive(self, first: tuple[AppInstance, BundleState],
                             second: tuple[AppInstance, BundleState],
                             context: OptimizationContext,
                             ) -> tuple[Candidate, Candidate, float] | None:
        instance_a, state_a = first
        instance_b, state_b = second
        ignore = frozenset({bundle_holder(instance_a, state_a),
                            bundle_holder(instance_b, state_b)})
        base_view = context.view.copy()
        base_view.remove(instance_a.key)
        base_view.remove(instance_b.key)
        candidates_a = list(enumerate_candidates(
            instance_a, state_a, context, extra_ignore_holders=ignore,
            ordering_view=base_view))
        if not candidates_a:
            return None

        best: tuple[Candidate, Candidate, float] | None = None
        for cand_a in candidates_a:
            # Re-enumerate the second bundle with the first candidate
            # placed, so its placements spread away from cand_a's nodes.
            view_with_a = base_view.copy()
            view_with_a.place(instance_a.key, cand_a.demands,
                              cand_a.assignment)
            for cand_b in enumerate_candidates(
                    instance_b, state_b, context,
                    extra_ignore_holders=ignore,
                    ordering_view=view_with_a):
                if not _pair_memory_ok(context.view.cluster, ignore,
                                       cand_a, cand_b):
                    continue
                if context.stats is not None:
                    context.stats.candidates_evaluated += 1
                trial_view = view_with_a.copy()
                trial_view.place(instance_b.key, cand_b.demands,
                                 cand_b.assignment)
                predictions = context.predict_all(trial_view)
                objective = context.objective.evaluate(predictions)
                if best is None or objective < best[2] - 1e-12:
                    copy_a = cand_a.clone()
                    copy_b = cand_b.clone()
                    copy_a.objective_value = objective
                    copy_b.objective_value = objective
                    copy_a.predicted_seconds = predictions.get(
                        instance_a.key, math.inf)
                    copy_b.predicted_seconds = predictions.get(
                        instance_b.key, math.inf)
                    best = (copy_a, copy_b, objective)
        return best

    def _optimize_pair_incremental(
            self, first: tuple[AppInstance, BundleState],
            second: tuple[AppInstance, BundleState],
            context: OptimizationContext,
            ) -> tuple[Candidate, Candidate, float] | None:
        """Joint two-bundle search by trial-and-rollback on the live view."""
        from repro.controller.trial import ViewTrial

        engine = context.engine
        assert engine is not None
        instance_a, state_a = first
        instance_b, state_b = second
        ignore = frozenset({bundle_holder(instance_a, state_a),
                            bundle_holder(instance_b, state_b)})
        live = engine.live_predictions()
        best: tuple[Candidate, Candidate, float] | None = None
        with ViewTrial(context.view) as outer:
            outer.remove(instance_a.key)
            outer.remove(instance_b.key)
            base_removed = engine.trial_predictions(live, outer.tokens)
            candidates_a = list(enumerate_candidates(
                instance_a, state_a, context, extra_ignore_holders=ignore))
            if not candidates_a:
                return None
            for cand_a in candidates_a:
                with ViewTrial(context.view) as with_a:
                    with_a.place(instance_a.key, cand_a.demands,
                                 cand_a.assignment)
                    base_a = engine.trial_predictions(base_removed,
                                                      with_a.tokens)
                    for cand_b in enumerate_candidates(
                            instance_b, state_b, context,
                            extra_ignore_holders=ignore):
                        if not _pair_memory_ok(context.view.cluster, ignore,
                                               cand_a, cand_b):
                            continue
                        if context.stats is not None:
                            context.stats.candidates_evaluated += 1
                        with ViewTrial(context.view) as with_b:
                            with_b.place(instance_b.key, cand_b.demands,
                                         cand_b.assignment)
                            predictions = engine.trial_predictions(
                                base_a, with_b.tokens)
                        objective = context.objective.evaluate(predictions)
                        if best is None or objective < best[2] - 1e-12:
                            copy_a = cand_a.clone()
                            copy_b = cand_b.clone()
                            copy_a.objective_value = objective
                            copy_b.objective_value = objective
                            copy_a.predicted_seconds = predictions.get(
                                instance_a.key, math.inf)
                            copy_b.predicted_seconds = predictions.get(
                                instance_b.key, math.inf)
                            best = (copy_a, copy_b, objective)
        return best

    def optimize_bundle(self, instance: AppInstance, state: BundleState,
                        context: OptimizationContext) -> OptimizationResult:
        """Pick the configuration of this bundle minimizing the objective,
        holding every other application (and bundle) fixed."""
        with context.tracer.span("optimizer.optimize_bundle",
                                 app=instance.key,
                                 bundle=state.bundle.bundle_name) as span:
            if context.engine is not None:
                result = self._optimize_bundle_incremental(instance, state,
                                                           context)
            else:
                result = self._optimize_bundle_naive(instance, state,
                                                     context)
            span.set("candidates_evaluated", result.candidates_evaluated)
            if result.best is not None:
                span.set("chosen", result.best.option_name)
            return result

    def _optimize_bundle_naive(self, instance: AppInstance,
                               state: BundleState,
                               context: OptimizationContext,
                               ) -> OptimizationResult:
        current_objective = context.objective.evaluate(
            context.predict_all(context.view))

        best: Candidate | None = None
        evaluated: list[Candidate] = []
        for candidate in enumerate_candidates(instance, state, context):
            evaluated.append(candidate)
            trial_view = context.view.copy()
            trial_view.place(instance.key, candidate.demands,
                             candidate.assignment)
            predictions = context.predict_all(trial_view)
            candidate.objective_value = context.objective.evaluate(predictions)
            candidate.predicted_seconds = predictions.get(
                instance.key, math.inf)
            if best is None or \
                    candidate.objective_value < best.objective_value - 1e-12:
                best = candidate
        if context.stats is not None:
            context.stats.candidates_evaluated += len(evaluated)
        return OptimizationResult(best=best,
                                  candidates_evaluated=len(evaluated),
                                  current_objective=current_objective,
                                  evaluated=evaluated)

    def _optimize_bundle_incremental(
            self, instance: AppInstance, state: BundleState,
            context: OptimizationContext) -> OptimizationResult:
        """Same search, scored by trial-and-rollback plus delta prediction."""
        from repro.controller.trial import ViewTrial

        engine = context.engine
        assert engine is not None
        live = engine.live_predictions()
        current_objective = context.objective.evaluate(live)

        best: Candidate | None = None
        evaluated: list[Candidate] = []
        for candidate in enumerate_candidates(instance, state, context):
            evaluated.append(candidate)
            with ViewTrial(context.view) as trial:
                trial.place(instance.key, candidate.demands,
                            candidate.assignment)
                predictions = engine.trial_predictions(live, trial.tokens)
            candidate.objective_value = context.objective.evaluate(
                predictions)
            candidate.predicted_seconds = predictions.get(
                instance.key, math.inf)
            if best is None or \
                    candidate.objective_value < best.objective_value - 1e-12:
                best = candidate
        if context.stats is not None:
            context.stats.candidates_evaluated += len(evaluated)
        return OptimizationResult(best=best,
                                  candidates_evaluated=len(evaluated),
                                  current_objective=current_objective,
                                  evaluated=evaluated)


class ExhaustiveOptimizer:
    """Joint search over all applications' configurations (ablation only).

    Searches the cross-product of candidate lists, one per (instance,
    bundle).  ``max_combinations`` guards against explosion; the search
    raises when exceeded so callers notice rather than silently truncate.
    """

    def __init__(self, max_combinations: int = 200_000):
        self.max_combinations = max_combinations

    def optimize_all(self, instances: list[AppInstance],
                     context: OptimizationContext,
                     ) -> tuple[dict[str, Candidate], float, int]:
        """Returns (choice per app key, objective, combinations tried)."""
        per_app: list[tuple[AppInstance, BundleState, list[Candidate]]] = []
        for instance in instances:
            for state in instance.bundles.values():
                candidates = list(enumerate_candidates(
                    instance, state, context))
                if not candidates:
                    raise AllocationError(
                        f"{instance.key}: no feasible configuration for "
                        f"bundle {state.bundle.bundle_name!r}")
                per_app.append((instance, state, candidates))

        total = math.prod(len(c) for _, _, c in per_app) if per_app else 0
        if total > self.max_combinations:
            raise AllocationError(
                f"exhaustive search space {total} exceeds cap "
                f"{self.max_combinations}")

        if context.engine is not None:
            return self._search_incremental(per_app, context)

        best_choice: dict[str, Candidate] = {}
        best_objective = math.inf
        combinations = 0
        for combo in itertools.product(*(c for _, _, c in per_app)):
            combinations += 1
            trial_view = context.view.copy()
            feasible = True
            usage: dict[str, float] = {}
            for (instance, _state, _), candidate in zip(per_app, combo):
                if not _memory_feasible(trial_view, candidate, usage):
                    feasible = False
                    break
                trial_view.place(instance.key, candidate.demands,
                                 candidate.assignment)
            if not feasible:
                continue
            if context.stats is not None:
                context.stats.candidates_evaluated += 1
            objective = context.objective.evaluate(
                context.predict_all(trial_view))
            if objective < best_objective - 1e-12:
                best_objective = objective
                best_choice = {
                    instance.key: candidate
                    for (instance, _s, _c), candidate in zip(per_app, combo)
                }
        return best_choice, best_objective, combinations

    def _search_incremental(
            self,
            per_app: list[tuple[AppInstance, BundleState, list[Candidate]]],
            context: OptimizationContext,
            ) -> tuple[dict[str, Candidate], float, int]:
        """Cross-product search via trial-and-rollback on the live view."""
        from repro.controller.trial import ViewTrial

        engine = context.engine
        assert engine is not None
        live = engine.live_predictions()
        best_choice: dict[str, Candidate] = {}
        best_objective = math.inf
        combinations = 0
        for combo in itertools.product(*(c for _, _, c in per_app)):
            combinations += 1
            feasible = True
            usage: dict[str, float] = {}
            for (_instance, _state, _), candidate in zip(per_app, combo):
                if not _memory_feasible(context.view, candidate, usage):
                    feasible = False
                    break
            if not feasible:
                continue
            if context.stats is not None:
                context.stats.candidates_evaluated += 1
            with ViewTrial(context.view) as trial:
                for (instance, _state, _), candidate in zip(per_app, combo):
                    trial.place(instance.key, candidate.demands,
                                candidate.assignment)
                predictions = engine.trial_predictions(live, trial.tokens)
            objective = context.objective.evaluate(predictions)
            if objective < best_objective - 1e-12:
                best_objective = objective
                best_choice = {
                    instance.key: candidate
                    for (instance, _s, _c), candidate in zip(per_app, combo)
                }
        return best_choice, best_objective, combinations


def _pair_memory_ok(cluster, ignore_holders: frozenset[str],
                    cand_a: Candidate, cand_b: Candidate) -> bool:
    """Joint memory check for a candidate pair against the live cluster.

    Each candidate matched individually (its own holder ignored); the pair
    must also fit *together*: per node, both claims plus everyone else's
    live reservations must not exceed total memory.
    """
    claims: dict[str, float] = {}
    for candidate in (cand_a, cand_b):
        for demand in candidate.demands.nodes:
            hostname = candidate.assignment.hostname_of(demand.local_name)
            granted = demand.memory_granted(candidate.memory_grants)
            claims[hostname] = claims.get(hostname, 0.0) + granted
    for hostname, claim in claims.items():
        node = cluster.node(hostname)
        free = node.memory.available_mb
        for holder in ignore_holders:
            free += node.memory.held_by(holder)
        if claim > free + 1e-9:
            return False
    return True


def _memory_feasible(view: SystemView, candidate: Candidate,
                     usage: dict[str, float]) -> bool:
    """Joint memory check across a combination under construction.

    Per-candidate matching verified memory against the *live* cluster, but a
    joint assignment must not oversubscribe a node across candidates.
    ``usage`` accumulates MB already claimed by earlier combo members.
    """
    cluster = view.cluster
    claims: dict[str, float] = {}
    for demand in candidate.demands.nodes:
        hostname = candidate.assignment.hostname_of(demand.local_name)
        granted = demand.memory_granted(candidate.memory_grants)
        claims[hostname] = claims.get(hostname, 0.0) + granted
    for hostname, claim in claims.items():
        node = cluster.node(hostname)
        total_free = node.memory.total_mb  # joint check from a blank slate
        if usage.get(hostname, 0.0) + claim > total_free + 1e-9:
            return False
    for hostname, claim in claims.items():
        usage[hostname] = usage.get(hostname, 0.0) + claim
    return True
