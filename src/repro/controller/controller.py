"""The Harmony adaptation controller (paper Sections 2, 4 and 5).

"The adaptation controller is the heart of the system.  The controller must
gather relevant information about both the applications and the environment,
project the effects of proposed changes ... and weigh competing costs and
expected benefits of making various changes."

:class:`AdaptationController` ties everything together:

* applications register (:meth:`register_app`) and export bundles
  (:meth:`setup_bundle`), receiving a system-chosen instance id;
* the controller matches, allocates, and chooses configurations through a
  pluggable :class:`DecisionPolicy` — the default
  :class:`ModelDrivenPolicy` runs the paper's greedy objective optimization,
  :class:`~repro.controller.policies.ClientCountRulePolicy` reproduces the
  "simple rule" used for the paper's Figure 7 experiment;
* choices are published into the hierarchical namespace and pushed to
  reconfiguration listeners (the client library's variable mechanism);
* a periodic process re-evaluates all bundles "to adapt the system due to
  changes out of Harmony's control".
"""

from __future__ import annotations

import math
import time as _time
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping, Sequence

from repro.allocation.allocation import allocate
from repro.allocation.matcher import Matcher, MatchStrategy
from repro.cluster.kernel import Interrupted, Process
from repro.cluster.topology import Cluster
from repro.controller.friction import FrictionPolicy
from repro.controller.objective import MeanResponseTime, Objective
from repro.controller.optimizer import (
    Candidate,
    ConfigurationCache,
    GreedyOptimizer,
    OptimizationContext,
)
from repro.controller.parallel import ParallelSweepExecutor
from repro.controller.partition import (
    GainPriorityQueue,
    PartitionIndex,
    bundle_key,
)
from repro.controller.registry import (
    AppInstance,
    ApplicationRegistry,
    BundleState,
    ChosenConfiguration,
)
from repro.controller.trial import OptimizerStats, TrialEngine
from repro.errors import AllocationError, ControllerError
from repro.metrics import MetricInterface
from repro.namespace import Namespace
from repro.obs.flightrec import EVENT_EVICTION, FlightRecorder
from repro.obs.instrument import Telemetry
from repro.obs.trace import (
    NULL_TRACER,
    REJECT_WORSE_OBJECTIVE,
    CandidateTrace,
    DecisionTrace,
    DecisionTraceLog,
)
from repro.prediction.contention import PlacedConfiguration, SystemView
from repro.prediction.models import (
    DefaultModel,
    ExplicitSpecModel,
    ExpressionSpecModel,
    PerformanceModel,
)
from repro.rsl import Bundle, build_bundle

__all__ = ["AdaptationController", "DecisionRecord", "ReconfigurationEvent",
           "SessionLifecycleEvent", "ModelDrivenPolicy", "DecisionPolicy",
           "candidate_traces"]


@dataclass(frozen=True)
class DecisionRecord:
    """One controller decision, for logs, tests and the Figure 4 bench."""

    time: float
    app_key: str
    bundle_name: str
    old_configuration: str | None
    new_configuration: str
    reason: str
    objective_before: float
    objective_after: float


@dataclass(frozen=True)
class ReconfigurationEvent:
    """Pushed to listeners when an application's choice changes."""

    time: float
    app_key: str
    bundle_name: str
    option_name: str
    variable_assignment: Mapping[str, float]
    placements: Mapping[str, str]
    memory_grants: Mapping[str, float]


@dataclass(frozen=True)
class SessionLifecycleEvent:
    """One structured session-lifecycle transition in the controller.

    ``kind`` is one of ``registered``, ``rejoined``, ``ended``, or
    ``evicted``; ``detail`` carries the human-readable reason (for an
    eviction, why the session was removed).  The controller appends these
    to :attr:`AdaptationController.lifecycle_log` so operators can
    reconstruct exactly when each application joined, crashed, was
    cleaned up, or came back.
    """

    time: float
    app_key: str
    kind: str
    detail: str = ""


class DecisionPolicy:
    """Strategy interface for choosing configurations."""

    def configure_new_bundle(self, controller: "AdaptationController",
                             instance: AppInstance,
                             state: BundleState) -> None:
        raise NotImplementedError

    def reevaluate(self, controller: "AdaptationController") -> int:
        """Re-decide every bundle; returns the number of changes applied."""
        raise NotImplementedError


class ModelDrivenPolicy(DecisionPolicy):
    """The paper's objective-optimizing policy (Section 4.3).

    ``pairwise_exchange`` enables a joint two-bundle improvement pass after
    the per-bundle greedy sweep.  Coordinate descent alone cannot reach the
    equal partitions of the paper's Figure 4(b) (a (5, 3) node split is a
    local optimum even when (4, 4) is globally better); the pairwise pass
    realizes the paper's "allocation decisions that require running
    applications to be reconfigured".  ``max_pairwise_bundles`` caps the
    quadratic pass.
    """

    def __init__(self, optimizer: GreedyOptimizer | None = None,
                 pairwise_exchange: bool = True,
                 max_pairwise_bundles: int = 12,
                 top_k_bundles: int | None = None):
        self.optimizer = optimizer or GreedyOptimizer()
        self.pairwise_exchange = pairwise_exchange
        self.max_pairwise_bundles = max_pairwise_bundles
        #: Evaluate at most this many bundles per partitioned sweep,
        #: picked by last observed gain (the rest stay dirty for later
        #: sweeps).  ``None`` — the default, and the only setting the
        #: equivalence guarantees cover — evaluates every dirty bundle.
        self.top_k_bundles = top_k_bundles
        self.gain_queue = GainPriorityQueue()

    def configure_new_bundle(self, controller: "AdaptationController",
                             instance: AppInstance,
                             state: BundleState) -> None:
        result = self.optimizer.optimize_bundle(
            instance, state, controller.optimization_context())
        if result.best is None:
            raise AllocationError(
                f"{instance.key}: no feasible configuration for bundle "
                f"{state.bundle.bundle_name!r}")
        controller.apply_candidate(
            instance, state, result.best,
            reason="initial",
            objective_before=result.current_objective,
            trace_candidates=candidate_traces(
                controller, state, result.evaluated, result.best,
                result.current_objective))

    def reevaluate(self, controller: "AdaptationController") -> int:
        index = controller.partition_index
        if index is not None:
            changes = self._sweep_partitioned(controller, index)
        else:
            changes = 0
            # "we simply iterate through the list of active applications
            # and within each application through the list of options"
            for instance in controller.registry.instances():
                for state in instance.bundles.values():
                    if self._reevaluate_bundle(controller, instance,
                                               state):
                        changes += 1
        if self.pairwise_exchange:
            # Deliberately global and unrestricted: two sub-threshold
            # single-bundle gains can jointly cross the hysteresis bound,
            # and the pair's friction amortizes over the *joint* response
            # — neither decomposes by partition.  The pass self-disables
            # above ``max_pairwise_bundles``, so it costs nothing at the
            # scales where partitioning matters.
            changes += self._pairwise_pass(controller)
        return changes

    def _sweep_partitioned(self, controller: "AdaptationController",
                           index: PartitionIndex) -> int:
        """Registry-order sweep with per-bundle clean-skip.

        Iterates bundles in exactly the serial order — partitions only
        decide *skips*, never ordering — so the decision log is
        byte-identical to the serial oracle even when registrations
        interleave partitions.  A bundle is skipped when its partition's
        epoch watermark proves its last no-op evaluation still holds
        (see :class:`~repro.controller.partition.PartitionIndex`).
        Independent partitions fan out to the process pool first when a
        :class:`~repro.controller.parallel.ParallelSweepExecutor` is
        attached; their proposals are then merged in the same global
        registry order.
        """
        index.refresh()
        stats = controller.stats
        stats.partition_sweeps += 1
        prune = index.prunable(controller.objective)
        entries = [(instance, state)
                   for instance in controller.registry.instances()
                   for state in instance.bundles.values()]
        keys = [bundle_key(instance, state) for instance, state in entries]
        if self.top_k_bundles is not None:
            selected, _ = self.gain_queue.select(keys, self.top_k_bundles)
            selected_set: set | None = set(selected)
        else:
            selected_set = None
        pool = controller.parallel_executor
        pool_result = None
        if pool is not None and prune and selected_set is None:
            # top-k selection changes which bundles run, which the pool's
            # partition snapshots cannot express — pooling stands down.
            pool_result = pool.sweep_partitions(index, entries, keys)
        changes = 0
        #: pid -> [elapsed, evaluated, changed, skipped]
        activity: dict[int, list] = {}
        for (instance, state), key in zip(entries, keys):
            part = index.partition_of(key)
            pid = part.pid if part is not None else 0
            cell = activity.setdefault(pid, [0.0, 0, 0, 0])
            if (selected_set is not None and key not in selected_set) or \
                    (prune and index.is_clean(key)):
                stats.pruned_bundles += 1
                stats.pruned_candidates += index.candidate_count(state)
                cell[3] += 1
                continue
            start = _time.perf_counter()
            if pool_result is not None and pid in pool_result.pooled_pids:
                changed, stable, gain = pool.merge_one(
                    controller, self, instance, state, key, pool_result)
            else:
                changed, stable, gain, _ = self._reevaluate_bundle_outcome(
                    controller, instance, state)
            cell[0] += _time.perf_counter() - start
            cell[1] += 1
            if changed:
                changes += 1
                cell[2] += 1
            elif stable and prune:
                index.mark_clean(key)
            if gain is not None:
                self.gain_queue.record(key, gain)
        tracer = controller.tracer
        if tracer.enabled:
            end = tracer.elapsed()
            for pid, (elapsed, evaluated, changed, skipped) in \
                    sorted(activity.items()):
                if evaluated == 0 and skipped == 0:
                    continue
                part = index._parts.get(pid)
                tracer.record_span(
                    "optimizer.partition_sweep",
                    max(0.0, end - elapsed), elapsed,
                    partition=pid,
                    size=len(part.members) if part is not None else 0,
                    evaluated=evaluated, changes=changed, pruned=skipped)
        controller.metrics.report("optimizer.partitions", controller.now,
                                  float(index.partition_count))
        return changes

    def _pairwise_pass(self, controller: "AdaptationController") -> int:
        """One joint-improvement sweep over all bundle pairs."""
        entries: list[tuple] = []
        for instance in controller.registry.instances():
            for state in instance.bundles.values():
                if state.chosen is not None:
                    entries.append((instance, state))
        if len(entries) < 2 or len(entries) > self.max_pairwise_bundles:
            return 0
        changes = 0
        now = controller.now
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                first, second = entries[i], entries[j]
                if not (first[1].granularity_allows_switch(now)
                        and second[1].granularity_allows_switch(now)):
                    continue
                context = controller.optimization_context()
                current = controller.current_objective()
                best = self.optimizer.optimize_pair(first, second, context)
                if best is None:
                    continue
                cand_a, cand_b, objective = best
                if _same_configuration(first[1], cand_a) and \
                        _same_configuration(second[1], cand_b):
                    continue
                friction = (
                    controller.friction_cost(first[1], cand_a.option_name)
                    + controller.friction_cost(second[1],
                                               cand_b.option_name))
                decision = controller.friction_policy.evaluate(
                    current_objective=current,
                    candidate_objective=objective,
                    friction_cost_seconds=friction,
                    candidate_response_seconds=min(
                        cand_a.predicted_seconds, cand_b.predicted_seconds))
                if not decision:
                    continue
                if not _same_configuration(first[1], cand_a):
                    controller.apply_candidate(
                        first[0], first[1], cand_a,
                        reason="pairwise exchange",
                        objective_before=current)
                    changes += 1
                if not _same_configuration(second[1], cand_b):
                    controller.apply_candidate(
                        second[0], second[1], cand_b,
                        reason="pairwise exchange",
                        objective_before=current)
                    changes += 1
        return changes

    def _reevaluate_bundle(self, controller: "AdaptationController",
                           instance: AppInstance,
                           state: BundleState) -> bool:
        return self._reevaluate_bundle_outcome(controller, instance,
                                               state)[0]

    def _reevaluate_bundle_outcome(
            self, controller: "AdaptationController",
            instance: AppInstance, state: BundleState,
            ) -> tuple[bool, bool, float | None, Candidate | None]:
        """Evaluate one bundle; returns ``(changed, stable, gain,
        applied)``.

        ``applied`` is the candidate put live when ``changed`` (the
        parallel executor ships it back from worker processes as a
        proposal), ``None`` otherwise.

        ``stable`` asserts the no-change outcome would recur if nothing
        in this bundle's partition changes — even while *other*
        partitions improve — so a clean watermark may be recorded (for a
        decomposable objective).  True for: no feasible candidate, best
        equals current (candidate ranking is invariant under equal
        shifts), rejection with gain <= 0 (sign-invariant), and
        friction-amortization rejections (gain, response, and friction
        are all partition-local).  False for: granularity-blocked
        outcomes (time-dependent) and hysteresis rejections (the
        relative-gain denominator is the *global* objective, so another
        partition's improvement can tip them over the threshold).
        """
        now = controller.now
        if state.chosen is None:
            return False, True, None, None
        if not state.granularity_allows_switch(now):
            return False, False, None, None
        context = controller.optimization_context()
        result = self.optimizer.optimize_bundle(instance, state, context)
        best = result.best
        if best is None:
            return False, True, 0.0, None
        if best.option_name == state.chosen.option_name and \
                best.variable_assignment == state.chosen.variable_assignment \
                and best.assignment.placements == \
                state.chosen.assignment.placements:
            return False, True, 0.0, None  # already there
        with controller.tracer.span("controller.friction_gate",
                                    app=instance.key) as span:
            friction_cost = controller.friction_cost(state,
                                                     best.option_name)
            decision = controller.friction_policy.evaluate(
                current_objective=result.current_objective,
                candidate_objective=best.objective_value,
                friction_cost_seconds=friction_cost,
                candidate_response_seconds=best.predicted_seconds)
            span.set("friction_cost_seconds", friction_cost)
            span.set("worthwhile", bool(decision))
        if not decision:
            gain = decision.objective_gain
            stable = gain <= 0 or decision.amortized_gain > 0
            return False, stable, max(0.0, gain), None
        controller.apply_candidate(
            instance, state, best,
            reason=f"reevaluation (gain {decision.objective_gain:.3g}s, "
                   f"friction {friction_cost:.3g}s)",
            objective_before=result.current_objective,
            trace_candidates=candidate_traces(
                controller, state, result.evaluated, best,
                result.current_objective))
        return True, False, decision.objective_gain, best


def candidate_traces(controller: "AdaptationController", state: BundleState,
                     evaluated: Sequence[Candidate],
                     best: Candidate,
                     objective_before: float,
                     ) -> list[CandidateTrace]:
    """Trace records for one optimizer sweep's evaluated candidates.

    The winner (by identity) gets ``rejection_reason=None``; every other
    candidate is marked :data:`REJECT_WORSE_OBJECTIVE` with the losing
    margin spelled out in ``detail``.
    """
    records: list[CandidateTrace] = []
    for candidate in evaluated:
        chosen = candidate is best
        if chosen:
            reason, detail = None, ""
        else:
            reason = REJECT_WORSE_OBJECTIVE
            detail = (f"objective {candidate.objective_value:.6g}s vs "
                      f"winner {best.objective_value:.6g}s")
        records.append(CandidateTrace(
            option_name=candidate.option_name,
            variable_assignment=dict(candidate.variable_assignment),
            placements=dict(candidate.assignment.placements),
            predicted_seconds=candidate.predicted_seconds,
            objective_value=candidate.objective_value,
            objective_delta=candidate.objective_value - objective_before,
            friction_cost_seconds=controller.friction_cost(
                state, candidate.option_name),
            chosen=chosen,
            rejection_reason=reason,
            detail=detail))
    return records


def _same_configuration(state: BundleState, candidate: Candidate) -> bool:
    """Whether a candidate equals the bundle's current configuration."""
    chosen = state.chosen
    return (chosen is not None
            and chosen.option_name == candidate.option_name
            and chosen.variable_assignment == candidate.variable_assignment
            and chosen.assignment.placements
            == candidate.assignment.placements)


class AdaptationController:
    """Central resource manager for a simulated Harmony deployment."""

    def __init__(self, cluster: Cluster,
                 metrics: MetricInterface | None = None,
                 namespace: Namespace | None = None,
                 objective: Objective | None = None,
                 policy: DecisionPolicy | None = None,
                 friction_policy: FrictionPolicy | None = None,
                 default_model: PerformanceModel | None = None,
                 match_strategy: MatchStrategy = MatchStrategy.FIRST_FIT,
                 reevaluation_period_seconds: float = 30.0,
                 incremental: bool = True,
                 partitioned: bool | None = None,
                 parallel_workers: int = 0,
                 tracer=None,
                 trace_log: DecisionTraceLog | None = None,
                 flight_recorder: FlightRecorder | None = None):
        self.cluster = cluster
        self.metrics = metrics or MetricInterface()
        #: Span recorder (pass a Tracer to profile; the no-op default
        #: keeps instrumented call sites zero-cost).
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Always-on bounded log of per-reconfiguration decision traces.
        self.trace_log = trace_log if trace_log is not None \
            else DecisionTraceLog()
        #: Always-on bounded ring of recent runtime events (RPCs,
        #: faults, evictions, batches, WAL appends); dumped to JSONL on
        #: demand, on unhandled server errors, and from failing chaos
        #: suites.  The capacity bound keeps it safe to leave on.
        self.flight_recorder = flight_recorder if flight_recorder \
            is not None else FlightRecorder()
        #: Counter/gauge/timer verbs timestamped on the simulation clock.
        self.telemetry = Telemetry(self.metrics, lambda: self.now)
        self.namespace = namespace or Namespace()
        self.objective = objective or MeanResponseTime()
        self.policy = policy or ModelDrivenPolicy()
        self.friction_policy = friction_policy or FrictionPolicy()
        self.default_model = default_model or DefaultModel()
        self.matcher = Matcher(cluster, strategy=match_strategy)
        self.registry = ApplicationRegistry(namespace=self.namespace)
        self.view = SystemView(cluster)
        self.reevaluation_period_seconds = reevaluation_period_seconds
        self.decision_log: list[DecisionRecord] = []
        #: Structured register/rejoin/end/evict history (fault tolerance).
        self.lifecycle_log: list[SessionLifecycleEvent] = []
        #: Work counters for the benchmarks (see OptimizerStats).
        self.stats = OptimizerStats()
        #: ``incremental=False`` selects the original copy-and-recompute
        #: evaluation everywhere — kept as the reference path the
        #: equivalence tests compare against.
        self.incremental = incremental
        self._engine: TrialEngine | None = \
            TrialEngine(self) if incremental else None
        self._config_cache: ConfigurationCache | None = \
            ConfigurationCache() if incremental else None
        #: ``partitioned`` (default: follows ``incremental``) maintains a
        #: :class:`~repro.controller.partition.PartitionIndex` so sweeps
        #: skip provably-unaffected bundles; ``partitioned=False`` with
        #: ``incremental=True`` is the serial sweep the partitioned path
        #: is equivalence-tested against.
        if partitioned is None:
            partitioned = incremental
        if partitioned and not incremental:
            raise ControllerError(
                "partitioned optimization requires incremental=True")
        self.partitioned = partitioned
        self.partition_index: PartitionIndex | None = \
            PartitionIndex(self) if partitioned else None
        #: Process pool for sweeping independent partitions concurrently;
        #: ``parallel_workers >= 2`` enables it (requires partitioned).
        self.parallel_executor: ParallelSweepExecutor | None = None
        if parallel_workers and parallel_workers > 1:
            if not partitioned:
                raise ControllerError(
                    "parallel_workers requires partitioned optimization")
            self.parallel_executor = ParallelSweepExecutor(
                self, parallel_workers)
        self._model_cache: dict[tuple[str, str, str], PerformanceModel] = {}
        self._listeners: list[Callable[[ReconfigurationEvent], None]] = []
        self._reevaluation_process: Process | None = None
        #: Durability journal (``repro.persistence``): ``None`` keeps the
        #: controller purely in-memory; attach a
        #: :class:`~repro.persistence.journal.DurabilityJournal` to WAL
        #: every state-changing event.  Set by ``journal.attach()``.
        self.journal = None
        #: The :class:`~repro.persistence.recovery.RecoveryReport` of the
        #: :meth:`restore` call that built this controller, if any.
        self.last_recovery = None
        #: Replication fencing term: 0 for an unreplicated controller;
        #: otherwise the monotonically increasing election counter from
        #: the shared fencing record (journaled as ``term`` WAL records,
        #: stamped on every wire reply).  Set by
        #: :meth:`~repro.persistence.replication.FencingStore.acquire`
        #: holders via :meth:`note_term` and restored by replay.
        self.term = 0
        #: Coalescing reevaluation scheduler
        #: (:class:`~repro.controller.scheduler.CoalescingScheduler`):
        #: ``None`` keeps every trigger synchronous (the serial oracle);
        #: constructing a scheduler for this controller attaches it here
        #: and re-routes :meth:`request_reevaluation` through it.
        self.scheduler = None

    @classmethod
    def restore(cls, directory: str, **kwargs) -> "AdaptationController":
        """Rebuild a journaled controller from its durability directory.

        Loads the newest valid snapshot, deterministically replays the
        WAL tail, re-attaches the journal, and returns the controller
        with ``last_recovery`` describing what was done.  Keyword
        arguments are forwarded to
        :func:`repro.persistence.recovery.restore_controller` — pass the
        same policy/objective/model collaborators the crashed process
        used.
        """
        from repro.persistence.recovery import restore_controller
        return restore_controller(directory, **kwargs)

    def _checkpoint(self) -> None:
        """Operation boundary: let the journal snapshot if it is due."""
        if self.journal is not None:
            self.journal.checkpoint_if_due()

    # -- clock -------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.cluster.now

    # -- application lifecycle (the Figure 5 API, controller side) ----------

    def register_app(self, app_name: str,
                     resume_key: str | None = None) -> AppInstance:
        """``harmony_startup``: register and assign an instance id.

        ``resume_key`` supports reconnect-and-reregister: a rejoining
        client passes its previous ``app.instance`` key, and if that
        instance is still registered the registry returns it unchanged
        (no duplicate registration, allocations intact).
        """
        with self.tracer.span("controller.register", app=app_name) as span:
            instance = self.registry.register(app_name, self.now,
                                              resume_key=resume_key)
            resumed = resume_key is not None and instance.key == resume_key
            span.set("key", instance.key)
            span.set("resumed", resumed)
            self._record_lifecycle(
                "rejoined" if resumed else "registered", instance.key,
                detail="resumed within lease" if resumed else "")
            if not resumed:
                self.metrics.report("controller.registered_apps", self.now,
                                    float(len(self.registry)))
            if self.journal is not None:
                self.journal.record_register(instance, resumed, resume_key)
                self._checkpoint()
            return instance

    def adopt_app(self, app_name: str, instance_id: int) -> AppInstance:
        """Re-admit an instance under its *original* key (federation).

        The cross-shard handoff path: the origin shard evicted the
        instance and shipped a descriptor; this controller re-creates it
        with the same ``app_name.instance_id`` key so the client's
        ``resume_key`` rejoin matches, then lets the client's session
        replay re-export its bundles (re-optimized against *this*
        shard's resources).  Journaled as a dedicated ``adopt`` record —
        replaying it as a plain ``register`` would mint a fresh id and
        diverge from the log.
        """
        with self.tracer.span("controller.adopt", app=app_name,
                              instance_id=instance_id) as span:
            instance = AppInstance(app_name=app_name,
                                   instance_id=instance_id,
                                   registered_at=self.now)
            self.registry.adopt(instance)
            span.set("key", instance.key)
            self._record_lifecycle("adopted", instance.key,
                                   detail="cross-shard handoff")
            self.metrics.report("controller.registered_apps", self.now,
                                float(len(self.registry)))
            if self.journal is not None:
                self.journal.record_adopt(instance)
                self._checkpoint()
            return instance

    def setup_bundle(self, instance: AppInstance,
                     bundle: Bundle | str) -> BundleState:
        """``harmony_bundle_setup``: export a bundle and configure it.

        Accepts RSL text or a prebuilt :class:`Bundle`.  Runs the initial
        optimization for the new bundle, then re-evaluates every existing
        application — the paper's add-new-application procedure.

        Replaying an already-exported bundle (a client resuming after a
        reconnect) is idempotent: if the instance has a configured bundle
        of the same name offering the same options, its live state is
        returned without re-optimizing.
        """
        rsl_text = bundle if isinstance(bundle, str) else None
        if isinstance(bundle, str):
            bundle = build_bundle(bundle)
        with self.tracer.span("controller.setup_bundle",
                              app=instance.key,
                              bundle=bundle.bundle_name):
            existing = instance.bundles.get(bundle.bundle_name)
            if existing is not None:
                if existing.bundle.option_names() != bundle.option_names():
                    raise ControllerError(
                        f"{instance.key}: bundle {bundle.bundle_name!r} "
                        f"replayed with different options")
                if existing.chosen is None:
                    # The replay found the bundle unconfigured (stranded by
                    # a failure): try to place it again.
                    self.policy.configure_new_bundle(self, instance,
                                                     existing)
                    self.request_reevaluation(
                        f"bundle_replayed:{instance.key}")
                self._checkpoint()
                return existing
            state = self.registry.add_bundle(instance, bundle)
            if self.partition_index is not None:
                # Indexed before configuration so the initial apply and
                # the follow-up sweep see the (possibly merged) component.
                self.partition_index.add_bundle(instance, state)
            if self.journal is not None:
                if rsl_text is None:
                    from repro.rsl import unparse_bundle
                    rsl_text = unparse_bundle(bundle)
                self.journal.record_setup_bundle(
                    instance.key, bundle.bundle_name, rsl_text)
            self.policy.configure_new_bundle(self, instance, state)
            self.request_reevaluation(f"bundle_setup:{instance.key}")
        self.report_work_counters()
        self._checkpoint()
        return state

    def end_app(self, instance: AppInstance) -> None:
        """``harmony_end``: release resources and re-evaluate the rest."""
        self._release_app(instance, kind="ended", detail="clean shutdown")

    def evict_app(self, instance: AppInstance,
                  reason: str = "lease expired") -> None:
        """Forcibly remove a dead application and re-optimize survivors.

        The fault-tolerance half of :meth:`end_app`: invoked by the API
        server when a session's lease lapses.  The placement is removed
        through the transactional :class:`SystemView` (so the prediction
        cache stays coherent), allocations are released, the namespace
        subtree is deleted, survivors are re-evaluated, and a structured
        ``evicted`` lifecycle event plus a ``controller.evictions`` metric
        record the degradation.
        """
        with self.tracer.span("controller.evict", app=instance.key,
                              reason=reason):
            self._release_app(instance, kind="evicted", detail=reason)
        self.metrics.report("controller.evictions", self.now, 1.0)
        self.flight_recorder.record(EVENT_EVICTION, client=instance.key,
                                    reason=reason)

    def _release_app(self, instance: AppInstance, kind: str,
                     detail: str) -> None:
        """Shared clean/forced removal path."""
        if self.journal is not None:
            # Journaled before the survivors re-optimize, so the release
            # precedes any reconfiguration records that reuse its space.
            self.journal.record_release(instance.key, kind, detail)
        self.view.remove(instance.key)
        self.registry.remove(instance)
        if self.partition_index is not None:
            self.partition_index.remove_app(instance.key)
        self._record_lifecycle(kind, instance.key, detail=detail)
        self.metrics.report("controller.registered_apps", self.now,
                            float(len(self.registry)))
        self.request_reevaluation(f"{kind}:{instance.key}")
        self._checkpoint()

    def request_reevaluation(self, reason: str) -> int | None:
        """One reevaluation trigger: coalesced when a scheduler is
        attached, inline otherwise.

        The inline path is the paper's original behaviour (every
        application event reevaluates the whole system synchronously)
        and doubles as the serial oracle the batched controller is
        tested against.  Returns the covering scheduler generation, or
        ``None`` when the sweep already ran inline.
        """
        if self.scheduler is not None:
            # Hand the scheduler the current trace context so the batch
            # span can link every coalesced trigger back to its request
            # (None when tracing is off or no span is open here).
            return self.scheduler.request(
                reason, trace_ctx=self.tracer.current_context())
        self.policy.reevaluate(self)
        return None

    def _record_lifecycle(self, kind: str, app_key: str,
                          detail: str = "") -> None:
        self.lifecycle_log.append(SessionLifecycleEvent(
            time=self.now, app_key=app_key, kind=kind, detail=detail))

    def register_model(self, instance: AppInstance, bundle_name: str,
                       model: PerformanceModel,
                       option_name: str | None = None,
                       model_name: str | None = None) -> None:
        """Attach an explicit prediction model (the TCL-script analogue).

        Models are opaque callables the durability layer cannot
        serialize, so a journaled controller requires ``model_name`` — a
        key into the journal's ``model_registry`` under which the *same*
        model object is supplied again at restore time.
        """
        key = bundle_name if option_name is None \
            else f"{bundle_name}.{option_name}"
        if self.journal is not None:
            if model_name is None:
                raise ControllerError(
                    f"{instance.key}: a journaled controller registers "
                    f"models by name — pass model_name= (and list it in "
                    f"the journal's model_registry)")
            self.journal.record_model(instance.key, key, model_name)
        instance.models[key] = model
        # Custom models can read anything: drop cached predictions and the
        # instance's cached spec-resolved models.
        if self._engine is not None:
            self._engine.invalidate()
        if self.partition_index is not None:
            self.partition_index.note_models_changed()
        self._checkpoint()

    # -- reconfiguration plumbing -------------------------------------------

    def add_listener(self, listener: Callable[[ReconfigurationEvent], None],
                     ) -> Callable[[], None]:
        """Subscribe to configuration changes (used by the client library)."""
        self._listeners.append(listener)

        def unsubscribe() -> None:
            if listener in self._listeners:
                self._listeners.remove(listener)

        return unsubscribe

    def apply_candidate(self, instance: AppInstance, state: BundleState,
                        candidate: Candidate, reason: str,
                        objective_before: float = math.inf,
                        trace_candidates: Sequence[CandidateTrace] | None
                        = None) -> None:
        """Make ``candidate`` the live configuration of this bundle.

        ``trace_candidates`` carries the full evaluated-alternatives
        record for the decision trace; when omitted, the trace lists the
        chosen candidate alone.
        """
        old = state.chosen
        old_description = old.describe() if old else None
        option_changed = old is None or \
            old.option_name != candidate.option_name or \
            old.variable_assignment != candidate.variable_assignment

        if old is not None:
            old.allocation.release()
        try:
            allocation = allocate(
                self.cluster, candidate.demands, candidate.assignment,
                memory_grants=candidate.memory_grants,
                predicted_duration_seconds=None,
                holder=f"{instance.key}:{state.bundle.bundle_name}")
        except AllocationError:
            if old is not None:
                # The old allocation is gone and the new one failed: the
                # bundle is explicitly unconfigured — and must disappear
                # from the system view so predictions stop counting it.
                state.chosen = None
                self.view.remove(instance.key)
                if self.partition_index is not None:
                    self.partition_index.note_apply(
                        instance.key, state.bundle.bundle_name)
                if self.journal is not None:
                    self.journal.record_unconfigured(
                        instance.key, state.bundle.bundle_name)
                raise ControllerError(
                    f"{instance.key}: lost resources while reconfiguring "
                    f"{state.bundle.bundle_name!r}") from None
            raise

        state.chosen = ChosenConfiguration(
            option_name=candidate.option_name,
            variable_assignment=dict(candidate.variable_assignment),
            demands=candidate.demands,
            assignment=candidate.assignment,
            allocation=allocation,
            predicted_seconds=candidate.predicted_seconds,
            chosen_at=self.now)
        if option_changed:
            state.last_switch_time = self.now
            state.switch_count += 1
        token = self.view.place(instance.key, candidate.demands,
                                candidate.assignment)
        self.registry.publish_choice(instance, state.bundle.bundle_name,
                                     memory_grants=candidate.memory_grants)

        if self._engine is not None:
            # Advance the prediction cache by this placement's delta
            # instead of recomputing the whole system.
            self._engine.commit([token])
            objective_after = self.objective.evaluate(
                self._engine.live_predictions())
        else:
            objective_after = self.objective.evaluate(
                self.predict_all(self.view))
        self.decision_log.append(DecisionRecord(
            time=self.now, app_key=instance.key,
            bundle_name=state.bundle.bundle_name,
            old_configuration=old_description,
            new_configuration=state.chosen.describe(),
            reason=reason,
            objective_before=objective_before,
            objective_after=objective_after))
        if trace_candidates is None:
            trace_candidates = [CandidateTrace(
                option_name=candidate.option_name,
                variable_assignment=dict(candidate.variable_assignment),
                placements=dict(candidate.assignment.placements),
                predicted_seconds=candidate.predicted_seconds,
                objective_value=candidate.objective_value,
                objective_delta=candidate.objective_value
                - objective_before,
                friction_cost_seconds=self.friction_cost(
                    state, candidate.option_name),
                chosen=True,
                rejection_reason=None)]
        self.trace_log.record(DecisionTrace(
            time=self.now, app_key=instance.key,
            bundle_name=state.bundle.bundle_name,
            trigger=reason,
            objective_before=objective_before,
            objective_after=objective_after,
            chosen_option=candidate.option_name,
            chosen_placements=dict(candidate.assignment.placements),
            candidates=tuple(trace_candidates)))
        option_index = state.bundle.option_names().index(
            candidate.option_name)
        self.metrics.report(
            f"controller.{instance.key}.{state.bundle.bundle_name}.option",
            self.now, float(option_index))
        self.metrics.report("controller.objective", self.now,
                            objective_after)
        if self.journal is not None:
            # The append is this decision's commit point: replay re-applies
            # the recorded result and verifies it reproduces
            # ``objective_after`` exactly.
            self.journal.record_apply(instance, state, candidate, reason,
                                      objective_before, objective_after)

        if self.partition_index is not None:
            # Dirties the bundle's component (every member re-evaluates
            # against the new placement) and refreshes opacity tracking.
            self.partition_index.note_apply(instance.key,
                                            state.bundle.bundle_name)

        if option_changed:
            event = ReconfigurationEvent(
                time=self.now, app_key=instance.key,
                bundle_name=state.bundle.bundle_name,
                option_name=candidate.option_name,
                variable_assignment=dict(candidate.variable_assignment),
                placements=dict(candidate.assignment.placements),
                memory_grants=allocation.memory_grants())
            for listener in list(self._listeners):
                listener(event)

    def friction_cost(self, state: BundleState,
                      target_option_name: str) -> float:
        """Cost of switching this bundle into ``target_option_name``."""
        if state.chosen is not None and \
                state.chosen.option_name == target_option_name:
            return 0.0
        option = state.bundle.option_named(target_option_name)
        if option.friction is None:
            return 0.0
        return option.friction.cost()

    # -- prediction ----------------------------------------------------------

    def predict_all(self, view: SystemView) -> dict[str, float]:
        """Predicted response seconds for every placed application."""
        self.stats.full_view_recomputes += 1
        predictions: dict[str, float] = {}
        for placed in view.configurations():
            value = self.predict_app(view, placed)
            if value is not None:
                predictions[placed.app_key] = value
        return predictions

    def predict_app(self, view: SystemView,
                    placed: PlacedConfiguration) -> float | None:
        """One placed application's predicted response seconds.

        Returns ``None`` when the application is no longer registered
        (it ended while the optimizer was exploring).
        """
        try:
            instance = self.registry.instance(placed.app_key)
        except ControllerError:
            return None
        model = self._model_for(instance, placed.demands.option_name)
        self.stats.predictions_recomputed += 1
        return model.predict(placed.demands, placed.assignment, view,
                             app_key=placed.app_key)

    def _model_for(self, instance: AppInstance,
                   option_name: str) -> PerformanceModel:
        """Resolve an option's model, caching spec-derived resolutions.

        Resolving through the RSL spec constructs a fresh model object per
        call; those are stateless, so one per (instance, bundle, option)
        suffices.  Instances with explicitly registered models bypass the
        cache — their ``models`` dict is the live source of truth.
        """
        bundle_name = instance.bundle_of_option(option_name)
        if instance.models:
            return instance.model_for(bundle_name, option_name,
                                      default=self.default_model)
        key = (instance.key, bundle_name, option_name)
        model = self._model_cache.get(key)
        if model is None:
            model = instance.model_for(bundle_name, option_name,
                                       default=self.default_model)
            self._model_cache[key] = model
        return model

    def model_is_footprint_safe(self,
                                placed: PlacedConfiguration) -> bool:
        """Whether delta prediction may cache this application's value.

        True only for the built-in models whose reads are covered by the
        placement footprint (own nodes' CPU contention, own traffic's link
        contention).  Custom callables, critical-path models, and any
        subclass are opaque: they are recomputed on every trial.
        """
        try:
            instance = self.registry.instance(placed.app_key)
        except ControllerError:
            return True  # never predicted, so never cached
        model = self._model_for(instance, placed.demands.option_name)
        return type(model) in (DefaultModel, ExplicitSpecModel,
                               ExpressionSpecModel)

    def current_objective(self) -> float:
        """The objective over the live view, from the prediction cache."""
        if self._engine is not None:
            return self.objective.evaluate(self._engine.live_predictions())
        return self.objective.evaluate(self.predict_all(self.view))

    def optimization_context(self) -> OptimizationContext:
        return OptimizationContext(
            view=self.view, matcher=self.matcher,
            objective=self.objective, predict_all=self.predict_all,
            now=self.now, engine=self._engine, cache=self._config_cache,
            stats=self.stats, tracer=self.tracer)

    # -- topology changes -----------------------------------------------------

    def handle_node_failure(self, hostname: str) -> list[str]:
        """A machine left the meta-computer; displace everything on it.

        The paper's abstract: applications "can be made to adapt to
        changes in their execution environment due to ... the addition or
        deletion of nodes".  Every bundle whose chosen configuration
        touches the failed node is reconfigured immediately; bundles with
        no feasible remaining configuration are left explicitly
        unconfigured (``chosen is None``) and reported back.

        Returns the keys of applications that could not be replaced.
        """
        if self.journal is not None:
            # Journaled before the displacement: replay fails the node and
            # strips its placements, then the subsequent ``apply`` records
            # restore the survivors exactly as the policy re-placed them.
            self.journal.record_node_failure(hostname)
        node = self.cluster.node(hostname)
        node.fail()
        if self.partition_index is not None:
            # Availability changed without a topology-version bump: the
            # host's component must re-evaluate (also covers the
            # freed-resources case when displaced bundles strand).
            self.partition_index.touch_host(hostname)
        stranded: list[str] = []
        for instance in self.registry.instances():
            for state in instance.bundles.values():
                chosen = state.chosen
                if chosen is None or \
                        hostname not in chosen.assignment.hostnames():
                    continue
                chosen.allocation.release()
                state.chosen = None
                self.view.remove(instance.key)
                try:
                    self.policy.configure_new_bundle(self, instance, state)
                    record = self.decision_log[-1]
                    self.decision_log[-1] = DecisionRecord(
                        time=record.time, app_key=record.app_key,
                        bundle_name=record.bundle_name,
                        old_configuration=chosen.describe(),
                        new_configuration=record.new_configuration,
                        reason=f"node failure: {hostname}",
                        objective_before=record.objective_before,
                        objective_after=record.objective_after)
                except AllocationError:
                    stranded.append(instance.key)
        self.policy.reevaluate(self)
        self.metrics.report("controller.node_failures", self.now, 1.0)
        self._checkpoint()
        return stranded

    def handle_node_restored(self, hostname: str) -> int:
        """A machine (re)joined; re-evaluate everyone to exploit it."""
        if self.journal is not None:
            self.journal.record_node_restored(hostname)
        self.cluster.node(hostname).restore()
        if self.partition_index is not None:
            self.partition_index.touch_host(hostname)
        changes = self.policy.reevaluate(self)
        self.metrics.report("controller.node_restorations", self.now, 1.0)
        self._checkpoint()
        return changes

    def configure_stranded(self) -> int:
        """Retry applications left unconfigured by a failure; returns the
        number successfully (re)configured."""
        recovered = 0
        for instance in self.registry.instances():
            for state in instance.bundles.values():
                if state.chosen is not None:
                    continue
                try:
                    self.policy.configure_new_bundle(self, instance, state)
                    recovered += 1
                except AllocationError:
                    continue
        return recovered

    def note_term(self, term: int) -> None:
        """Adopt a fencing term and mirror it into the metric surface.

        ``controller.term`` is exported as a gauge so operators (and the
        failover chaos suite) can watch elections happen; the journal
        entry itself is written by the caller
        (:meth:`~repro.persistence.journal.DurabilityJournal.record_term`)
        because terms must be durable before they are served.
        """
        self.term = int(term)
        self.metrics.report("controller.term", self.now, float(term))

    # -- external (measured) load -------------------------------------------

    def update_external_load(self, window_seconds: float = 60.0) -> None:
        """Fold measured environment load into the system view.

        Section 4.3: the periodic re-evaluation exists "to adapt the system
        due to changes out of Harmony's control (such as network traffic
        due to other applications)".  The controller only sees such load
        through the metric interface (a
        :class:`~repro.metrics.ClusterCollector` must be feeding
        ``node.<host>.cpu_load`` / ``link.<a>--<b>.active_transfers``).

        Measured load includes the work of Harmony's own applications, so
        the expected contribution of placed configurations is subtracted;
        only the surplus counts as external.
        """
        from repro.metrics.collectors import link_metric_name, node_metric_name

        for hostname in self.cluster.hostnames():
            measured = self.metrics.windowed_mean(
                node_metric_name(hostname, "cpu_load"),
                now=self.now, window_seconds=window_seconds)
            if measured is None:
                continue
            own = self.view.cpu_consumers(hostname)
            external = max(0.0, measured - own)
            # Unchanged measurements are dropped before they reach the
            # view: a no-op set would still bump the view version
            # (invalidating cached predictions) and spuriously dirty the
            # host's partition every steady-state sweep.
            if external == self.view.external_cpu_load(hostname):
                continue
            self.view.set_external_cpu_load(hostname, external)
            if self.partition_index is not None:
                self.partition_index.touch_host(hostname)
        for link in self.cluster.links():
            measured = self.metrics.windowed_mean(
                link_metric_name(link.host_a, link.host_b,
                                 "active_transfers"),
                now=self.now, window_seconds=window_seconds)
            if measured is None:
                continue
            own = self.view.flows_between(link.host_a, link.host_b)
            external = max(0.0, measured - own)
            if external == self.view.external_link_load(link.host_a,
                                                        link.host_b):
                continue
            self.view.set_external_link_load(link.host_a, link.host_b,
                                             external)
            if self.partition_index is not None:
                self.partition_index.touch_link(link.host_a, link.host_b)

    # -- periodic re-evaluation ------------------------------------------------

    def reevaluate(self) -> int:
        """One re-evaluation sweep; returns the number of changes.

        Reports the sweep's wall-clock cost as
        ``controller.reevaluation_seconds`` (timestamped on the simulation
        clock) and refreshes the cumulative work counters.
        """
        start = _time.perf_counter()
        with self.tracer.span("controller.reevaluate") as span:
            self.update_external_load()
            changes = self.policy.reevaluate(self)
            span.set("changes", changes)
        self.metrics.report("controller.reevaluation_seconds", self.now,
                            _time.perf_counter() - start)
        self.report_work_counters()
        self._checkpoint()
        return changes

    def report_work_counters(self) -> None:
        """Publish cumulative optimizer/prediction/cache work counters.

        Counter semantics: each sample carries the running total (see
        :meth:`MetricInterface.increment`), so exporters read the latest
        sample and rates fall out of windowed differences.
        """
        now = self.now
        self.metrics.report("optimizer.candidates_evaluated", now,
                            float(self.stats.candidates_evaluated))
        self.metrics.report("optimizer.match_calls", now,
                            float(self.stats.match_calls))
        self.metrics.report("prediction.model_calls", now,
                            float(self.stats.predictions_recomputed))
        self.metrics.report("prediction.full_view_recomputes", now,
                            float(self.stats.full_view_recomputes))
        if self._config_cache is not None:
            for key, value in self._config_cache.snapshot().items():
                self.metrics.report(f"optimizer.cache.{key}", now,
                                    float(value))
        index = self.partition_index
        if index is not None:
            # Aggregates only — partition ids never become metric names,
            # so cardinality is fixed no matter how the system fragments.
            self.metrics.report("optimizer.partitions", now,
                                float(index.partition_count))
            self.metrics.report("optimizer.pruned_candidates", now,
                                float(self.stats.pruned_candidates))
            self.metrics.report("optimizer.partition.sweeps", now,
                                float(self.stats.partition_sweeps))
            self.metrics.report("optimizer.partition.pruned_bundles", now,
                                float(self.stats.pruned_bundles))
            self.metrics.report("optimizer.partition.merges", now,
                                float(index.merges))
            self.metrics.report("optimizer.partition.rebuilds", now,
                                float(index.rebuilds))
            self.metrics.report(
                "optimizer.partition.largest", now,
                float(max((len(p.members) for p in index.partitions()),
                          default=0)))
            self.metrics.report("optimizer.partition.parallel_sweeps", now,
                                float(self.stats.parallel_sweeps))

    def start_periodic_reevaluation(self) -> Process:
        """Spawn the Section 4.3 periodic adaptation process."""
        if self._reevaluation_process is not None \
                and self._reevaluation_process.is_alive:
            raise ControllerError("periodic re-evaluation already running")
        self._reevaluation_process = self.cluster.kernel.spawn(
            self._reevaluation_loop(), name="controller-reevaluation")
        return self._reevaluation_process

    def stop_periodic_reevaluation(self) -> None:
        if self._reevaluation_process is not None \
                and self._reevaluation_process.is_alive:
            self._reevaluation_process.interrupt("stop")
        self._reevaluation_process = None

    def _reevaluation_loop(self) -> Iterator:
        kernel = self.cluster.kernel
        try:
            while True:
                yield kernel.timeout(self.reevaluation_period_seconds)
                changes = self.reevaluate()
                self.metrics.report("controller.reevaluation_changes",
                                    self.now, float(changes))
        except Interrupted:
            return

    # -- introspection ------------------------------------------------------------

    def current_choice(self, instance: AppInstance,
                       bundle_name: str) -> ChosenConfiguration | None:
        return instance.bundle_state(bundle_name).chosen

    def describe_system(self) -> list[str]:
        """One line per application: key, bundle, chosen configuration."""
        lines = []
        for instance in self.registry.instances():
            for bundle_name, state in instance.bundles.items():
                chosen = state.chosen.describe() if state.chosen else "-"
                lines.append(f"{instance.key} {bundle_name} -> {chosen}")
        return lines
