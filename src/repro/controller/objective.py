"""Objective functions (paper Section 4.2).

"Our objective function currently minimizes the average completion time of
the jobs currently in the system" — that is :class:`MeanResponseTime`, the
default.  The paper also names system throughput as the usual overall
objective and asks only that an objective "be a single variable that
represents the overall behavior of the system ... a measure of goodness for
each application scaled into a common currency"; :class:`ThroughputObjective`
and :class:`WeightedMeanResponseTime` provide that flexibility.

Conventions: objectives consume a mapping of application key to predicted
response seconds and return a scalar where **lower is better** (throughput
is negated).
"""

from __future__ import annotations

from typing import Mapping, Protocol

from repro.errors import ControllerError

__all__ = ["Objective", "MeanResponseTime", "ThroughputObjective",
           "WeightedMeanResponseTime", "MaxResponseTime"]


class Objective(Protocol):
    """Scalarizes per-application predictions; lower is better.

    An objective may declare ``decomposable = True`` to assert it is a
    monotone function of a per-application sum: changing one
    application's prediction shifts every candidate's score equally and
    never reorders candidates that differ only elsewhere.  The
    partitioned sweep relies on this to skip provably-clean bundles
    (:meth:`repro.controller.partition.PartitionIndex.prunable`);
    objectives without the attribute (e.g. :class:`MaxResponseTime`)
    disable pruning and always get the full sweep.
    """

    name: str

    def evaluate(self, predictions: Mapping[str, float]) -> float:
        ...  # pragma: no cover - protocol


class MeanResponseTime:
    """The paper's default: average predicted completion time."""

    name = "mean-response-time"
    decomposable = True

    def evaluate(self, predictions: Mapping[str, float]) -> float:
        if not predictions:
            return 0.0
        return sum(predictions.values()) / len(predictions)


class MaxResponseTime:
    """Makespan-style objective: the slowest application's response."""

    name = "max-response-time"
    # max() is not shift-invariant under other partitions' changes.
    decomposable = False

    def evaluate(self, predictions: Mapping[str, float]) -> float:
        if not predictions:
            return 0.0
        return max(predictions.values())


class ThroughputObjective:
    """System throughput: jobs per second, negated so lower is better."""

    name = "throughput"
    decomposable = True

    def evaluate(self, predictions: Mapping[str, float]) -> float:
        total = 0.0
        for key, seconds in predictions.items():
            if seconds <= 0:
                raise ControllerError(
                    f"non-positive prediction {seconds} for {key!r}")
            total += 1.0 / seconds
        return -total


class WeightedMeanResponseTime:
    """Mean response with per-application importance weights.

    Unknown applications get weight 1.0 — "a measure of goodness for each
    application scaled into a common currency".
    """

    name = "weighted-mean-response-time"
    decomposable = True

    def __init__(self, weights: Mapping[str, float] | None = None):
        self.weights = dict(weights or {})
        for key, weight in self.weights.items():
            if weight < 0:
                raise ControllerError(
                    f"negative weight {weight} for {key!r}")

    def weight_of(self, app_key: str) -> float:
        # Allow weights keyed by app name as well as full app.instance keys.
        if app_key in self.weights:
            return self.weights[app_key]
        app_name = app_key.split(".", 1)[0]
        return self.weights.get(app_name, 1.0)

    def evaluate(self, predictions: Mapping[str, float]) -> float:
        if not predictions:
            return 0.0
        total_weight = 0.0
        total = 0.0
        for key, seconds in predictions.items():
            weight = self.weight_of(key)
            total += weight * seconds
            total_weight += weight
        if total_weight == 0:
            return 0.0
        return total / total_weight
