"""Property-based soundness of the matcher.

Whatever random cluster and demands we throw at it, any assignment the
matcher returns must actually satisfy every constraint it was given —
distinct nodes, hostname patterns, OS filters, memory floors, and link
reachability.  (Completeness — finding a placement whenever one exists —
is guaranteed by the backtracking search; a spot-check for that is
included with a constructive witness.)
"""

import math

from hypothesis import given, settings, strategies as st

from repro.allocation import Matcher, MatchStrategy, instantiate_option
from repro.cluster import Cluster
from repro.errors import AllocationError
from repro.rsl import build_bundle

node_specs = st.lists(
    st.tuples(
        st.integers(min_value=16, max_value=256),   # memory
        st.sampled_from(["linux", "aix"]),          # os
    ),
    min_size=1, max_size=6)

demand_specs = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=128),    # memory needed
        st.sampled_from([None, "linux", "aix"]),    # os filter
    ),
    min_size=1, max_size=4)


def build_cluster(specs):
    cluster = Cluster()
    for index, (memory, os_name) in enumerate(specs):
        cluster.add_node(f"h{index}", memory_mb=float(memory), os=os_name)
    hostnames = cluster.hostnames()
    for i, a in enumerate(hostnames):
        for b in hostnames[i + 1:]:
            cluster.add_link(a, b, 40.0)
    return cluster


def build_demands(specs):
    parts = []
    for index, (memory, os_name) in enumerate(specs):
        os_clause = f" {{os {os_name}}}" if os_name else ""
        parts.append(f"{{node d{index}{os_clause} "
                     f"{{seconds 5}} {{memory {memory}}}}}")
    rsl = "harmonyBundle A b {{o " + " ".join(parts) + "}}"
    return instantiate_option(build_bundle(rsl).option_named("o"))


@settings(max_examples=120, deadline=None)
@given(node_specs, demand_specs,
       st.sampled_from(list(MatchStrategy)))
def test_returned_assignments_satisfy_all_constraints(nodes, demands_in,
                                                      strategy):
    cluster = build_cluster(nodes)
    demands = build_demands(demands_in)
    matcher = Matcher(cluster, strategy=strategy)
    try:
        assignment = matcher.match(demands)
    except AllocationError:
        return  # nothing to check; soundness only

    # Distinct machines for distinct demands (paper semantics).
    assert len(assignment.hostnames()) == len(demands.nodes)
    claimed: dict[str, float] = {}
    for demand in demands.nodes:
        hostname = assignment.hostname_of(demand.local_name)
        node = cluster.node(hostname)
        if demand.os is not None:
            assert node.os == demand.os
        claimed[hostname] = claimed.get(hostname, 0.0) \
            + demand.memory_min_mb
    for hostname, needed in claimed.items():
        assert cluster.node(hostname).memory.available_mb + 1e-9 >= needed


@settings(max_examples=80, deadline=None)
@given(st.integers(min_value=1, max_value=6),
       st.integers(min_value=1, max_value=6))
def test_feasibility_is_decided_exactly_for_uniform_demands(node_count,
                                                            replicas):
    """With identical nodes and identical demands, feasibility is exactly
    ``replicas <= node_count`` — the matcher must agree in both directions."""
    cluster = build_cluster([(64, "linux")] * node_count)
    rsl = (f"harmonyBundle A b {{{{o {{node w {{seconds 1}} {{memory 32}} "
           f"{{replicate {replicas}}}}}}}}}")
    demands = instantiate_option(build_bundle(rsl).option_named("o"))
    matcher = Matcher(cluster)
    if replicas <= node_count:
        assignment = matcher.match(demands)
        assert len(assignment) == replicas
    else:
        try:
            matcher.match(demands)
        except AllocationError:
            pass
        else:
            raise AssertionError("matched more replicas than nodes")


@settings(max_examples=60, deadline=None)
@given(node_specs)
def test_order_key_permutation_does_not_change_feasibility(nodes):
    """Reordering candidates (the load-aware hook) may change *which*
    placement is returned but never whether one is found."""
    cluster = build_cluster(nodes)
    demands = build_demands([(16, None), (16, None)])
    matcher = Matcher(cluster)

    def outcome(order_key):
        try:
            return ("ok", len(matcher.match(demands,
                                            order_key=order_key)))
        except AllocationError:
            return ("fail", 0)

    natural = outcome(None)
    reversed_order = outcome(lambda hostname: -int(hostname[1:]))
    assert natural[0] == reversed_order[0]
