"""Instantiating tuning options into concrete demands."""

import math

import pytest

from repro.allocation import instantiate_option
from repro.errors import RslSemanticError
from repro.rsl import build_bundle


class TestFigure2aInstantiation:
    def test_replicas_expanded(self, figure2a_rsl):
        option = build_bundle(figure2a_rsl).option_named("fixed")
        demands = instantiate_option(option)
        assert len(demands.nodes) == 4
        assert [d.local_name for d in demands.nodes] == [
            "worker[0]", "worker[1]", "worker[2]", "worker[3]"]
        assert all(d.seconds == 300.0 for d in demands.nodes)
        assert all(d.memory_min_mb == 32.0 for d in demands.nodes)

    def test_totals(self, figure2a_rsl):
        option = build_bundle(figure2a_rsl).option_named("fixed")
        demands = instantiate_option(option)
        assert demands.total_cpu_seconds() == 1200.0
        assert demands.communication_mb == 64.0
        assert demands.total_traffic_mb() == 64.0


class TestFigure2bInstantiation:
    def test_variable_defaults_to_first_value(self, figure2b_rsl):
        option = build_bundle(figure2b_rsl).option_named("run")
        demands = instantiate_option(option)
        assert demands.variable_assignment == {"workerNodes": 1.0}
        assert len(demands.nodes) == 1
        assert demands.nodes[0].local_name == "worker"

    def test_workers_scale_with_variable(self, figure2b_rsl):
        option = build_bundle(figure2b_rsl).option_named("run")
        demands = instantiate_option(option, {"workerNodes": 8})
        assert len(demands.nodes) == 8
        assert demands.nodes[0].seconds == pytest.approx(300.0)
        assert demands.total_cpu_seconds() == pytest.approx(2400.0)

    def test_total_work_constant_across_configurations(self, figure2b_rsl):
        option = build_bundle(figure2b_rsl).option_named("run")
        totals = {
            n: instantiate_option(option,
                                  {"workerNodes": n}).total_cpu_seconds()
            for n in (1, 2, 4, 8)}
        assert all(total == pytest.approx(2400.0)
                   for total in totals.values())

    def test_quadratic_communication(self, figure2b_rsl):
        option = build_bundle(figure2b_rsl).option_named("run")
        demands = instantiate_option(option, {"workerNodes": 8})
        assert demands.communication_mb == pytest.approx(32.0)

    def test_out_of_domain_value_rejected(self, figure2b_rsl):
        option = build_bundle(figure2b_rsl).option_named("run")
        with pytest.raises(RslSemanticError):
            instantiate_option(option, {"workerNodes": 3})


class TestFigure3Instantiation:
    def test_qs_demands(self, figure3_rsl):
        option = build_bundle(figure3_rsl).option_named("QS")
        demands = instantiate_option(option)
        server = demands.demand_named("server")
        assert server.hostname_pattern == "harmony.cs.umd.edu"
        assert server.seconds == 42.0
        assert demands.links[0].total_mb == 2.0

    def test_ds_link_uses_memory_minimum_by_default(self, figure3_rsl):
        option = build_bundle(figure3_rsl).option_named("DS")
        demands = instantiate_option(option)
        # min memory 32 > 24, so the ternary clamps at 24: 44+24-17 = 51.
        assert demands.links[0].total_mb == pytest.approx(51.0)

    def test_ds_link_with_explicit_grant(self, figure3_rsl):
        option = build_bundle(figure3_rsl).option_named("DS")
        demands = instantiate_option(option,
                                     grants={"client.memory": 40.0})
        assert demands.links[0].total_mb == pytest.approx(51.0)
        client = demands.demand_named("client")
        assert client.memory_granted({"client.memory": 40.0}) == 40.0

    def test_grant_below_minimum_rejected(self, figure3_rsl):
        option = build_bundle(figure3_rsl).option_named("DS")
        demands = instantiate_option(option)
        with pytest.raises(RslSemanticError):
            demands.demand_named("client").memory_granted(
                {"client.memory": 8.0})

    def test_elastic_flag_propagates(self, figure3_rsl):
        option = build_bundle(figure3_rsl).option_named("DS")
        demands = instantiate_option(option)
        client = demands.demand_named("client")
        assert client.memory_elastic
        assert math.isinf(client.memory_max_mb)
        server = demands.demand_named("server")
        assert not server.memory_elastic


class TestValidation:
    def test_negative_seconds_rejected(self):
        bundle = build_bundle(
            "harmonyBundle A b {{o {variable v {1 2}}"
            " {node n {seconds {1 - 2 * v}}}}}")
        with pytest.raises(RslSemanticError, match="negative"):
            instantiate_option(bundle.option_named("o"), {"v": 2})

    def test_negative_link_rejected(self):
        bundle = build_bundle(
            "harmonyBundle A b {{o {node x {seconds 1}} {node y {seconds 1}}"
            " {variable v {1 9}} {link x y {5 - v}}}}")
        with pytest.raises(RslSemanticError, match="negative"):
            instantiate_option(bundle.option_named("o"), {"v": 9})

    def test_demand_named_missing_raises(self, figure3_rsl):
        option = build_bundle(figure3_rsl).option_named("QS")
        demands = instantiate_option(option)
        with pytest.raises(RslSemanticError):
            demands.demand_named("ghost")
