"""Matching demands to cluster nodes: first-fit, constraints, links."""

import pytest

from repro.allocation import Matcher, MatchStrategy, instantiate_option
from repro.cluster import Cluster
from repro.errors import AllocationError
from repro.rsl import build_bundle


def demands_for(rsl, option_name, variables=None):
    return instantiate_option(
        build_bundle(rsl).option_named(option_name), variables)


SIMPLE = """
harmonyBundle A b {
    {o {node worker {seconds 10} {memory 32} {replicate 2}}}}
"""

PICKY = """
harmonyBundle A b {
    {o {node big {seconds 10} {memory 96}}
       {node small {seconds 10} {memory 8}}}}
"""

LINKED = """
harmonyBundle A b {
    {o {node x {seconds 1} {memory 4}}
       {node y {seconds 1} {memory 4}}
       {link x y 5}}}
"""


class TestFirstFit:
    def test_first_fit_takes_insertion_order(self, small_cluster):
        matcher = Matcher(small_cluster)
        assignment = matcher.match(demands_for(SIMPLE, "o"))
        assert assignment.placements == {"worker[0]": "n0",
                                         "worker[1]": "n1"}

    def test_replicas_on_distinct_nodes(self, small_cluster):
        matcher = Matcher(small_cluster)
        assignment = matcher.match(demands_for(SIMPLE, "o"))
        assert len(assignment.hostnames()) == 2

    def test_memory_filter(self, kernel):
        cluster = Cluster(kernel)
        cluster.add_node("tiny", memory_mb=16)
        cluster.add_node("roomy", memory_mb=128)
        assignment = Matcher(cluster).match(demands_for(PICKY, "o"))
        assert assignment.hostname_of("big") == "roomy"
        assert assignment.hostname_of("small") == "tiny"

    def test_backtracking_when_first_choice_blocks_later_demand(self, kernel):
        # big fits only on roomy; if small grabbed roomy first, matching
        # would fail without backtracking.
        cluster = Cluster(kernel)
        cluster.add_node("roomy", memory_mb=128)
        cluster.add_node("tiny", memory_mb=16)
        assignment = Matcher(cluster).match(demands_for(PICKY, "o"))
        assert assignment.hostname_of("big") == "roomy"

    def test_hostname_pattern_exact(self, small_cluster):
        rsl = """harmonyBundle A b {
            {o {node w {hostname n2} {seconds 1} {memory 4}}}}"""
        assignment = Matcher(small_cluster).match(demands_for(rsl, "o"))
        assert assignment.hostname_of("w") == "n2"

    def test_hostname_glob_pattern(self, kernel):
        cluster = Cluster(kernel)
        cluster.add_node("db.example", memory_mb=64)
        cluster.add_node("web.example", memory_mb=64)
        rsl = """harmonyBundle A b {
            {o {node w {hostname db.*} {seconds 1} {memory 4}}}}"""
        assignment = Matcher(cluster).match(demands_for(rsl, "o"))
        assert assignment.hostname_of("w") == "db.example"

    def test_os_filter(self, kernel):
        cluster = Cluster(kernel)
        cluster.add_node("l", os="linux")
        cluster.add_node("a", os="aix")
        rsl = """harmonyBundle A b {
            {o {node w {os aix} {seconds 1} {memory 4}}}}"""
        assignment = Matcher(cluster).match(demands_for(rsl, "o"))
        assert assignment.hostname_of("w") == "a"

    def test_infeasible_memory_raises(self, kernel):
        cluster = Cluster(kernel)
        cluster.add_node("n", memory_mb=16)
        rsl = """harmonyBundle A b {
            {o {node w {seconds 1} {memory 64}}}}"""
        with pytest.raises(AllocationError, match="no feasible placement"):
            Matcher(cluster).match(demands_for(rsl, "o"))

    def test_more_replicas_than_nodes_raises(self, small_cluster):
        rsl = """harmonyBundle A b {
            {o {node w {seconds 1} {memory 4} {replicate 5}}}}"""
        with pytest.raises(AllocationError):
            Matcher(small_cluster).match(demands_for(rsl, "o"))

    def test_reserved_memory_blocks_new_match(self, small_cluster):
        for host in ("n0", "n1", "n2", "n3"):
            small_cluster.node(host).memory.reserve("other", 120)
        with pytest.raises(AllocationError):
            Matcher(small_cluster).match(demands_for(SIMPLE, "o"))

    def test_ignore_holders_reuses_own_reservation(self, small_cluster):
        for host in ("n0", "n1", "n2", "n3"):
            small_cluster.node(host).memory.reserve("me", 120)
        matcher = Matcher(small_cluster)
        assignment = matcher.match(demands_for(SIMPLE, "o"),
                                   ignore_holders={"me"})
        assert len(assignment) == 2


class TestStrategies:
    @pytest.fixture
    def uneven_cluster(self, kernel):
        cluster = Cluster(kernel)
        cluster.add_node("small", memory_mb=40)
        cluster.add_node("large", memory_mb=200)
        return cluster

    def test_best_fit_minimizes_leftover(self, uneven_cluster):
        rsl = """harmonyBundle A b {
            {o {node w {seconds 1} {memory 32}}}}"""
        matcher = Matcher(uneven_cluster, strategy=MatchStrategy.BEST_FIT)
        assert matcher.match(
            demands_for(rsl, "o")).hostname_of("w") == "small"

    def test_worst_fit_maximizes_leftover(self, uneven_cluster):
        rsl = """harmonyBundle A b {
            {o {node w {seconds 1} {memory 32}}}}"""
        matcher = Matcher(uneven_cluster, strategy=MatchStrategy.WORST_FIT)
        assert matcher.match(
            demands_for(rsl, "o")).hostname_of("w") == "large"

    def test_order_key_overrides_strategy_order(self, small_cluster):
        matcher = Matcher(small_cluster)
        load = {"n0": 5.0, "n1": 0.0, "n2": 1.0, "n3": 0.0}
        assignment = matcher.match(demands_for(SIMPLE, "o"),
                                   order_key=lambda h: load[h])
        assert assignment.placements == {"worker[0]": "n1",
                                         "worker[1]": "n3"}


class TestLinkFeasibility:
    def test_link_between_placed_nodes_checked(self, kernel):
        cluster = Cluster(kernel)
        cluster.add_node("a", memory_mb=64)
        cluster.add_node("b", memory_mb=64)
        # No link at all: the match must fail.
        with pytest.raises(AllocationError):
            Matcher(cluster).match(demands_for(LINKED, "o"))

    def test_link_via_path_accepted(self, kernel):
        cluster = Cluster(kernel)
        for name in ("a", "mid", "b"):
            cluster.add_node(name, memory_mb=64)
        cluster.add_link("a", "mid", 10)
        cluster.add_link("mid", "b", 10)
        assignment = Matcher(cluster).match(demands_for(LINKED, "o"))
        assert len(assignment) == 2

    def test_saturated_link_rejected(self, small_cluster):
        for link in small_cluster.links():
            link.reserve("hog", link.bandwidth_mbps)
        with pytest.raises(AllocationError):
            Matcher(small_cluster).match(demands_for(LINKED, "o"))

    def test_general_communication_requires_connectivity(self, kernel):
        cluster = Cluster(kernel)
        cluster.add_node("a", memory_mb=64)
        cluster.add_node("b", memory_mb=64)
        rsl = """harmonyBundle A b {
            {o {node x {seconds 1} {memory 4}}
               {node y {seconds 1} {memory 4}}
               {communication 10}}}"""
        with pytest.raises(AllocationError):
            Matcher(cluster).match(demands_for(rsl, "o"))

    def test_assignment_lookup_error(self, small_cluster):
        assignment = Matcher(small_cluster).match(demands_for(SIMPLE, "o"))
        with pytest.raises(AllocationError):
            assignment.hostname_of("ghost")
