"""Allocation accounting: reserve on apply, roll back on failure."""

import pytest

from repro.allocation import Matcher, allocate, instantiate_option
from repro.errors import AllocationError
from repro.rsl import build_bundle


RSL = """
harmonyBundle A b {
    {o {node x {seconds 10} {memory >=48}}
       {node y {seconds 10} {memory 16}}
       {link x y 80}}}
"""


@pytest.fixture
def matched(small_cluster):
    demands = instantiate_option(build_bundle(RSL).option_named("o"))
    assignment = Matcher(small_cluster).match(demands)
    return small_cluster, demands, assignment


class TestApplyRelease:
    def test_memory_reserved_on_apply(self, matched):
        cluster, demands, assignment = matched
        allocation = allocate(cluster, demands, assignment, holder="app")
        host_x = assignment.hostname_of("x")
        assert cluster.node(host_x).memory.available_mb == \
            pytest.approx(128 - 48)
        allocation.release()
        assert cluster.node(host_x).memory.available_mb == \
            pytest.approx(128)

    def test_release_is_idempotent(self, matched):
        cluster, demands, assignment = matched
        allocation = allocate(cluster, demands, assignment)
        allocation.release()
        allocation.release()
        assert cluster.node(assignment.hostname_of("x")) \
            .memory.available_mb == pytest.approx(128)

    def test_context_manager_releases(self, matched):
        cluster, demands, assignment = matched
        with allocate(cluster, demands, assignment):
            pass
        assert cluster.node(assignment.hostname_of("x")) \
            .memory.available_mb == pytest.approx(128)

    def test_elastic_memory_grant_applied(self, matched):
        cluster, demands, assignment = matched
        allocation = allocate(cluster, demands, assignment,
                              memory_grants={"x.memory": 60.0})
        host_x = assignment.hostname_of("x")
        assert cluster.node(host_x).memory.available_mb == \
            pytest.approx(128 - 60)
        assert allocation.memory_grants()["x.memory"] == 60.0
        allocation.release()

    def test_bandwidth_reserved_with_duration(self, matched):
        cluster, demands, assignment = matched
        allocation = allocate(cluster, demands, assignment,
                              predicted_duration_seconds=10.0)
        link = cluster.link_between(assignment.hostname_of("x"),
                                    assignment.hostname_of("y"))
        assert link.available_mbps == pytest.approx(40 - 8)
        allocation.release()
        assert link.available_mbps == pytest.approx(40)

    def test_no_bandwidth_reservation_without_duration(self, matched):
        cluster, demands, assignment = matched
        allocation = allocate(cluster, demands, assignment)
        link = cluster.link_between(assignment.hostname_of("x"),
                                    assignment.hostname_of("y"))
        assert link.available_mbps == pytest.approx(40)
        allocation.release()


class TestRollback:
    def test_failed_memory_reservation_rolls_back(self, matched):
        cluster, demands, assignment = matched
        host_y = assignment.hostname_of("y")
        cluster.node(host_y).memory.reserve("other", 120)
        before = {h: cluster.node(h).memory.available_mb
                  for h in cluster.hostnames()}
        with pytest.raises(AllocationError):
            allocate(cluster, demands, assignment)
        after = {h: cluster.node(h).memory.available_mb
                 for h in cluster.hostnames()}
        assert before == after

    def test_failed_bandwidth_reservation_rolls_back(self, matched):
        cluster, demands, assignment = matched
        link = cluster.link_between(assignment.hostname_of("x"),
                                    assignment.hostname_of("y"))
        link.reserve("hog", 39.0)
        before_memory = cluster.node(
            assignment.hostname_of("x")).memory.available_mb
        with pytest.raises(AllocationError):
            allocate(cluster, demands, assignment,
                     predicted_duration_seconds=1.0)  # needs 8 MB/s
        assert cluster.node(assignment.hostname_of("x")) \
            .memory.available_mb == pytest.approx(before_memory)

    def test_two_allocations_stack(self, matched):
        cluster, demands, assignment = matched
        first = allocate(cluster, demands, assignment, holder="app1")
        second = allocate(cluster, demands, assignment, holder="app2")
        host_x = assignment.hostname_of("x")
        assert cluster.node(host_x).memory.available_mb == \
            pytest.approx(128 - 96)
        first.release()
        second.release()
        assert cluster.node(host_x).memory.available_mb == \
            pytest.approx(128)
