"""Query execution: correctness of the join and cost accounting."""

import pytest

from repro.apps.database.executor import CostParameters, DatabaseEngine
from repro.apps.database.query import JoinQuery, WisconsinWorkload
from repro.apps.database.relation import WisconsinRelation, make_wisconsin_pair
from repro.apps.database.storage import BufferPool
from repro.errors import DatabaseError


@pytest.fixture(scope="module")
def engine():
    a, b = make_wisconsin_pair(tuple_count=2000, seed=9)
    return DatabaseEngine(a, b, CostParameters(), keep_result_rows=True)


def big_pool():
    return BufferPool(capacity_mb=64.0)


class TestJoinCorrectness:
    def test_result_verified_against_nested_loop(self, engine):
        for values in ((0, 0), (3, 7), (9, 9)):
            query = JoinQuery(select_value_a=values[0],
                              select_value_b=values[1])
            profile = engine.execute(query, big_pool())
            engine.validate_result(profile)  # raises on mismatch

    def test_selectivity_counts(self, engine):
        profile = engine.execute(JoinQuery(select_value_a=2,
                                           select_value_b=5), big_pool())
        assert profile.selected_a == 200
        assert profile.selected_b == 200

    def test_same_slice_join_size(self, engine):
        """Joining the same tenPercent slice of both relations on unique1
        matches every key in the slice present in both relations."""
        profile = engine.execute(JoinQuery(select_value_a=4,
                                           select_value_b=4), big_pool())
        # unique1 % 10 == 4 in both relations: identical key sets -> 200.
        assert profile.result_tuples == 200

    def test_disjoint_slices_join_empty(self, engine):
        profile = engine.execute(JoinQuery(select_value_a=1,
                                           select_value_b=2), big_pool())
        # Keys with unique1%10==1 in A cannot equal keys with %10==2 in B.
        assert profile.result_tuples == 0

    def test_joined_rows_have_both_tuples(self, engine):
        profile = engine.execute(JoinQuery(select_value_a=4,
                                           select_value_b=4), big_pool())
        assert profile.result_rows
        assert len(profile.result_rows[0]) == 32  # two 16-field tuples

    def test_selection_and_join_on_same_field_rejected(self):
        with pytest.raises(DatabaseError):
            JoinQuery(select_field="unique1", join_field="unique1")


class TestCostAccounting:
    def test_cpu_proportional_to_selected(self, engine):
        params = engine.params
        profile = engine.execute(JoinQuery(), big_pool())
        expected = (profile.selected_a + profile.selected_b) * \
            (params.select_tuple_seconds + params.join_tuple_seconds)
        assert profile.cpu_seconds == pytest.approx(expected)

    def test_cold_pool_pays_page_io(self, engine):
        pool = big_pool()
        first = engine.execute(JoinQuery(select_value_a=0,
                                         select_value_b=0), pool)
        assert first.page_misses == first.pages_accessed > 0
        assert first.io_seconds == pytest.approx(
            first.page_misses * engine.params.page_io_seconds)

    def test_warm_pool_has_no_io(self, engine):
        pool = big_pool()
        query = JoinQuery(select_value_a=0, select_value_b=0)
        engine.execute(query, pool)
        second = engine.execute(query, pool)
        assert second.page_misses == 0
        assert second.io_seconds == 0.0

    def test_tiny_pool_thrashes(self, engine):
        pool = BufferPool(capacity_mb=0.1)  # ~12 pages
        query = JoinQuery(select_value_a=0, select_value_b=0)
        engine.execute(query, pool)
        second = engine.execute(query, pool)
        assert second.page_misses > 0

    def test_result_bytes(self, engine):
        profile = engine.execute(JoinQuery(select_value_a=4,
                                           select_value_b=4), big_pool())
        assert profile.result_bytes(engine.params) == \
            200 * engine.params.result_tuple_bytes

    def test_compute_seconds_is_cpu_plus_io(self, engine):
        profile = engine.execute(JoinQuery(), big_pool())
        assert profile.compute_seconds == pytest.approx(
            profile.cpu_seconds + profile.io_seconds)


class TestDataShippingSupport:
    def test_plan_pages_covers_selected_tuples(self, engine):
        query = JoinQuery(select_value_a=1, select_value_b=1)
        pages = engine.plan_pages(query)
        profile = engine.execute(query, big_pool())
        assert len(pages) == profile.pages_accessed

    def test_client_fault_pages(self, engine):
        pool = big_pool()
        query = JoinQuery(select_value_a=1, select_value_b=1)
        needed, misses = engine.client_fault_pages(query, pool)
        assert needed == misses
        needed2, misses2 = engine.client_fault_pages(query, pool)
        assert needed2 == needed
        assert misses2 == 0

    def test_working_set(self, engine):
        assert engine.working_set_pages() == \
            engine.relation_a.heap.page_count + \
            engine.relation_b.heap.page_count
        assert engine.working_set_mb() == pytest.approx(
            engine.working_set_pages() * 8192 / 1048576)

    def test_validate_requires_kept_rows(self):
        a, b = make_wisconsin_pair(tuple_count=100, seed=2)
        engine = DatabaseEngine(a, b)
        profile = engine.execute(JoinQuery(), big_pool())
        with pytest.raises(DatabaseError):
            engine.validate_result(profile)


class TestWorkload:
    def test_deterministic_stream(self):
        first = WisconsinWorkload(seed=4).query_stream(20)
        second = WisconsinWorkload(seed=4).query_stream(20)
        assert first == second

    def test_perturbation_varies_queries(self):
        queries = WisconsinWorkload(seed=4).query_stream(50)
        assert len({(q.select_value_a, q.select_value_b)
                    for q in queries}) > 5

    def test_values_within_domain(self):
        for query in WisconsinWorkload(seed=1,
                                       distinct_values=10).query_stream(100):
            assert 0 <= query.select_value_a < 10
            assert 0 <= query.select_value_b < 10

    def test_counter(self):
        workload = WisconsinWorkload(seed=0)
        workload.query_stream(7)
        assert workload.queries_generated == 7
