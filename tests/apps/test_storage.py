"""Page storage and buffer pool."""

import pytest
from hypothesis import given, strategies as st

from repro.apps.database.storage import (
    PAGE_BYTES,
    BufferPool,
    HeapFile,
    PageId,
)
from repro.errors import DatabaseError


class TestHeapFile:
    def test_tuples_per_page(self):
        heap = HeapFile("r", tuple_bytes=208)
        assert heap.tuples_per_page == PAGE_BYTES // 208 == 39

    def test_append_opens_pages_as_needed(self):
        heap = HeapFile("r", tuple_bytes=208)
        for i in range(40):
            heap.append((i,))
        assert heap.page_count == 2
        assert heap.tuple_count == 40
        assert len(heap.page(0).tuples) == 39
        assert len(heap.page(1).tuples) == 1

    def test_scan_order(self):
        heap = HeapFile("r", tuple_bytes=2048)
        rows = [(i,) for i in range(10)]
        heap.bulk_load(rows)
        assert [row for _pid, row in heap.scan()] == rows

    def test_scan_reports_page_ids(self):
        heap = HeapFile("r", tuple_bytes=4096)  # 2 tuples per page
        heap.bulk_load([(i,) for i in range(5)])
        pids = [pid for pid, _row in heap.scan()]
        assert pids[0] == pids[1] == PageId("r", 0)
        assert pids[2] == pids[3] == PageId("r", 1)
        assert pids[4] == PageId("r", 2)

    def test_oversized_tuple_rejected(self):
        with pytest.raises(DatabaseError):
            HeapFile("r", tuple_bytes=PAGE_BYTES + 1)

    def test_page_out_of_range(self):
        heap = HeapFile("r", tuple_bytes=208)
        with pytest.raises(DatabaseError):
            heap.page(0)


class TestBufferPool:
    def test_capacity_in_pages(self):
        pool = BufferPool(capacity_mb=1.0)
        assert pool.capacity_pages == 1024 * 1024 // PAGE_BYTES == 128

    def test_miss_then_hit(self):
        pool = BufferPool(capacity_mb=1.0)
        page = PageId("r", 0)
        assert not pool.access(page)
        assert pool.access(page)
        assert pool.hits == 1
        assert pool.misses == 1

    def test_lru_eviction_order(self):
        pool = BufferPool(capacity_mb=8 * PAGE_BYTES / (1024 * 1024))
        pages = [PageId("r", i) for i in range(8)]
        pool.access_many(pages)
        pool.access(pages[0])           # page 0 now most recent
        pool.access(PageId("r", 99))    # evicts page 1, not page 0
        assert pool.contains(pages[0])
        assert not pool.contains(pages[1])

    def test_access_many_counts_misses(self):
        pool = BufferPool(capacity_mb=1.0)
        pages = [PageId("r", i) for i in range(10)]
        assert pool.access_many(pages) == 10
        assert pool.access_many(pages) == 0

    def test_shrink_evicts(self):
        pool = BufferPool(capacity_mb=1.0)
        pool.access_many([PageId("r", i) for i in range(100)])
        evicted = pool.resize(
            capacity_mb=10 * PAGE_BYTES / (1024 * 1024))
        assert evicted == 90
        assert pool.resident_pages == 10

    def test_grow_keeps_pages(self):
        pool = BufferPool(capacity_mb=1.0)
        pool.access_many([PageId("r", i) for i in range(50)])
        pool.resize(capacity_mb=2.0)
        assert pool.resident_pages == 50

    def test_hit_rate(self):
        pool = BufferPool(capacity_mb=1.0)
        page = PageId("r", 0)
        pool.access(page)
        pool.access(page)
        pool.access(page)
        assert pool.hit_rate() == pytest.approx(2 / 3)

    def test_zero_capacity_rejected(self):
        with pytest.raises(DatabaseError):
            BufferPool(capacity_mb=0)

    def test_clear(self):
        pool = BufferPool(capacity_mb=1.0)
        pool.access(PageId("r", 0))
        pool.clear()
        assert pool.resident_pages == 0


@given(st.lists(st.integers(0, 30), min_size=1, max_size=200),
       st.integers(min_value=1, max_value=16))
def test_lru_never_exceeds_capacity(accesses, capacity_pages):
    pool = BufferPool(capacity_mb=capacity_pages * PAGE_BYTES
                      / (1024 * 1024))
    for page_number in accesses:
        pool.access(PageId("r", page_number))
        assert pool.resident_pages <= capacity_pages
    assert pool.hits + pool.misses == len(accesses)


@given(st.lists(st.integers(0, 5), min_size=1, max_size=100))
def test_working_set_within_capacity_never_remisses(accesses):
    """Once every touched page fits, each page misses exactly once."""
    pool = BufferPool(capacity_mb=1.0)  # 128 pages >> 6 distinct
    for page_number in accesses:
        pool.access(PageId("r", page_number))
    assert pool.misses == len(set(accesses))
