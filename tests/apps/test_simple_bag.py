"""The Simple (Figure 2a) and Bag (Figure 2b) applications, end to end."""

import pytest

from repro.api import HarmonyClient, HarmonyServer, connected_pair
from repro.apps import (
    BagOfTasksApp,
    SimpleParallelApp,
    bag_bundle_rsl,
    simple_bundle_rsl,
    speedup_curve_points,
)
from repro.cluster import Cluster
from repro.controller import AdaptationController
from repro.metrics import MetricInterface
from repro.rsl import build_bundle


def make_world(node_count=8, memory_mb=128):
    cluster = Cluster.full_mesh([f"n{i}" for i in range(node_count)],
                                memory_mb=memory_mb)
    controller = AdaptationController(cluster)
    harmony_server = HarmonyServer(controller)
    return cluster, controller, harmony_server


def harmony_for(harmony_server):
    client_end, server_end = connected_pair()
    harmony_server.attach(server_end)
    return HarmonyClient(client_end)


class TestSpeedupCurve:
    def test_minimum_at_five_for_figure4_defaults(self):
        points = speedup_curve_points(2400, range(1, 9), overhead_alpha=12)
        best = min(points, key=lambda p: p[1])
        assert best[0] == 5

    def test_alpha_zero_is_pure_speedup(self):
        points = dict(speedup_curve_points(2400, (1, 2, 4, 8),
                                           overhead_alpha=0))
        assert points[8] == pytest.approx(300.0)


class TestSimpleApp:
    def test_bundle_matches_figure2a(self):
        bundle = build_bundle(simple_bundle_rsl())
        option = bundle.option_named("fixed")
        worker = option.node_named("worker")
        assert worker.replica_count() == 4
        assert worker.seconds.value() == 300.0
        assert worker.memory.value() == 32.0
        assert option.communication.megabytes.value() == 64.0

    def test_runs_to_completion_on_four_nodes(self):
        cluster, controller, harmony_server = make_world()
        app = SimpleParallelApp(cluster, harmony_for(harmony_server))
        process = app.start()
        cluster.run(process)
        assert app.report is not None
        assert len(set(app.report.placements.values())) == 4
        # 300 reference seconds of parallel compute + communication time.
        assert app.report.elapsed_seconds >= 300.0
        assert app.report.elapsed_seconds < 320.0

    def test_deregisters_on_completion(self):
        cluster, controller, harmony_server = make_world()
        app = SimpleParallelApp(cluster, harmony_for(harmony_server))
        cluster.run(app.start())
        assert len(controller.registry) == 0


class TestBagBundle:
    def test_bundle_matches_figure2b_shape(self):
        bundle = build_bundle(bag_bundle_rsl())
        option = bundle.option_named("run")
        variable = option.variable_named("workerNodes")
        assert variable.values == (1.0, 2.0, 4.0, 8.0)
        worker = option.node_named("worker")
        assert worker.seconds.value({"workerNodes": 4}) == 600.0
        assert option.communication.megabytes.value(
            {"workerNodes": 8}) == 32.0
        assert option.performance.parameter == "workerNodes"

    def test_friction_and_granularity_emitted_when_set(self):
        bundle = build_bundle(bag_bundle_rsl(granularity_seconds=30,
                                             friction_seconds=10))
        option = bundle.option_named("run")
        assert option.granularity.min_interval_seconds == 30.0
        assert option.friction.cost() == 10.0


class TestBagApp:
    def test_iterations_complete_and_work_is_conserved(self):
        cluster, controller, harmony_server = make_world()
        metrics = controller.metrics
        app = BagOfTasksApp("Bag", cluster, harmony_for(harmony_server),
                            metrics=metrics,
                            total_seconds_per_iteration=240.0,
                            task_count=12, domain=(1, 2, 4, 8),
                            overhead_alpha=12)
        cluster.run(app.start(iteration_limit=2))
        assert app.stats.iterations_completed == 2
        assert app.stats.tasks_completed == 24

    def test_controller_picks_a_worker_count_from_the_curve(self):
        cluster, controller, harmony_server = make_world()
        app = BagOfTasksApp("Bag", cluster, harmony_for(harmony_server),
                            total_seconds_per_iteration=2400.0,
                            task_count=16, domain=(1, 2, 4, 8),
                            overhead_alpha=12)
        cluster.run(app.start(iteration_limit=1))
        # Curve at alpha=12 over {1,2,4,8}: min at 4 (708 < 888 at 8).
        assert app.stats.records[0].worker_count == 4

    def test_iteration_time_tracks_worker_count(self):
        cluster, controller, harmony_server = make_world()
        app = BagOfTasksApp("Bag", cluster, harmony_for(harmony_server),
                            total_seconds_per_iteration=240.0,
                            task_count=24, domain=(4,),
                            overhead_alpha=0,
                            communication_coefficient=0.0,
                            task_size_jitter=0.0)
        cluster.run(app.start(iteration_limit=1))
        record = app.stats.records[0]
        assert record.worker_count == 4
        # 240 s of work over 4 workers with equal tasks: ~60 s.
        assert record.elapsed_seconds == pytest.approx(60.0, rel=0.05)

    def test_task_sizes_sum_to_total_despite_jitter(self):
        cluster, controller, harmony_server = make_world()
        app = BagOfTasksApp("Bag", cluster, harmony_for(harmony_server),
                            total_seconds_per_iteration=100.0,
                            task_count=10, task_size_jitter=0.5)
        sizes = app._task_sizes()
        assert sum(sizes) == pytest.approx(100.0)
        assert len(set(round(s, 6) for s in sizes)) > 1  # really jittered

    def test_reconfiguration_between_iterations(self):
        """A second Bag arriving mid-run shrinks the first at an iteration
        boundary (the paper's natural reconfiguration point)."""
        cluster, controller, harmony_server = make_world()
        first = BagOfTasksApp("BagA", cluster, harmony_for(harmony_server),
                              total_seconds_per_iteration=2400.0,
                              task_count=16,
                              domain=(1, 2, 3, 4, 5, 6, 7, 8),
                              overhead_alpha=12)
        first.start(iteration_limit=4)

        second_holder = {}

        def launch_second():
            yield cluster.kernel.timeout(100.0)
            second = BagOfTasksApp("BagB", cluster,
                                   harmony_for(harmony_server),
                                   total_seconds_per_iteration=2400.0,
                                   task_count=16,
                                   domain=(1, 2, 3, 4, 5, 6, 7, 8),
                                   overhead_alpha=12)
            second_holder["app"] = second
            second.start(iteration_limit=3)
        cluster.kernel.spawn(launch_second())
        cluster.run(until=5000.0)

        counts = [record.worker_count for record in first.stats.records]
        assert counts[0] == 5          # alone: the curve's optimum
        assert 4 in counts             # after BagB arrives: equal split
        assert first.stats.reconfigurations >= 1
