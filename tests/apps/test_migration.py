"""State migration on reconfiguration (the physical frictional cost)."""

import pytest

from repro.api import HarmonyClient, HarmonyServer, connected_pair
from repro.apps import BagOfTasksApp
from repro.cluster import Cluster
from repro.controller import AdaptationController


def make_world(bandwidth_mbps=40.0):
    cluster = Cluster.full_mesh([f"n{i}" for i in range(8)],
                                memory_mb=128,
                                bandwidth_mbps=bandwidth_mbps)
    controller = AdaptationController(cluster)
    server = HarmonyServer(controller)
    return cluster, controller, server


def harmony_for(server):
    client_end, server_end = connected_pair()
    server.attach(server_end)
    return HarmonyClient(client_end)


def run_two_bags(bandwidth_mbps=40.0, memory_mb=32.0):
    """First Bag runs; a second arrives, forcing a 5 -> 4 repartition."""
    cluster, controller, server = make_world(bandwidth_mbps)
    first = BagOfTasksApp("BagA", cluster, harmony_for(server),
                          total_seconds_per_iteration=2400.0,
                          task_count=16, domain=(1, 2, 3, 4, 5, 6, 7, 8),
                          memory_mb=memory_mb, overhead_alpha=12)
    first.start(iteration_limit=3)

    def launch_second():
        yield cluster.kernel.timeout(100.0)
        second = BagOfTasksApp("BagB", cluster, harmony_for(server),
                               total_seconds_per_iteration=2400.0,
                               task_count=16,
                               domain=(1, 2, 3, 4, 5, 6, 7, 8),
                               memory_mb=memory_mb, overhead_alpha=12)
        second.start(iteration_limit=2)

    cluster.kernel.spawn(launch_second())
    cluster.run(until=6000.0)
    return first


class TestMigration:
    def test_reconfiguration_moves_state(self):
        first = run_two_bags()
        assert first.stats.reconfigurations >= 1
        assert first.stats.migrated_mb > 0
        assert first.stats.migration_seconds > 0

    def test_migration_volume_matches_membership_change(self):
        """Dropping from 5 to 4 workers vacates one node: one worker's
        state (memory_mb) must move."""
        first = run_two_bags(memory_mb=32.0)
        # 5 -> 4 vacates exactly one host in the first reconfiguration.
        assert first.stats.migrated_mb >= 32.0

    def test_slow_network_makes_migration_visible(self):
        fast = run_two_bags(bandwidth_mbps=40.0)
        slow = run_two_bags(bandwidth_mbps=0.5)
        assert slow.stats.migration_seconds > \
            fast.stats.migration_seconds * 5

    def test_no_migration_without_reconfiguration(self):
        cluster, controller, server = make_world()
        bag = BagOfTasksApp("Solo", cluster, harmony_for(server),
                            total_seconds_per_iteration=240.0,
                            task_count=8, domain=(4,), overhead_alpha=0)
        cluster.run(bag.start(iteration_limit=2))
        assert bag.stats.migrated_mb == 0.0
        assert bag.stats.migration_seconds == 0.0
